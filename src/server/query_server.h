/// \file query_server.h
/// \brief The concurrent cube query service: owns the epoch-snapshot cube
/// store, the result cache, the cursor-session table and a worker pool, and
/// turns request frames into response frames.
///
/// Execution model: callers (TCP connection threads, or test/bench threads
/// through ServerHandle) block in HandleFrame while the request runs on the
/// worker pool. Admission control bounds the number of requests queued or
/// executing; anything beyond the bound is answered immediately with an
/// "overloaded" rejection instead of joining an unbounded queue — overload
/// shows up as explicit errors, not as unbounded latency.
///
/// Cursor sessions: query_open pins a session to the current epoch snapshot
/// (the session holds the snapshot's shared_ptr, so later publishes never
/// change what an open cursor sees) and query_next pages its rows. Sessions
/// are bounded by max_sessions and reaped after session_ttl_seconds idle.

#ifndef SCDWARF_SERVER_QUERY_SERVER_H_
#define SCDWARF_SERVER_QUERY_SERVER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "dwarf/cursor.h"
#include "dwarf/dwarf_cube.h"
#include "server/epoch_cube.h"
#include "server/frame_handler.h"
#include "server/result_cache.h"
#include "server/wire.h"

namespace scdwarf::server {

/// \brief Serving knobs. Defaults suit the tests and small deployments.
struct ServerOptions {
  /// Worker threads executing queries. Resolved through the same policy as
  /// the construction pipeline: 0 = auto (SCDWARF_THREADS env override, else
  /// hardware_concurrency); see common::ResolveThreadCount.
  int num_workers = 0;

  /// Admission bound: maximum requests queued or executing at once. Requests
  /// arriving beyond it are rejected with code "overloaded".
  size_t max_queue_depth = 128;

  /// Result-cache entries across all shards; 0 disables caching.
  size_t cache_capacity = 4096;

  /// Result-cache shards (clamped to [1, cache_capacity]).
  size_t cache_shards = 8;

  /// Cursor sessions held open at once; query_open beyond the cap is
  /// rejected with code "too_many_sessions".
  size_t max_sessions = 64;

  /// Idle time after which an open cursor session is reaped (the sweep runs
  /// on every query_open, and on demand via ReapIdleSessions).
  double session_ttl_seconds = 300.0;

  /// Forces every publish through the full from-scratch rebuild instead of
  /// the incremental delta-merge (fallback/debug knob; results are equal,
  /// full rebuilds just cost O(history) per publish).
  bool full_rebuild = false;

  /// Test/fault-injection seam: when set, every admitted request invokes it
  /// on the worker thread before executing (the overload tests park the
  /// worker here to fill the queue deterministically).
  std::function<void()> pre_execute_hook;

  /// Accept the "load_snapshot" wire op (replica mode). Off by default: a
  /// publisher-facing server must not let clients swap its cube.
  bool allow_snapshot_load = false;

  /// When non-empty, the server spools each published epoch (including the
  /// initial cube, as epoch initial_epoch) to
  /// `<snapshot_dir>/epoch-<NNN>.cf` — the fan-out feed replicas load from.
  std::string snapshot_dir;

  /// Epochs kept reachable for epoch-pinned query_open (router failover),
  /// current one included. Clamped to at least 1.
  size_t retain_epochs = 4;

  /// Epoch of the initial cube. A replica that loads a mid-history snapshot
  /// file passes the file's epoch here so its numbering matches the
  /// publisher's.
  uint64_t initial_epoch = 0;

  /// Invoked after every successful publish that wrote a snapshot file, with
  /// the epoch and the file path (runs on the publishing thread, after the
  /// cache sweep). The server main uses it to notify replicas.
  std::function<void(uint64_t epoch, const std::string& path)> post_publish;
};

/// \brief Point-in-time serving statistics (the "stats" op renders these).
struct ServerStats {
  uint64_t epoch = 0;
  uint64_t queries_total = 0;   ///< completed requests, including errors
  uint64_t rejected_total = 0;  ///< admission rejections
  uint64_t updates_applied = 0;
  double uptime_seconds = 0;
  double qps = 0;  ///< queries_total / uptime
  uint64_t latency_count = 0;
  double latency_p50_us = 0;
  double latency_p90_us = 0;
  double latency_p99_us = 0;
  ResultCacheStats cache;
  double cache_hit_rate = 0;  ///< hits / (hits + misses), 0 when no lookups
  uint64_t sessions_open = 0;      ///< cursor sessions currently held
  uint64_t sessions_opened = 0;    ///< successful query_open calls
  uint64_t sessions_expired = 0;   ///< sessions reaped by the idle TTL
  uint64_t sessions_rejected = 0;  ///< query_open rejected by max_sessions
  int num_workers = 0;
  size_t max_queue_depth = 0;
  dwarf::UpdateProfile last_update;  ///< profile of the newest ApplyUpdate
};

/// \brief Multi-client cube query service over one DwarfCube.
class QueryServer : public FrameHandler {
 public:
  explicit QueryServer(dwarf::DwarfCube cube, ServerOptions options = {});
  ~QueryServer() override = default;

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// \brief Serves one request frame payload and returns the response frame
  /// payload. Blocks the calling thread until the request has executed on
  /// the worker pool (or was rejected by admission control). Thread-safe.
  /// \p client, when given, records cursor sessions opened by this caller so
  /// CloseClientSessions can reclaim them on disconnect.
  std::string HandleFrame(std::string_view request_json,
                          ClientContext* client = nullptr) override;

  /// \brief Binary-format entry point (see FrameHandler). query_next frames
  /// take a native path: the page's rows are encoded straight from the
  /// cursor into the binary response, skipping JSON materialization
  /// entirely (counted by server_zero_copy_pages_total). Every other op
  /// routes through the canonical JSON path and is wrapped as a
  /// passthrough. Admission control and latency metrics apply identically
  /// to both formats.
  std::string HandleBinaryFrame(std::string_view request_payload,
                                ClientContext* client = nullptr) override;

  /// \brief Merges \p tuples into the served cube and publishes the next
  /// epoch. Before returning, the result cache is swept: entries whose query
  /// provably misses every changed key prefix carry over to the new epoch,
  /// the rest are invalidated. Open cursor sessions are unaffected — they
  /// keep serving their pinned snapshot.
  Result<uint64_t> ApplyUpdate(
      const std::vector<std::pair<std::vector<std::string>, dwarf::Measure>>&
          tuples);

  /// \brief Closes every cursor session recorded in \p client (idempotent;
  /// already-expired cursors are skipped silently).
  void CloseClientSessions(ClientContext& client) override;

  /// \brief Loads the snapshot file at \p path and publishes it as the
  /// served cube (replica mode; backs the "load_snapshot" op but is always
  /// available programmatically). The file's epoch must exceed the current
  /// epoch — FailedPrecondition otherwise, making redelivered notifications
  /// harmless. The result cache is dropped wholesale on success: a snapshot
  /// carries no changed-prefix list, so nothing can be proven unaffected.
  /// Open cursor sessions keep serving their pinned snapshots. Returns the
  /// published epoch.
  Result<uint64_t> LoadSnapshot(const std::string& path);

  /// \brief Drops sessions idle longer than session_ttl_seconds and returns
  /// how many were reaped. Runs implicitly on every query_open.
  size_t ReapIdleSessions();

  ServerStats Stats() const;

  /// \brief The "metrics" op payload: {"metrics":[...]} covering every series
  /// of this server's registry followed by the process-global registry (the
  /// build-side instrumentation). See metrics::SnapshotToJson for the entry
  /// shape.
  std::string MetricsJson() const;

  /// \brief The same series as MetricsJson rendered in Prometheus text
  /// exposition format (the "metrics_text" op / --prometheus-dump output).
  std::string MetricsText() const;

  uint64_t epoch() const { return store_.epoch(); }
  int num_workers() const { return num_workers_; }
  size_t open_sessions() const;
  EpochCubeStore& store() { return store_; }
  const ResultCache& cache() const { return cache_; }

 private:
  /// \brief One open cursor: the pinned snapshot plus the paused traversal.
  struct Session {
    Session(uint64_t id, uint64_t epoch,
            std::shared_ptr<const dwarf::DwarfCube> cube,
            dwarf::RowCursor cursor, size_t page_size, double now)
        : id(id),
          epoch(epoch),
          cube(std::move(cube)),
          cursor(std::move(cursor)),
          page_size(page_size),
          last_used(now) {}

    const uint64_t id;
    const uint64_t epoch;  ///< the epoch the session serves, forever
    const std::shared_ptr<const dwarf::DwarfCube> cube;  ///< snapshot pin
    dwarf::RowCursor cursor;  ///< guarded by mu
    const size_t page_size;
    std::mutex mu;           ///< serializes query_next on this cursor
    double last_used;        ///< uptime seconds; guarded by sessions_mu_
  };

  /// One query_next page fetched from a session, still structured — the
  /// JSON and binary response paths serialize it their own way.
  struct CursorPage {
    bool ok = false;
    uint64_t epoch = 0;  ///< session's pinned epoch, or current on error
    bool done = false;
    std::vector<dwarf::SliceRow> rows;
    std::string error_payload;  ///< set when !ok
  };

  /// Runs \p run under admission control on the worker pool (or inline for
  /// single-worker servers) and records the request metrics; returns
  /// \p reject_response without executing when the server is over capacity.
  std::string Admitted(const std::function<std::string()>& run,
                       const std::string& reject_response);
  /// Executes a parsed-or-unparsable request (cache + snapshot path).
  std::string Process(std::string_view request_json, ClientContext* client);
  /// Looks up the session of \p cursor_id and advances it one page,
  /// reclaiming the session (and the client's cursor record) when drained.
  CursorPage FetchCursorPage(uint64_t cursor_id, ClientContext* client);
  /// Runs one successfully-parsed request (the op switch + cache path).
  std::string Dispatch(const QueryRequest& request,
                       const EpochCubeStore::Snapshot& snapshot,
                       ClientContext* client);
  std::string HandleQueryOpen(const QueryRequest& request,
                              const EpochCubeStore::Snapshot& snapshot,
                              ClientContext* client);
  std::string HandleQueryNext(const QueryRequest& request,
                              ClientContext* client);
  std::string HandleQueryClose(const QueryRequest& request,
                               ClientContext* client);
  std::string HandleLoadSnapshot(const QueryRequest& request);
  size_t ReapIdleSessionsLocked(double now);  // requires sessions_mu_
  std::string BuildStatsPayload() const;
  /// Writes the current cube as \p epoch into options_.snapshot_dir and
  /// invokes post_publish; failures are reported on stderr, never thrown
  /// into the serving path. No-op when snapshot_dir is unset.
  void SpoolSnapshot(uint64_t epoch);
  /// Serializes \p cube as \p epoch into options_.snapshot_dir; on success
  /// fills \p path_out and bumps the publish metrics.
  Status WriteSnapshotFile(const dwarf::DwarfCube& cube, uint64_t epoch,
                           std::string* path_out);

  ServerOptions options_;
  int num_workers_;
  /// Per-instance registry: serving metrics stay scoped to this server, so
  /// concurrent instances (tests, benches) never bleed into each other.
  /// Declared before cache_ and the metric pointers below, which register
  /// into it during construction.
  metrics::MetricRegistry registry_;
  EpochCubeStore store_;
  ResultCache cache_;
  dwarf::CubeSchema schema_;  ///< dimension layout; fixed across epochs
  std::unique_ptr<ThreadPool> pool_;  ///< null when num_workers_ == 1
  Stopwatch uptime_;
  FixedBucketHistogram* latency_us_;  ///< server_request_us
  /// server_op_us{op=...}, indexed by RequestOp.
  std::array<FixedBucketHistogram*, kNumRequestOps> op_latency_us_{};
  /// Admission-control level (queued + executing). Stays a plain atomic —
  /// its acq_rel increment/decrement IS the admission decision, not a
  /// monitoring read; max_queue_depth bounds it.
  std::atomic<size_t> in_flight_{0};
  metrics::Counter* requests_total_;       ///< server_requests_total
  metrics::Counter* rejected_total_;       ///< server_rejected_total
  metrics::Counter* updates_applied_;      ///< server_updates_applied_total
  /// server_range_revalidations_total: cached entries with a value-range
  /// constraint carried across an epoch publish because every changed key
  /// provably missed the range (served again without recomputation).
  metrics::Counter* range_revalidations_;
  mutable std::mutex last_update_mu_;
  dwarf::UpdateProfile last_update_;
  mutable std::mutex sessions_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Session>> sessions_;
  uint64_t next_cursor_id_ = 1;  ///< guarded by sessions_mu_
  metrics::Counter* sessions_opened_;    ///< server_sessions_opened_total
  metrics::Counter* sessions_expired_;   ///< server_sessions_expired_total
  metrics::Counter* sessions_rejected_;  ///< server_sessions_rejected_total
  metrics::Gauge* sessions_open_;        ///< server_sessions_open
  /// Snapshot fan-out instrumentation (publisher + replica sides).
  metrics::Counter* snapshots_published_;    ///< server_snapshots_published_total
  FixedBucketHistogram* snapshot_write_us_;  ///< server_snapshot_write_us
  metrics::Counter* snapshots_loaded_;       ///< replica_snapshots_loaded_total
  FixedBucketHistogram* snapshot_load_us_;   ///< replica_snapshot_load_us
  metrics::Gauge* snapshot_bytes_;           ///< replica_snapshot_bytes
  /// Binary wire format instrumentation.
  metrics::Counter* binary_connections_;  ///< server_binary_connections_total
  metrics::Counter* zero_copy_pages_;     ///< server_zero_copy_pages_total
};

/// \brief In-process client used by tests and the load-generator bench: the
/// same framing semantics as the TCP path minus the socket, including the
/// per-connection session cleanup on destruction.
class ServerHandle {
 public:
  explicit ServerHandle(QueryServer* server) : server_(server) {}
  ~ServerHandle() {
    if (server_ != nullptr) server_->CloseClientSessions(context_);
  }

  ServerHandle(const ServerHandle&) = delete;
  ServerHandle& operator=(const ServerHandle&) = delete;
  ServerHandle(ServerHandle&& other) noexcept
      : server_(other.server_), context_(std::move(other.context_)) {
    other.server_ = nullptr;
    other.context_.cursors.clear();
  }

  /// Sends one request payload, returns the response payload. Blocking.
  std::string Call(std::string_view request_json) {
    return server_->HandleFrame(request_json, &context_);
  }

  /// Opens a cursor session over \p query_json (a slice/rollup request
  /// object) with the given page size; returns the raw response payload.
  std::string QueryOpen(std::string_view query_json, size_t page_size) {
    return Call("{\"op\":\"query_open\",\"query\":" + std::string(query_json) +
                ",\"page_size\":" + std::to_string(page_size) + "}");
  }

  std::string QueryNext(uint64_t cursor) {
    return Call("{\"op\":\"query_next\",\"cursor\":" + std::to_string(cursor) +
                "}");
  }

  std::string QueryClose(uint64_t cursor) {
    return Call("{\"op\":\"query_close\",\"cursor\":" +
                std::to_string(cursor) + "}");
  }

 private:
  QueryServer* server_;
  ClientContext context_;
};

}  // namespace scdwarf::server

#endif  // SCDWARF_SERVER_QUERY_SERVER_H_
