/// \file query_server.h
/// \brief The concurrent cube query service: owns the epoch-snapshot cube
/// store, the result cache and a worker pool, and turns request frames into
/// response frames.
///
/// Execution model: callers (TCP connection threads, or test/bench threads
/// through ServerHandle) block in HandleFrame while the request runs on the
/// worker pool. Admission control bounds the number of requests queued or
/// executing; anything beyond the bound is answered immediately with an
/// "overloaded" rejection instead of joining an unbounded queue — overload
/// shows up as explicit errors, not as unbounded latency.

#ifndef SCDWARF_SERVER_QUERY_SERVER_H_
#define SCDWARF_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "dwarf/dwarf_cube.h"
#include "server/epoch_cube.h"
#include "server/result_cache.h"
#include "server/wire.h"

namespace scdwarf::server {

/// \brief Serving knobs. Defaults suit the tests and small deployments.
struct ServerOptions {
  /// Worker threads executing queries. Resolved through the same policy as
  /// the construction pipeline: 0 = auto (SCDWARF_THREADS env override, else
  /// hardware_concurrency); see common::ResolveThreadCount.
  int num_workers = 0;

  /// Admission bound: maximum requests queued or executing at once. Requests
  /// arriving beyond it are rejected with code "overloaded".
  size_t max_queue_depth = 128;

  /// Result-cache entries across all shards; 0 disables caching.
  size_t cache_capacity = 4096;

  /// Result-cache shards (clamped to [1, cache_capacity]).
  size_t cache_shards = 8;

  /// Test/fault-injection seam: when set, every admitted request invokes it
  /// on the worker thread before executing (the overload tests park the
  /// worker here to fill the queue deterministically).
  std::function<void()> pre_execute_hook;
};

/// \brief Point-in-time serving statistics (the "stats" op renders these).
struct ServerStats {
  uint64_t epoch = 0;
  uint64_t queries_total = 0;   ///< completed requests, including errors
  uint64_t rejected_total = 0;  ///< admission rejections
  uint64_t updates_applied = 0;
  double uptime_seconds = 0;
  double qps = 0;  ///< queries_total / uptime
  uint64_t latency_count = 0;
  double latency_p50_us = 0;
  double latency_p90_us = 0;
  double latency_p99_us = 0;
  ResultCacheStats cache;
  double cache_hit_rate = 0;  ///< hits / (hits + misses), 0 when no lookups
  int num_workers = 0;
  size_t max_queue_depth = 0;
  dwarf::UpdateProfile last_update;  ///< profile of the newest ApplyUpdate
};

/// \brief Multi-client cube query service over one DwarfCube.
class QueryServer {
 public:
  explicit QueryServer(dwarf::DwarfCube cube, ServerOptions options = {});
  ~QueryServer() = default;

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// \brief Serves one request frame payload and returns the response frame
  /// payload. Blocks the calling thread until the request has executed on
  /// the worker pool (or was rejected by admission control). Thread-safe.
  std::string HandleFrame(std::string_view request_json);

  /// \brief Merges \p tuples into the served cube and publishes the next
  /// epoch; the result cache is invalidated before the call returns.
  Result<uint64_t> ApplyUpdate(
      const std::vector<std::pair<std::vector<std::string>, dwarf::Measure>>&
          tuples);

  ServerStats Stats() const;

  uint64_t epoch() const { return store_.epoch(); }
  int num_workers() const { return num_workers_; }
  EpochCubeStore& store() { return store_; }
  const ResultCache& cache() const { return cache_; }

 private:
  /// Executes a parsed-or-unparsable request (cache + snapshot path).
  std::string Process(std::string_view request_json);
  std::string BuildStatsPayload() const;

  ServerOptions options_;
  int num_workers_;
  EpochCubeStore store_;
  ResultCache cache_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when num_workers_ == 1
  Stopwatch uptime_;
  FixedBucketHistogram latency_us_;
  std::atomic<size_t> in_flight_{0};
  std::atomic<uint64_t> queries_total_{0};
  std::atomic<uint64_t> rejected_total_{0};
  std::atomic<uint64_t> updates_applied_{0};
  mutable std::mutex last_update_mu_;
  dwarf::UpdateProfile last_update_;
};

/// \brief In-process client used by tests and the load-generator bench: the
/// same framing semantics as the TCP path minus the socket.
class ServerHandle {
 public:
  explicit ServerHandle(QueryServer* server) : server_(server) {}

  /// Sends one request payload, returns the response payload. Blocking.
  std::string Call(std::string_view request_json) {
    return server_->HandleFrame(request_json);
  }

 private:
  QueryServer* server_;
};

}  // namespace scdwarf::server

#endif  // SCDWARF_SERVER_QUERY_SERVER_H_
