#include "server/epoch_cube.h"

#include "common/trace.h"

namespace scdwarf::server {

Result<uint64_t> EpochCubeStore::ApplyUpdate(
    const std::vector<std::pair<std::vector<std::string>, dwarf::Measure>>&
        tuples,
    dwarf::UpdateProfile* profile) {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  trace::ScopedSpan publish_span("server.publish");
  // Update against a private copy; readers keep the published cube. The copy
  // is O(arena chunks): chunks are shared immutably across epochs.
  dwarf::CubeUpdater updater(dwarf::DwarfCube(*snapshot().cube));
  for (const auto& [keys, measure] : tuples) {
    SCD_RETURN_IF_ERROR(updater.AddTuple(keys, measure));
  }
  dwarf::UpdateProfile local_profile;
  updater.set_post_rebuild_hook(
      [&local_profile](const dwarf::DwarfCube&,
                       const dwarf::UpdateProfile& rebuilt) {
        local_profile = rebuilt;
      });
  std::vector<std::vector<std::string>> changed = updater.ChangedKeyPrefixes();
  bool compact = snapshot().cube->arena_chunks() >= kCompactionChunkLimit;
  Result<dwarf::DwarfCube> updated =
      (full_rebuild_ || compact) ? std::move(updater).Rebuild()
                                 : std::move(updater).Apply();
  SCD_RETURN_IF_ERROR(updated.status());
  if (profile != nullptr) *profile = local_profile;
  uint64_t published_epoch = 0;
  auto published =
      std::make_shared<const dwarf::DwarfCube>(std::move(*updated));
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    cube_ = std::move(published);
    published_epoch = ++epoch_;
  }
  // Still under update_mu_, so revalidation sweeps arrive in epoch order.
  if (publish_hook_) publish_hook_(published_epoch, changed);
  return published_epoch;
}

}  // namespace scdwarf::server
