#include "server/epoch_cube.h"

#include "common/trace.h"

namespace scdwarf::server {

Result<uint64_t> EpochCubeStore::ApplyUpdate(
    const std::vector<std::pair<std::vector<std::string>, dwarf::Measure>>&
        tuples,
    dwarf::UpdateProfile* profile) {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  trace::ScopedSpan publish_span("server.publish");
  // Update against a private copy; readers keep the published cube. The copy
  // is O(arena chunks): chunks are shared immutably across epochs.
  dwarf::CubeUpdater updater(dwarf::DwarfCube(*snapshot().cube));
  for (const auto& [keys, measure] : tuples) {
    SCD_RETURN_IF_ERROR(updater.AddTuple(keys, measure));
  }
  dwarf::UpdateProfile local_profile;
  updater.set_post_rebuild_hook(
      [&local_profile](const dwarf::DwarfCube&,
                       const dwarf::UpdateProfile& rebuilt) {
        local_profile = rebuilt;
      });
  std::vector<std::vector<std::string>> changed = updater.ChangedKeyPrefixes();
  bool compact = snapshot().cube->arena_chunks() >= kCompactionChunkLimit;
  Result<dwarf::DwarfCube> updated =
      (full_rebuild_ || compact) ? std::move(updater).Rebuild()
                                 : std::move(updater).Apply();
  SCD_RETURN_IF_ERROR(updated.status());
  if (profile != nullptr) *profile = local_profile;
  auto published =
      std::make_shared<const dwarf::DwarfCube>(std::move(*updated));
  uint64_t published_epoch = epoch() + 1;
  PublishLocked(std::move(published), published_epoch);
  // Still under update_mu_, so revalidation sweeps arrive in epoch order.
  if (publish_hook_) publish_hook_(published_epoch, changed);
  return published_epoch;
}

Result<uint64_t> EpochCubeStore::PublishCube(dwarf::DwarfCube cube,
                                             uint64_t epoch) {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  trace::ScopedSpan publish_span("server.publish_snapshot");
  if (epoch <= this->epoch()) {
    return Status::FailedPrecondition(
        "snapshot epoch " + std::to_string(epoch) +
        " is not newer than current epoch " + std::to_string(this->epoch()));
  }
  PublishLocked(std::make_shared<const dwarf::DwarfCube>(std::move(cube)),
                epoch);
  return epoch;
}

Result<EpochCubeStore::Snapshot> EpochCubeStore::SnapshotAt(
    uint64_t epoch) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const Snapshot& snap : retained_) {
    if (snap.epoch == epoch) return snap;
  }
  return Status::NotFound("epoch " + std::to_string(epoch) +
                          " is no longer retained (current epoch " +
                          std::to_string(epoch_) + ")");
}

void EpochCubeStore::PublishLocked(
    std::shared_ptr<const dwarf::DwarfCube> cube, uint64_t epoch) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  cube_ = std::move(cube);
  epoch_ = epoch;
  retained_.push_back({epoch_, cube_});
  while (retained_.size() > retain_epochs_) retained_.erase(retained_.begin());
}

}  // namespace scdwarf::server
