// scdwarf_server — standalone cube query service.
//
// Builds the 8-dimension bikes cube from the synthetic XML feed and serves
// it over the length-prefixed JSON wire format (see src/server/wire.h):
//
//   scdwarf_server [--metrics-dump=PATH] [--trace-dump=PATH] [--full-rebuild]
//                  [--snapshot-dir=DIR] [--notify=HOST:PORT,...]
//                  [--bind=ADDR] [--prometheus-dump=PATH]
//                  [port] [records] [workers]
//
//   port     TCP port (default 0 = kernel-assigned, printed)
//   records  synthetic feed records for the served cube (default 20000)
//   workers  query worker threads (default 0 = SCDWARF_THREADS / hardware)
//
//   --metrics-dump=PATH  on exit, write the full metric registry snapshot
//                        (the "metrics" op payload) as JSON to PATH
//   --trace-dump=PATH    enable span tracing (as if SCDWARF_TRACE=1) and on
//                        exit write a chrome://tracing-compatible JSON file
//   --full-rebuild       publish updates via full from-scratch rebuilds
//                        instead of incremental delta merges (fallback knob)
//   --snapshot-dir=DIR   spool every published epoch as a snapshot file in
//                        DIR (replica fleet feed; see docs/OPERATIONS.md)
//   --notify=LIST        comma-separated replica endpoints to send
//                        "load_snapshot" after each spooled publish
//   --bind=ADDR          IPv4 address to listen on (default 127.0.0.1;
//                        0.0.0.0 serves every interface)
//   --prometheus-dump=PATH  on exit, write the metric registries in
//                        Prometheus text exposition format to PATH
//
// Runs until stdin closes or a "quit" line arrives. Example session with
// python (4-byte big-endian length prefix per frame):
//
//   import socket, struct, json
//   s = socket.create_connection(("127.0.0.1", PORT))
//   req = json.dumps({"op": "rollup", "dims": ["Weekday"]}).encode()
//   s.sendall(struct.pack(">I", len(req)) + req)
//   n, = struct.unpack(">I", s.recv(4))
//   print(json.loads(s.recv(n)))

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "citibikes/bike_feed.h"
#include "client/client.h"
#include "common/trace.h"
#include "etl/pipeline.h"
#include "replica/replica.h"
#include "server/query_server.h"
#include "server/tcp_server.h"

using namespace scdwarf;

namespace {

bool WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_dump;
  std::string trace_dump;
  std::string prometheus_dump;
  std::string snapshot_dir;
  std::string notify_list;
  std::string bind_address = server::TcpServer::kLoopback;
  bool full_rebuild = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--metrics-dump=", 0) == 0) {
      metrics_dump = arg.substr(15);
    } else if (arg.rfind("--trace-dump=", 0) == 0) {
      trace_dump = arg.substr(13);
    } else if (arg.rfind("--prometheus-dump=", 0) == 0) {
      prometheus_dump = arg.substr(18);
    } else if (arg.rfind("--snapshot-dir=", 0) == 0) {
      snapshot_dir = arg.substr(15);
    } else if (arg.rfind("--notify=", 0) == 0) {
      notify_list = arg.substr(9);
    } else if (arg.rfind("--bind=", 0) == 0) {
      bind_address = arg.substr(7);
    } else if (arg == "--full-rebuild") {
      full_rebuild = true;
    } else {
      positional.push_back(std::move(arg));
    }
  }
  if (!trace_dump.empty()) trace::SetEnabled(true);
  int port = positional.size() > 0 ? std::atoi(positional[0].c_str()) : 0;
  int records = positional.size() > 1 ? std::atoi(positional[1].c_str()) : 20000;
  int workers = positional.size() > 2 ? std::atoi(positional[2].c_str()) : 0;

  citibikes::BikeFeedConfig config;
  config.target_records = records;
  citibikes::BikeFeedGenerator feed(config);
  auto pipeline = etl::MakeBikesXmlPipeline();
  if (!pipeline.ok()) {
    std::cerr << pipeline.status() << "\n";
    return 1;
  }
  while (feed.HasNext()) {
    if (Status status = pipeline->ConsumeXml(feed.NextXml()); !status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
  }
  auto cube = std::move(*pipeline).Finish();
  if (!cube.ok()) {
    std::cerr << cube.status() << "\n";
    return 1;
  }
  std::cout << "cube ready: " << cube->num_nodes() << " nodes, "
            << cube->stats().tuple_count << " tuples, "
            << cube->num_dimensions() << " dimensions\n";

  std::unique_ptr<replica::SnapshotNotifier> notifier;
  if (!notify_list.empty()) {
    auto endpoints = client::ParseEndpointList(notify_list);
    if (!endpoints.ok()) {
      std::cerr << endpoints.status() << "\n";
      return 1;
    }
    if (snapshot_dir.empty()) {
      std::cerr << "--notify requires --snapshot-dir (replicas load the "
                   "spooled files)\n";
      return 1;
    }
    notifier = std::make_unique<replica::SnapshotNotifier>(*endpoints);
  }

  server::ServerOptions options;
  options.num_workers = workers;
  options.full_rebuild = full_rebuild;
  options.snapshot_dir = snapshot_dir;
  if (notifier != nullptr) {
    options.post_publish = [&notifier](uint64_t epoch,
                                       const std::string& path) {
      size_t acked = notifier->NotifyAll(path);
      std::cout << "epoch " << epoch << " spooled to " << path << "; "
                << acked << " replica(s) loaded it\n";
    };
  }
  server::QueryServer server(std::move(*cube), options);
  server::TcpServer tcp(&server);
  if (Status status = tcp.Start(static_cast<uint16_t>(port), bind_address);
      !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  std::cout << "serving on " << tcp.bind_address() << ":" << tcp.port()
            << " with "
            << server.num_workers() << " worker(s)\n"
            << "wire: 4-byte big-endian length + JSON, e.g.\n"
            << R"(  {"op":"point","keys":[null,null,null,null,null,null,null,null]})"
            << "\n"
            << R"(  {"op":"rollup","dims":["Weekday"]})" << "\n"
            << R"(  {"op":"query_open","query":{"op":"rollup","dims":["Weekday"]},"page_size":64})"
            << "\n"
            << R"(  {"op":"query_next","cursor":1}   (repeat until "done":true))"
            << "\n"
            << R"(  {"op":"stats"})" << "\n"
            << R"(  {"op":"metrics"})" << "\n"
            << "type 'quit' (or close stdin) to stop\n";

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
  }
  tcp.Stop();
  server::ServerStats stats = server.Stats();
  std::cout << "served " << stats.queries_total << " queries ("
            << stats.rejected_total << " rejected), cache hit rate "
            << stats.cache_hit_rate << "\n";
  if (!metrics_dump.empty()) {
    if (WriteTextFile(metrics_dump, server.MetricsJson() + "\n")) {
      std::cout << "metrics snapshot written to " << metrics_dump << "\n";
    } else {
      std::cerr << "failed to write metrics snapshot to " << metrics_dump
                << "\n";
      return 1;
    }
  }
  if (!prometheus_dump.empty()) {
    if (WriteTextFile(prometheus_dump, server.MetricsText())) {
      std::cout << "prometheus metrics written to " << prometheus_dump << "\n";
    } else {
      std::cerr << "failed to write prometheus metrics to " << prometheus_dump
                << "\n";
      return 1;
    }
  }
  if (!trace_dump.empty()) {
    if (WriteTextFile(trace_dump, trace::ExportChromeJson())) {
      std::cout << "trace written to " << trace_dump
                << " (load via chrome://tracing)\n";
    } else {
      std::cerr << "failed to write trace to " << trace_dump << "\n";
      return 1;
    }
  }
  return 0;
}
