// scdwarf_server — standalone cube query service.
//
// Builds the 8-dimension bikes cube from the synthetic XML feed and serves
// it over the length-prefixed JSON wire format (see src/server/wire.h):
//
//   scdwarf_server [port] [records] [workers]
//
//   port     TCP port on 127.0.0.1 (default 0 = kernel-assigned, printed)
//   records  synthetic feed records for the served cube (default 20000)
//   workers  query worker threads (default 0 = SCDWARF_THREADS / hardware)
//
// Runs until stdin closes or a "quit" line arrives. Example session with
// python (4-byte big-endian length prefix per frame):
//
//   import socket, struct, json
//   s = socket.create_connection(("127.0.0.1", PORT))
//   req = json.dumps({"op": "rollup", "dims": ["Weekday"]}).encode()
//   s.sendall(struct.pack(">I", len(req)) + req)
//   n, = struct.unpack(">I", s.recv(4))
//   print(json.loads(s.recv(n)))

#include <cstdlib>
#include <iostream>
#include <string>

#include "citibikes/bike_feed.h"
#include "etl/pipeline.h"
#include "server/query_server.h"
#include "server/tcp_server.h"

using namespace scdwarf;

int main(int argc, char** argv) {
  int port = argc > 1 ? std::atoi(argv[1]) : 0;
  int records = argc > 2 ? std::atoi(argv[2]) : 20000;
  int workers = argc > 3 ? std::atoi(argv[3]) : 0;

  citibikes::BikeFeedConfig config;
  config.target_records = records;
  citibikes::BikeFeedGenerator feed(config);
  auto pipeline = etl::MakeBikesXmlPipeline();
  if (!pipeline.ok()) {
    std::cerr << pipeline.status() << "\n";
    return 1;
  }
  while (feed.HasNext()) {
    if (Status status = pipeline->ConsumeXml(feed.NextXml()); !status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
  }
  auto cube = std::move(*pipeline).Finish();
  if (!cube.ok()) {
    std::cerr << cube.status() << "\n";
    return 1;
  }
  std::cout << "cube ready: " << cube->num_nodes() << " nodes, "
            << cube->stats().tuple_count << " tuples, "
            << cube->num_dimensions() << " dimensions\n";

  server::ServerOptions options;
  options.num_workers = workers;
  server::QueryServer server(std::move(*cube), options);
  server::TcpServer tcp(&server);
  if (Status status = tcp.Start(static_cast<uint16_t>(port)); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  std::cout << "serving on 127.0.0.1:" << tcp.port() << " with "
            << server.num_workers() << " worker(s)\n"
            << "wire: 4-byte big-endian length + JSON, e.g.\n"
            << R"(  {"op":"point","keys":[null,null,null,null,null,null,null,null]})"
            << "\n"
            << R"(  {"op":"rollup","dims":["Weekday"]})" << "\n"
            << R"(  {"op":"query_open","query":{"op":"rollup","dims":["Weekday"]},"page_size":64})"
            << "\n"
            << R"(  {"op":"query_next","cursor":1}   (repeat until "done":true))"
            << "\n"
            << R"(  {"op":"stats"})" << "\n"
            << "type 'quit' (or close stdin) to stop\n";

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
  }
  tcp.Stop();
  server::ServerStats stats = server.Stats();
  std::cout << "served " << stats.queries_total << " queries ("
            << stats.rejected_total << " rejected), cache hit rate "
            << stats.cache_hit_rate << "\n";
  return 0;
}
