#include "server/frame_handler.h"

#include "server/binwire.h"
#include "server/wire.h"

namespace scdwarf::server {

std::string FrameHandler::HandleBinaryFrame(std::string_view request_payload,
                                            ClientContext* client) {
  // A negotiated connection may still send JSON frames (the formats share
  // one connection; no JSON object starts with the 0xB1 magic byte). Answer
  // them in kind.
  if (!binwire::IsBinaryPayload(request_payload)) {
    return HandleFrame(request_payload, client);
  }
  Result<QueryRequest> request = binwire::DecodeRequest(request_payload);
  if (!request.ok()) {
    return binwire::EncodeJsonPassthrough(
        MakeResponse(false, 0, false, MakeErrorPayload(request.status())));
  }
  // NormalizedCacheKey is the canonical JSON spelling of a request, so the
  // decoded request re-enters the JSON path as if the client had sent it
  // that way — same parsing, same cache keys, same responses.
  return binwire::EncodeJsonPassthrough(
      HandleFrame(NormalizedCacheKey(*request), client));
}

}  // namespace scdwarf::server
