#include "server/wire.h"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "json/json_parser.h"
#include "json/json_value.h"

namespace scdwarf::server {

namespace {

using json::JsonArray;
using json::JsonObject;
using json::JsonValue;

Result<RequestOp> ParseOp(std::string_view name) {
  if (name == "point") return RequestOp::kPoint;
  if (name == "aggregate") return RequestOp::kAggregate;
  if (name == "slice") return RequestOp::kSlice;
  if (name == "rollup") return RequestOp::kRollUp;
  if (name == "stats") return RequestOp::kStats;
  if (name == "metrics") return RequestOp::kMetrics;
  if (name == "query_open") return RequestOp::kQueryOpen;
  if (name == "query_next") return RequestOp::kQueryNext;
  if (name == "query_close") return RequestOp::kQueryClose;
  if (name == "ping") return RequestOp::kPing;
  if (name == "metrics_text") return RequestOp::kMetricsText;
  if (name == "load_snapshot") return RequestOp::kLoadSnapshot;
  if (name == "hello") return RequestOp::kHello;
  return Status::InvalidArgument("unknown op '" + std::string(name) + "'");
}

/// Parses one id-form range bound. Rejects anything a DimKey cannot hold
/// exactly: NaN (every comparison with it is false, so it used to sneak past
/// a plain `< 0` check into an undefined cast), non-integral values, and
/// values outside [0, 2^32).
Result<dwarf::DimKey> ParseDimKeyBound(const JsonValue& bound,
                                       const char* name) {
  SCD_ASSIGN_OR_RETURN(double number, bound.AsNumber());
  if (!(number >= 0) ||
      number > static_cast<double>(std::numeric_limits<dwarf::DimKey>::max()) ||
      number != std::floor(number)) {
    return Status::InvalidArgument(
        std::string("range bound \"") + name +
        "\" must be an integer dictionary id in [0, 2^32)");
  }
  return static_cast<dwarf::DimKey>(number);
}

Result<WirePredicate> ParsePredicate(const JsonValue& value) {
  const JsonObject* object = value.AsObject();
  if (object == nullptr) {
    return Status::InvalidArgument("predicate must be an object");
  }
  WirePredicate predicate;
  SCD_ASSIGN_OR_RETURN(JsonValue kind_value, value.Get("kind"));
  SCD_ASSIGN_OR_RETURN(std::string kind, kind_value.AsString());
  if (kind == "all") {
    predicate.kind = dwarf::DimPredicate::Kind::kAll;
  } else if (kind == "point") {
    predicate.kind = dwarf::DimPredicate::Kind::kPoint;
    SCD_ASSIGN_OR_RETURN(JsonValue key, value.Get("key"));
    SCD_ASSIGN_OR_RETURN(predicate.key, key.AsString());
  } else if (kind == "range") {
    predicate.kind = dwarf::DimPredicate::Kind::kRange;
    SCD_ASSIGN_OR_RETURN(JsonValue lo, value.Get("lo"));
    SCD_ASSIGN_OR_RETURN(JsonValue hi, value.Get("hi"));
    if (lo.is_string() || hi.is_string()) {
      // Value form: both bounds are decoded dimension values, resolved
      // against the ordered dimension's rank view at encode time.
      if (!lo.is_string() || !hi.is_string()) {
        return Status::InvalidArgument(
            "range bounds must both be ids (numbers) or both be values "
            "(strings)");
      }
      predicate.value_bounds = true;
      SCD_ASSIGN_OR_RETURN(predicate.lo_value, lo.AsString());
      SCD_ASSIGN_OR_RETURN(predicate.hi_value, hi.AsString());
      if (predicate.lo_value > predicate.hi_value) {
        return Status::InvalidArgument("range predicate has lo > hi");
      }
    } else {
      SCD_ASSIGN_OR_RETURN(predicate.lo, ParseDimKeyBound(lo, "lo"));
      SCD_ASSIGN_OR_RETURN(predicate.hi, ParseDimKeyBound(hi, "hi"));
      if (predicate.lo > predicate.hi) {
        return Status::InvalidArgument("range predicate has lo > hi");
      }
    }
  } else if (kind == "set") {
    predicate.kind = dwarf::DimPredicate::Kind::kSet;
    SCD_ASSIGN_OR_RETURN(JsonValue keys, value.Get("keys"));
    const JsonArray* array = keys.AsArray();
    if (array == nullptr) {
      return Status::InvalidArgument("set predicate needs a \"keys\" array");
    }
    for (const JsonValue& entry : *array) {
      SCD_ASSIGN_OR_RETURN(std::string member, entry.AsString());
      predicate.keys.push_back(std::move(member));
    }
  } else {
    return Status::InvalidArgument("unknown predicate kind '" + kind + "'");
  }
  return predicate;
}

Result<std::vector<std::string>> ParseStringArray(const JsonValue& value,
                                                  const char* field) {
  const JsonArray* array = value.AsArray();
  if (array == nullptr) {
    return Status::InvalidArgument(std::string("\"") + field +
                                   "\" must be an array of strings");
  }
  std::vector<std::string> out;
  out.reserve(array->size());
  for (const JsonValue& entry : *array) {
    SCD_ASSIGN_OR_RETURN(std::string text, entry.AsString());
    out.push_back(std::move(text));
  }
  return out;
}

}  // namespace

const char* RequestOpName(RequestOp op) {
  switch (op) {
    case RequestOp::kPoint: return "point";
    case RequestOp::kAggregate: return "aggregate";
    case RequestOp::kSlice: return "slice";
    case RequestOp::kRollUp: return "rollup";
    case RequestOp::kStats: return "stats";
    case RequestOp::kMetrics: return "metrics";
    case RequestOp::kQueryOpen: return "query_open";
    case RequestOp::kQueryNext: return "query_next";
    case RequestOp::kQueryClose: return "query_close";
    case RequestOp::kPing: return "ping";
    case RequestOp::kMetricsText: return "metrics_text";
    case RequestOp::kLoadSnapshot: return "load_snapshot";
    case RequestOp::kHello: return "hello";
  }
  return "?";
}

namespace {

Result<uint64_t> ParseCursorId(const JsonValue& root) {
  SCD_ASSIGN_OR_RETURN(JsonValue cursor, root.Get("cursor"));
  SCD_ASSIGN_OR_RETURN(double id, cursor.AsNumber());
  if (id < 0 || id != static_cast<double>(static_cast<uint64_t>(id))) {
    return Status::InvalidArgument("\"cursor\" must be a non-negative integer");
  }
  return static_cast<uint64_t>(id);
}

Result<QueryRequest> ParseRequestValue(const JsonValue& root) {
  if (!root.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  SCD_ASSIGN_OR_RETURN(JsonValue op_value, root.Get("op"));
  SCD_ASSIGN_OR_RETURN(std::string op_name, op_value.AsString());
  QueryRequest request;
  SCD_ASSIGN_OR_RETURN(request.op, ParseOp(op_name));
  switch (request.op) {
    case RequestOp::kPoint: {
      SCD_ASSIGN_OR_RETURN(JsonValue keys, root.Get("keys"));
      const JsonArray* array = keys.AsArray();
      if (array == nullptr) {
        return Status::InvalidArgument(
            "point request needs a \"keys\" array (null = ALL)");
      }
      for (const JsonValue& entry : *array) {
        if (entry.is_null()) {
          request.point_keys.push_back(std::nullopt);
        } else {
          SCD_ASSIGN_OR_RETURN(std::string key, entry.AsString());
          request.point_keys.push_back(std::move(key));
        }
      }
      break;
    }
    case RequestOp::kAggregate: {
      SCD_ASSIGN_OR_RETURN(JsonValue predicates, root.Get("predicates"));
      const JsonArray* array = predicates.AsArray();
      if (array == nullptr) {
        return Status::InvalidArgument(
            "aggregate request needs a \"predicates\" array");
      }
      for (const JsonValue& entry : *array) {
        SCD_ASSIGN_OR_RETURN(WirePredicate predicate, ParsePredicate(entry));
        request.predicates.push_back(std::move(predicate));
      }
      break;
    }
    case RequestOp::kSlice: {
      SCD_ASSIGN_OR_RETURN(JsonValue dim, root.Get("dim"));
      SCD_ASSIGN_OR_RETURN(request.slice_dim, dim.AsString());
      SCD_ASSIGN_OR_RETURN(JsonValue key, root.Get("key"));
      SCD_ASSIGN_OR_RETURN(request.slice_key, key.AsString());
      break;
    }
    case RequestOp::kRollUp: {
      SCD_ASSIGN_OR_RETURN(JsonValue dims, root.Get("dims"));
      SCD_ASSIGN_OR_RETURN(request.rollup_dims, ParseStringArray(dims, "dims"));
      if (Result<JsonValue> where = root.Get("where"); where.ok()) {
        const JsonArray* array = where->AsArray();
        if (array == nullptr) {
          return Status::InvalidArgument(
              "\"where\" must be an array of {dim,lo,hi} objects");
        }
        for (const JsonValue& entry : *array) {
          WireRangeFilter filter;
          SCD_ASSIGN_OR_RETURN(JsonValue dim, entry.Get("dim"));
          SCD_ASSIGN_OR_RETURN(filter.dim, dim.AsString());
          SCD_ASSIGN_OR_RETURN(JsonValue lo, entry.Get("lo"));
          SCD_ASSIGN_OR_RETURN(filter.lo, lo.AsString());
          SCD_ASSIGN_OR_RETURN(JsonValue hi, entry.Get("hi"));
          SCD_ASSIGN_OR_RETURN(filter.hi, hi.AsString());
          if (filter.lo > filter.hi) {
            return Status::InvalidArgument("rollup \"where\" range on '" +
                                           filter.dim + "' has lo > hi");
          }
          if (std::find(request.rollup_dims.begin(), request.rollup_dims.end(),
                        filter.dim) == request.rollup_dims.end()) {
            return Status::InvalidArgument(
                "rollup \"where\" dimension '" + filter.dim +
                "' is not in \"dims\"");
          }
          for (const WireRangeFilter& prev : request.rollup_where) {
            if (prev.dim == filter.dim) {
              return Status::InvalidArgument(
                  "duplicate rollup \"where\" dimension '" + filter.dim + "'");
            }
          }
          request.rollup_where.push_back(std::move(filter));
        }
      }
      break;
    }
    case RequestOp::kStats:
    case RequestOp::kMetrics:
      break;
    case RequestOp::kQueryOpen: {
      SCD_ASSIGN_OR_RETURN(JsonValue query, root.Get("query"));
      SCD_ASSIGN_OR_RETURN(QueryRequest inner, ParseRequestValue(query));
      if (inner.op != RequestOp::kSlice && inner.op != RequestOp::kRollUp) {
        return Status::InvalidArgument(
            "query_open pages row results: \"query\" must be a slice or "
            "rollup request, got op '" +
            std::string(RequestOpName(inner.op)) + "'");
      }
      request.open_query = std::make_shared<QueryRequest>(std::move(inner));
      SCD_ASSIGN_OR_RETURN(JsonValue page_size, root.Get("page_size"));
      SCD_ASSIGN_OR_RETURN(double size, page_size.AsNumber());
      if (size < 1 || size != static_cast<double>(static_cast<size_t>(size))) {
        return Status::InvalidArgument(
            "\"page_size\" must be a positive integer");
      }
      if (size > static_cast<double>(kMaxPageSize)) {
        return Status::InvalidArgument(
            "\"page_size\" exceeds the maximum of " +
            std::to_string(kMaxPageSize));
      }
      request.page_size = static_cast<size_t>(size);
      if (Result<JsonValue> epoch = root.Get("epoch"); epoch.ok()) {
        SCD_ASSIGN_OR_RETURN(double pinned, epoch->AsNumber());
        if (pinned < 0 ||
            pinned != static_cast<double>(static_cast<uint64_t>(pinned))) {
          return Status::InvalidArgument(
              "\"epoch\" must be a non-negative integer");
        }
        request.open_epoch = static_cast<uint64_t>(pinned);
      }
      break;
    }
    case RequestOp::kQueryNext:
    case RequestOp::kQueryClose: {
      SCD_ASSIGN_OR_RETURN(request.cursor_id, ParseCursorId(root));
      break;
    }
    case RequestOp::kPing:
    case RequestOp::kMetricsText:
      break;
    case RequestOp::kLoadSnapshot: {
      SCD_ASSIGN_OR_RETURN(JsonValue path, root.Get("path"));
      SCD_ASSIGN_OR_RETURN(request.snapshot_path, path.AsString());
      if (request.snapshot_path.empty()) {
        return Status::InvalidArgument("\"path\" must not be empty");
      }
      break;
    }
    case RequestOp::kHello: {
      // "formats" is optional: a bare hello means JSON only.
      if (Result<JsonValue> formats = root.Get("formats"); formats.ok()) {
        SCD_ASSIGN_OR_RETURN(request.hello_formats,
                             ParseStringArray(*formats, "formats"));
      }
      break;
    }
  }
  return request;
}

Result<QueryRequest> ParseRequestImpl(std::string_view request_json) {
  SCD_ASSIGN_OR_RETURN(JsonValue root, json::ParseJson(request_json));
  return ParseRequestValue(root);
}

}  // namespace

Result<QueryRequest> ParseRequest(std::string_view request_json) {
  Result<QueryRequest> parsed = ParseRequestImpl(request_json);
  if (!parsed.ok() && parsed.status().IsNotFound()) {
    // A missing request field (e.g. no "keys") is a malformed request, not a
    // missing cube value: report it as such.
    return Status::InvalidArgument(parsed.status().message());
  }
  return parsed;
}

std::string NormalizedCacheKey(const QueryRequest& request) {
  JsonObject root;
  root.emplace_back("op", JsonValue(RequestOpName(request.op)));
  switch (request.op) {
    case RequestOp::kPoint: {
      JsonArray keys;
      for (const std::optional<std::string>& key : request.point_keys) {
        keys.push_back(key.has_value() ? JsonValue(*key) : JsonValue(nullptr));
      }
      root.emplace_back("keys", JsonValue(std::move(keys)));
      break;
    }
    case RequestOp::kAggregate: {
      JsonArray predicates;
      for (const WirePredicate& predicate : request.predicates) {
        JsonObject entry;
        switch (predicate.kind) {
          case dwarf::DimPredicate::Kind::kAll:
            entry.emplace_back("kind", JsonValue("all"));
            break;
          case dwarf::DimPredicate::Kind::kPoint:
            entry.emplace_back("kind", JsonValue("point"));
            entry.emplace_back("key", JsonValue(predicate.key));
            break;
          case dwarf::DimPredicate::Kind::kRange:
            entry.emplace_back("kind", JsonValue("range"));
            // String bounds serialize quoted, so the value form can never
            // collide with an id form in the cache.
            if (predicate.value_bounds) {
              entry.emplace_back("lo", JsonValue(predicate.lo_value));
              entry.emplace_back("hi", JsonValue(predicate.hi_value));
            } else {
              entry.emplace_back("lo",
                                 JsonValue(static_cast<int64_t>(predicate.lo)));
              entry.emplace_back("hi",
                                 JsonValue(static_cast<int64_t>(predicate.hi)));
            }
            break;
          case dwarf::DimPredicate::Kind::kSet: {
            entry.emplace_back("kind", JsonValue("set"));
            // A set is order-insensitive; sort + dedup so permutations of the
            // same member list share one cache entry.
            std::vector<std::string> members = predicate.keys;
            std::sort(members.begin(), members.end());
            members.erase(std::unique(members.begin(), members.end()),
                          members.end());
            JsonArray keys;
            for (std::string& member : members) {
              keys.push_back(JsonValue(std::move(member)));
            }
            entry.emplace_back("keys", JsonValue(std::move(keys)));
            break;
          }
        }
        predicates.push_back(JsonValue(std::move(entry)));
      }
      root.emplace_back("predicates", JsonValue(std::move(predicates)));
      break;
    }
    case RequestOp::kSlice:
      root.emplace_back("dim", JsonValue(request.slice_dim));
      root.emplace_back("key", JsonValue(request.slice_key));
      break;
    case RequestOp::kRollUp: {
      JsonArray dims;
      for (const std::string& dim : request.rollup_dims) {
        dims.push_back(JsonValue(dim));
      }
      root.emplace_back("dims", JsonValue(std::move(dims)));
      // "where" entries are order-insensitive (one per dim); sort by dim so
      // permutations share a cache entry. Omitted entirely when empty, so
      // plain roll-up keys are unchanged.
      if (!request.rollup_where.empty()) {
        std::vector<WireRangeFilter> sorted = request.rollup_where;
        std::sort(sorted.begin(), sorted.end(),
                  [](const WireRangeFilter& a, const WireRangeFilter& b) {
                    return a.dim < b.dim;
                  });
        JsonArray where;
        for (const WireRangeFilter& filter : sorted) {
          JsonObject entry;
          entry.emplace_back("dim", JsonValue(filter.dim));
          entry.emplace_back("lo", JsonValue(filter.lo));
          entry.emplace_back("hi", JsonValue(filter.hi));
          where.push_back(JsonValue(std::move(entry)));
        }
        root.emplace_back("where", JsonValue(std::move(where)));
      }
      break;
    }
    case RequestOp::kStats:
    case RequestOp::kMetrics:
      break;
    case RequestOp::kQueryOpen: {
      // Session ops never enter the result cache; normalized anyway so every
      // RequestOp has one canonical spelling.
      if (request.open_query != nullptr) {
        auto inner = json::ParseJson(NormalizedCacheKey(*request.open_query));
        root.emplace_back("query",
                          inner.ok() ? *inner : JsonValue(nullptr));
      }
      root.emplace_back(
          "page_size", JsonValue(static_cast<int64_t>(request.page_size)));
      if (request.open_epoch.has_value()) {
        root.emplace_back(
            "epoch", JsonValue(static_cast<int64_t>(*request.open_epoch)));
      }
      break;
    }
    case RequestOp::kQueryNext:
    case RequestOp::kQueryClose:
      root.emplace_back("cursor",
                        JsonValue(static_cast<int64_t>(request.cursor_id)));
      break;
    case RequestOp::kPing:
    case RequestOp::kMetricsText:
      break;
    case RequestOp::kLoadSnapshot:
      root.emplace_back("path", JsonValue(request.snapshot_path));
      break;
    case RequestOp::kHello: {
      JsonArray formats;
      for (const std::string& format : request.hello_formats) {
        formats.push_back(JsonValue(format));
      }
      root.emplace_back("formats", JsonValue(std::move(formats)));
      break;
    }
  }
  return json::SerializeJson(JsonValue(std::move(root)));
}

Result<std::vector<dwarf::DimPredicate>> EncodePredicates(
    const dwarf::DwarfCube& cube,
    const std::vector<WirePredicate>& predicates) {
  if (predicates.size() != cube.num_dimensions()) {
    return Status::InvalidArgument(
        "aggregate request has " + std::to_string(predicates.size()) +
        " predicates, cube has " + std::to_string(cube.num_dimensions()) +
        " dimensions");
  }
  std::vector<dwarf::DimPredicate> encoded;
  encoded.reserve(predicates.size());
  for (size_t dim = 0; dim < predicates.size(); ++dim) {
    const WirePredicate& predicate = predicates[dim];
    switch (predicate.kind) {
      case dwarf::DimPredicate::Kind::kAll:
        encoded.push_back(dwarf::DimPredicate::All());
        break;
      case dwarf::DimPredicate::Kind::kPoint: {
        SCD_ASSIGN_OR_RETURN(dwarf::DimKey id,
                             cube.dictionary(dim).Lookup(predicate.key));
        encoded.push_back(dwarf::DimPredicate::Point(id));
        break;
      }
      case dwarf::DimPredicate::Kind::kRange: {
        if (predicate.value_bounds) {
          const dwarf::Dictionary& dict = cube.dictionary(dim);
          if (!cube.schema().dimensions()[dim].ordered ||
              !dict.has_rank_view()) {
            return Status::InvalidArgument(
                "value-bound range on dimension '" +
                cube.schema().dimensions()[dim].name +
                "', which is not marked ordered in the cube schema");
          }
          if (predicate.lo_value > predicate.hi_value) {
            return Status::InvalidArgument("range predicate has lo > hi");
          }
          // [lo_value, hi_value] inclusive over decoded values becomes a
          // half-open rank window [LowerBound(lo), UpperBound(hi)).
          dwarf::DimKey lo_rank = dict.LowerBoundRank(predicate.lo_value);
          dwarf::DimKey hi_excl = dict.UpperBoundRank(predicate.hi_value);
          if (lo_rank >= hi_excl) {
            return Status::NotFound("no value of dimension " +
                                    std::to_string(dim) +
                                    " falls in the requested range");
          }
          encoded.push_back(dwarf::DimPredicate::RankRange(lo_rank, hi_excl - 1));
          break;
        }
        if (predicate.lo > predicate.hi) {
          return Status::InvalidArgument("range predicate has lo > hi");
        }
        encoded.push_back(dwarf::DimPredicate::Range(predicate.lo, predicate.hi));
        break;
      }
      case dwarf::DimPredicate::Kind::kSet: {
        std::vector<dwarf::DimKey> ids;
        for (const std::string& member : predicate.keys) {
          auto id = cube.dictionary(dim).Lookup(member);
          if (id.ok()) ids.push_back(*id);
        }
        if (ids.empty()) {
          return Status::NotFound("no set member of dimension " +
                                  std::to_string(dim) +
                                  " exists in the cube dictionary");
        }
        encoded.push_back(dwarf::DimPredicate::Set(std::move(ids)));
        break;
      }
    }
  }
  return encoded;
}

void AppendJsonString(std::string_view text, std::string* out) {
  out->push_back('"');
  out->append(json::EscapeJsonString(text));
  out->push_back('"');
}

void AppendJsonMeasure(dwarf::Measure value, std::string* out) {
  // Mirrors JsonValue::ToFieldString for numbers: the JSON model stores
  // every number as a double, so measures round-trip through one here too —
  // hand-assembled payloads must stay byte-identical to model-built ones.
  double as_double = static_cast<double>(value);
  if (std::nearbyint(as_double) == as_double && std::fabs(as_double) < 1e15) {
    out->append(std::to_string(static_cast<long long>(as_double)));
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", as_double);
  out->append(buffer);
}

void AppendRowsJson(const std::vector<dwarf::SliceRow>& rows,
                    std::string* out) {
  out->push_back('[');
  bool first_row = true;
  for (const dwarf::SliceRow& row : rows) {
    if (!first_row) out->push_back(',');
    first_row = false;
    out->append("{\"keys\":[");
    bool first_key = true;
    for (const std::string& key : row.keys) {
      if (!first_key) out->push_back(',');
      first_key = false;
      AppendJsonString(key, out);
    }
    out->append("],\"measure\":");
    AppendJsonMeasure(row.measure, out);
    out->push_back('}');
  }
  out->push_back(']');
}

namespace {

/// Rough serialized footprint of one row, for payload buffer reservation:
/// braces/field names plus the key bytes themselves.
size_t EstimateRowsJsonBytes(const std::vector<dwarf::SliceRow>& rows) {
  size_t bytes = 2;
  for (const dwarf::SliceRow& row : rows) {
    bytes += 40;  // {"keys":[],"measure":} + digits + commas
    for (const std::string& key : row.keys) bytes += key.size() + 3;
  }
  return bytes;
}

ExecResult MeasureResult(const Result<dwarf::Measure>& measure) {
  if (!measure.ok()) return {false, MakeErrorPayload(measure.status())};
  std::string payload = "{\"measure\":";
  AppendJsonMeasure(*measure, &payload);
  payload.push_back('}');
  return {true, std::move(payload)};
}

ExecResult RowsResult(const Result<std::vector<dwarf::SliceRow>>& rows) {
  if (!rows.ok()) return {false, MakeErrorPayload(rows.status())};
  std::string payload;
  payload.reserve(16 + EstimateRowsJsonBytes(*rows));
  payload.append("{\"rows\":");
  AppendRowsJson(*rows, &payload);
  payload.push_back('}');
  return {true, std::move(payload)};
}

/// Resolves a rollup request's "where" value ranges to per-dimension rank
/// windows. A range that covers no dictionary entry resolves to the empty
/// window (lo > hi), which matches nothing — a zero-row roll-up, not an
/// error. Leaves \p filters empty when the request has no "where" clause.
Status ResolveRollupFilters(const dwarf::DwarfCube& cube,
                            const std::vector<WireRangeFilter>& where,
                            dwarf::RankFilters* filters) {
  if (where.empty()) return Status::OK();
  filters->assign(cube.num_dimensions(), std::nullopt);
  for (const WireRangeFilter& filter : where) {
    SCD_ASSIGN_OR_RETURN(size_t dim, cube.schema().DimensionIndex(filter.dim));
    const dwarf::Dictionary& dict = cube.dictionary(dim);
    if (!cube.schema().dimensions()[dim].ordered || !dict.has_rank_view()) {
      return Status::InvalidArgument(
          "rollup \"where\" range on dimension '" + filter.dim +
          "', which is not marked ordered in the cube schema");
    }
    if (filter.lo > filter.hi) {
      return Status::InvalidArgument("rollup \"where\" range on '" +
                                     filter.dim + "' has lo > hi");
    }
    dwarf::DimKey lo_rank = dict.LowerBoundRank(filter.lo);
    dwarf::DimKey hi_excl = dict.UpperBoundRank(filter.hi);
    dwarf::RankWindow window;
    if (lo_rank >= hi_excl) {
      window.lo = 1;
      window.hi = 0;  // empty window: the roll-up has zero rows
    } else {
      window.lo = lo_rank;
      window.hi = hi_excl - 1;
    }
    (*filters)[dim] = window;
  }
  return Status::OK();
}

}  // namespace

ExecResult ExecuteRequest(const dwarf::DwarfCube& cube,
                          const QueryRequest& request) {
  switch (request.op) {
    case RequestOp::kPoint:
      return MeasureResult(dwarf::PointQueryByName(cube, request.point_keys));
    case RequestOp::kAggregate: {
      auto predicates = EncodePredicates(cube, request.predicates);
      if (!predicates.ok()) {
        return {false, MakeErrorPayload(predicates.status())};
      }
      return MeasureResult(dwarf::AggregateQuery(cube, *predicates));
    }
    case RequestOp::kSlice: {
      auto dim = cube.schema().DimensionIndex(request.slice_dim);
      if (!dim.ok()) return {false, MakeErrorPayload(dim.status())};
      auto key = cube.dictionary(*dim).Lookup(request.slice_key);
      if (!key.ok()) {
        // A value the dictionary has never seen selects the empty sub-cube.
        return RowsResult(std::vector<dwarf::SliceRow>{});
      }
      return RowsResult(dwarf::Slice(cube, *dim, *key));
    }
    case RequestOp::kRollUp: {
      std::vector<size_t> dims;
      dims.reserve(request.rollup_dims.size());
      for (const std::string& name : request.rollup_dims) {
        auto dim = cube.schema().DimensionIndex(name);
        if (!dim.ok()) return {false, MakeErrorPayload(dim.status())};
        dims.push_back(*dim);
      }
      dwarf::RankFilters filters;
      Status resolved = ResolveRollupFilters(cube, request.rollup_where,
                                             &filters);
      if (!resolved.ok()) return {false, MakeErrorPayload(resolved)};
      return RowsResult(dwarf::RollUp(
          cube, dims, filters.empty() ? nullptr : &filters));
    }
    case RequestOp::kStats:
    case RequestOp::kMetrics:
    case RequestOp::kMetricsText:
    case RequestOp::kPing:
    case RequestOp::kHello:
      return {false, MakeErrorPayload(Status::Internal(
                         "stats/metrics requests are handled by the server"))};
    case RequestOp::kLoadSnapshot:
      return {false, MakeErrorPayload(Status::Internal(
                         "load_snapshot is handled by the server"))};
    case RequestOp::kQueryOpen:
    case RequestOp::kQueryNext:
    case RequestOp::kQueryClose:
      return {false, MakeErrorPayload(Status::Internal(
                         "cursor session ops are handled by the server"))};
  }
  return {false, MakeErrorPayload(Status::Internal("unreachable"))};
}

Result<dwarf::RowCursor> OpenRowCursor(const dwarf::DwarfCube& cube,
                                       const QueryRequest& query) {
  switch (query.op) {
    case RequestOp::kSlice: {
      SCD_ASSIGN_OR_RETURN(size_t dim,
                           cube.schema().DimensionIndex(query.slice_dim));
      auto key = cube.dictionary(dim).Lookup(query.slice_key);
      // An unknown value selects the empty sub-cube: any id past the
      // dictionary matches no cell, so the cursor is born exhausted.
      dwarf::DimKey pinned =
          key.ok() ? *key
                   : static_cast<dwarf::DimKey>(cube.dictionary(dim).size());
      return dwarf::RowCursor::OverSlice(cube, dim, pinned);
    }
    case RequestOp::kRollUp: {
      std::vector<size_t> dims;
      dims.reserve(query.rollup_dims.size());
      for (const std::string& name : query.rollup_dims) {
        SCD_ASSIGN_OR_RETURN(size_t dim, cube.schema().DimensionIndex(name));
        dims.push_back(dim);
      }
      dwarf::RankFilters filters;
      SCD_RETURN_IF_ERROR(
          ResolveRollupFilters(cube, query.rollup_where, &filters));
      return dwarf::RowCursor::OverRollUp(
          cube, dims, filters.empty() ? nullptr : &filters);
    }
    default:
      return Status::InvalidArgument(
          "cursor sessions support only slice and rollup queries");
  }
}

std::string MakeCursorPagePayload(uint64_t cursor_id,
                                  const std::vector<dwarf::SliceRow>& rows,
                                  bool done) {
  std::string payload;
  payload.reserve(48 + EstimateRowsJsonBytes(rows));
  payload.append("{\"cursor\":");
  payload.append(std::to_string(cursor_id));
  payload.append(",\"rows\":");
  AppendRowsJson(rows, &payload);
  payload.append(",\"done\":");
  payload.append(done ? "true" : "false");
  payload.push_back('}');
  return payload;
}

namespace {

/// True when the per-dimension constraints of \p request could match the
/// decoded key path \p path. Undecidable constraints count as matching.
bool PointKeysMayMatch(const std::vector<std::optional<std::string>>& keys,
                       const std::vector<std::string>& path) {
  if (keys.size() != path.size()) return true;  // arity error: conservative
  for (size_t dim = 0; dim < keys.size(); ++dim) {
    if (keys[dim].has_value() && *keys[dim] != path[dim]) return false;
  }
  return true;
}

bool PredicatesMayMatch(const std::vector<WirePredicate>& predicates,
                        const std::vector<std::string>& path) {
  if (predicates.size() != path.size()) return true;
  for (size_t dim = 0; dim < predicates.size(); ++dim) {
    const WirePredicate& predicate = predicates[dim];
    switch (predicate.kind) {
      case dwarf::DimPredicate::Kind::kAll:
        break;
      case dwarf::DimPredicate::Kind::kPoint:
        if (predicate.key != path[dim]) return false;
        break;
      case dwarf::DimPredicate::Kind::kSet:
        if (std::find(predicate.keys.begin(), predicate.keys.end(),
                      path[dim]) == predicate.keys.end()) {
          return false;
        }
        break;
      case dwarf::DimPredicate::Kind::kRange:
        // Value bounds ARE decidable here: rank order is lexicographic value
        // order, so a changed key outside [lo, hi] provably misses the
        // range. Id bounds stay undecidable at the string level.
        if (predicate.value_bounds && (path[dim] < predicate.lo_value ||
                                       path[dim] > predicate.hi_value)) {
          return false;
        }
        break;
    }
  }
  return true;
}

}  // namespace

bool RequestMayTouchPrefixes(
    const dwarf::CubeSchema& schema, const QueryRequest& request,
    const std::vector<std::vector<std::string>>& changed) {
  if (changed.empty()) return false;
  switch (request.op) {
    case RequestOp::kPoint:
      for (const std::vector<std::string>& path : changed) {
        if (PointKeysMayMatch(request.point_keys, path)) return true;
      }
      return false;
    case RequestOp::kAggregate:
      for (const std::vector<std::string>& path : changed) {
        if (PredicatesMayMatch(request.predicates, path)) return true;
      }
      return false;
    case RequestOp::kSlice: {
      auto dim = schema.DimensionIndex(request.slice_dim);
      if (!dim.ok()) return true;  // unknown dimension: conservative
      for (const std::vector<std::string>& path : changed) {
        if (*dim >= path.size() || path[*dim] == request.slice_key) {
          return true;
        }
      }
      return false;
    }
    case RequestOp::kRollUp: {
      // A plain roll-up always touches (every new tuple lands in some
      // group), but a "where" clause makes it decidable: a changed path
      // misses when its key on some filtered dimension falls outside the
      // filter's value range.
      if (request.rollup_where.empty()) return true;
      for (const std::vector<std::string>& path : changed) {
        bool excluded = false;
        for (const WireRangeFilter& filter : request.rollup_where) {
          auto dim = schema.DimensionIndex(filter.dim);
          if (!dim.ok() || *dim >= path.size()) continue;  // conservative
          if (path[*dim] < filter.lo || path[*dim] > filter.hi) {
            excluded = true;
            break;
          }
        }
        if (!excluded) return true;
      }
      return false;
    }
    case RequestOp::kStats:
    case RequestOp::kMetrics:
    case RequestOp::kMetricsText:
    case RequestOp::kPing:
    case RequestOp::kLoadSnapshot:
    case RequestOp::kQueryOpen:
    case RequestOp::kQueryNext:
    case RequestOp::kQueryClose:
    case RequestOp::kHello:
      // Uncacheable or stateful ops — always treat as touched.
      return true;
  }
  return true;
}

std::string MakeResponse(bool ok, uint64_t epoch, bool cached,
                         const std::string& payload_json) {
  std::string out = "{\"ok\":";
  out += ok ? "true" : "false";
  out += ",\"epoch\":";
  out += std::to_string(epoch);
  out += ",\"cached\":";
  out += cached ? "true" : "false";
  if (payload_json.size() > 2) {  // merge the payload object's fields
    out += ",";
    out.append(payload_json, 1, payload_json.size() - 1);
  } else {
    out += "}";
  }
  return out;
}

std::string MakeErrorPayload(const Status& status) {
  std::string code = StatusCodeToString(status.code());
  std::replace(code.begin(), code.end(), ' ', '_');
  for (char& c : code) c = static_cast<char>(std::tolower(c));
  JsonObject payload;
  payload.emplace_back("code", JsonValue(std::move(code)));
  payload.emplace_back("error", JsonValue(status.message()));
  return json::SerializeJson(JsonValue(std::move(payload)));
}

namespace {

/// " (peer 127.0.0.1:4321)" when a peer was named, "" otherwise — appended
/// to frame I/O errors so client-path callers can tell which endpoint broke.
std::string PeerSuffix(std::string_view peer) {
  if (peer.empty()) return "";
  return " (peer " + std::string(peer) + ")";
}

}  // namespace

Status WriteFull(int fd, const char* data, size_t size,
                 std::string_view peer) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IoError("frame write timed out" + PeerSuffix(peer));
      }
      return Status::IoError("frame write failed: " +
                             std::string(std::strerror(errno)) +
                             PeerSuffix(peer));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> ReadFull(int fd, char* data, size_t size,
                        std::string_view peer) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::read(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IoError("frame read timed out" + PeerSuffix(peer));
      }
      return Status::IoError("frame read failed: " +
                             std::string(std::strerror(errno)) +
                             PeerSuffix(peer));
    }
    if (n == 0) break;
    done += static_cast<size_t>(n);
  }
  return done;
}

Status WriteFrame(int fd, std::string_view payload, std::string_view peer) {
  unsigned char header[4] = {
      static_cast<unsigned char>((payload.size() >> 24) & 0xff),
      static_cast<unsigned char>((payload.size() >> 16) & 0xff),
      static_cast<unsigned char>((payload.size() >> 8) & 0xff),
      static_cast<unsigned char>(payload.size() & 0xff)};
  std::string frame(reinterpret_cast<char*>(header), sizeof(header));
  frame.append(payload);
  return WriteFull(fd, frame.data(), frame.size(), peer);
}

Result<std::string> ReadFrame(int fd, size_t max_frame_bytes,
                              std::string_view peer) {
  char header[4];
  SCD_ASSIGN_OR_RETURN(size_t header_read,
                       ReadFull(fd, header, sizeof(header), peer));
  if (header_read == 0) {
    return Status::NotFound("connection closed" + PeerSuffix(peer));
  }
  if (header_read < sizeof(header)) {
    return Status::IoError("connection closed mid-header" + PeerSuffix(peer));
  }
  size_t size = (static_cast<size_t>(static_cast<unsigned char>(header[0])) << 24) |
                (static_cast<size_t>(static_cast<unsigned char>(header[1])) << 16) |
                (static_cast<size_t>(static_cast<unsigned char>(header[2])) << 8) |
                static_cast<size_t>(static_cast<unsigned char>(header[3]));
  if (size > max_frame_bytes) {
    return Status::IoError("frame of " + std::to_string(size) +
                           " bytes exceeds the " +
                           std::to_string(max_frame_bytes) + "-byte limit" +
                           PeerSuffix(peer));
  }
  std::string payload(size, '\0');
  SCD_ASSIGN_OR_RETURN(size_t payload_read,
                       ReadFull(fd, payload.data(), size, peer));
  if (payload_read < size) {
    return Status::IoError("connection closed mid-frame" + PeerSuffix(peer));
  }
  return payload;
}

}  // namespace scdwarf::server
