/// \file epoch_cube.h
/// \brief Versioned holder of the served cube: readers take an epoch-stamped
/// snapshot under a shared lock, writers rebuild off to the side and publish
/// the new cube under the next epoch.
///
/// Readers never block on an update: a snapshot is a shared_ptr to an
/// immutable DwarfCube, so in-flight queries keep executing against the
/// epoch they started on while the publish swaps the pointer. Updates are
/// serialized among themselves (one CubeUpdater rebuild at a time), which is
/// what makes the epoch sequence a linear history.

#ifndef SCDWARF_SERVER_EPOCH_CUBE_H_
#define SCDWARF_SERVER_EPOCH_CUBE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "dwarf/dwarf_cube.h"
#include "dwarf/update.h"

namespace scdwarf::server {

/// \brief Epoch-snapshot store over one DwarfCube.
class EpochCubeStore {
 public:
  /// \p initial_epoch seeds the epoch counter: a replica reloading a
  /// mid-history snapshot file starts where the publisher left off instead
  /// of renumbering from zero.
  explicit EpochCubeStore(dwarf::DwarfCube cube, uint64_t initial_epoch = 0)
      : epoch_(initial_epoch),
        cube_(std::make_shared<const dwarf::DwarfCube>(std::move(cube))) {
    retained_.push_back({epoch_, cube_});
  }

  /// \brief One consistent read view: the epoch and the cube it names.
  struct Snapshot {
    uint64_t epoch = 0;
    std::shared_ptr<const dwarf::DwarfCube> cube;
  };

  /// Current epoch + cube, taken under the shared lock.
  Snapshot snapshot() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return {epoch_, cube_};
  }

  uint64_t epoch() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return epoch_;
  }

  /// \brief The retained snapshot of \p epoch, or NotFound when it was never
  /// published here or has aged out of the retention window. Lets a cursor
  /// session re-open at the exact epoch it was pinned to on another replica
  /// (router failover).
  Result<Snapshot> SnapshotAt(uint64_t epoch) const;

  /// \brief How many epochs stay reachable through SnapshotAt, current one
  /// included (minimum 1). Set before updates start flowing; not
  /// synchronized itself.
  void set_retain_epochs(size_t retain) {
    retain_epochs_ = retain < 1 ? 1 : retain;
  }

  /// \brief Observer invoked right after each publish with the new epoch and
  /// the changed dimension-key prefixes of the batch (the deduped decoded key
  /// paths of the merged tuples, from dwarf::CubeUpdater::ChangedKeyPrefixes).
  /// The server revalidates its result cache here: entries whose query
  /// provably misses every changed path carry over to the new epoch.
  using PublishHook = std::function<void(
      uint64_t epoch, const std::vector<std::vector<std::string>>& changed)>;

  /// \brief Installs the publish observer. Must be set before updates start
  /// flowing; not synchronized itself.
  void set_publish_hook(PublishHook hook) { publish_hook_ = std::move(hook); }

  /// \brief Merges \p tuples into the current cube and publishes the result
  /// under the next epoch. Returns that epoch. Uses the incremental
  /// delta-merge path (dwarf::CubeUpdater::Apply) unless full rebuilds were
  /// forced with set_full_rebuild, or the arena chunk chain has grown past
  /// kCompactionChunkLimit — then one full rebuild compacts it (the logical
  /// result is identical either way). Updates are serialized; readers are
  /// only blocked for the pointer swap. When \p profile is non-null it
  /// receives the update profile (captured through the updater's
  /// post-rebuild hook).
  Result<uint64_t> ApplyUpdate(
      const std::vector<std::pair<std::vector<std::string>, dwarf::Measure>>&
          tuples,
      dwarf::UpdateProfile* profile = nullptr);

  /// \brief Publishes an externally built cube (a loaded snapshot file) under
  /// \p epoch, which must be greater than the current epoch —
  /// FailedPrecondition otherwise, so redelivered or out-of-order
  /// load_snapshot notifications are rejected idempotently. Serialized with
  /// ApplyUpdate; does NOT invoke the publish hook (a snapshot carries no
  /// changed-prefix list, so the caller decides how to invalidate caches).
  /// Returns \p epoch.
  Result<uint64_t> PublishCube(dwarf::DwarfCube cube, uint64_t epoch);

  /// \brief Forces every publish through the full from-scratch rebuild path
  /// (the pre-incremental behavior). Fallback/debug knob; set before updates
  /// start flowing, not synchronized itself.
  void set_full_rebuild(bool full_rebuild) { full_rebuild_ = full_rebuild; }

  /// Incremental publishes append one arena chunk per epoch; past this many
  /// chunks one publish pays for a full rebuild to reset the chain (and drop
  /// dead nodes) before chunk-lookup costs creep into reads.
  static constexpr size_t kCompactionChunkLimit = 64;

 private:
  /// Swaps in \p cube under \p epoch and trims the retention window.
  /// Caller must hold update_mu_.
  void PublishLocked(std::shared_ptr<const dwarf::DwarfCube> cube,
                     uint64_t epoch);

  mutable std::shared_mutex mu_;  ///< guards epoch_, cube_ + retained_
  std::mutex update_mu_;          ///< serializes writers
  uint64_t epoch_ = 0;
  std::shared_ptr<const dwarf::DwarfCube> cube_;
  /// Recent epochs, ascending, current one last; bounded by retain_epochs_.
  std::vector<Snapshot> retained_;
  size_t retain_epochs_ = 4;
  PublishHook publish_hook_;
  bool full_rebuild_ = false;
};

}  // namespace scdwarf::server

#endif  // SCDWARF_SERVER_EPOCH_CUBE_H_
