/// \file epoch_cube.h
/// \brief Versioned holder of the served cube: readers take an epoch-stamped
/// snapshot under a shared lock, writers rebuild off to the side and publish
/// the new cube under the next epoch.
///
/// Readers never block on an update: a snapshot is a shared_ptr to an
/// immutable DwarfCube, so in-flight queries keep executing against the
/// epoch they started on while the publish swaps the pointer. Updates are
/// serialized among themselves (one CubeUpdater rebuild at a time), which is
/// what makes the epoch sequence a linear history.

#ifndef SCDWARF_SERVER_EPOCH_CUBE_H_
#define SCDWARF_SERVER_EPOCH_CUBE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "dwarf/dwarf_cube.h"
#include "dwarf/update.h"

namespace scdwarf::server {

/// \brief Epoch-snapshot store over one DwarfCube.
class EpochCubeStore {
 public:
  explicit EpochCubeStore(dwarf::DwarfCube cube)
      : cube_(std::make_shared<const dwarf::DwarfCube>(std::move(cube))) {}

  /// \brief One consistent read view: the epoch and the cube it names.
  struct Snapshot {
    uint64_t epoch = 0;
    std::shared_ptr<const dwarf::DwarfCube> cube;
  };

  /// Current epoch + cube, taken under the shared lock.
  Snapshot snapshot() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return {epoch_, cube_};
  }

  uint64_t epoch() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return epoch_;
  }

  /// \brief Observer invoked right after each publish with the new epoch and
  /// the changed dimension-key prefixes of the batch (the deduped decoded key
  /// paths of the merged tuples, from dwarf::CubeUpdater::ChangedKeyPrefixes).
  /// The server revalidates its result cache here: entries whose query
  /// provably misses every changed path carry over to the new epoch.
  using PublishHook = std::function<void(
      uint64_t epoch, const std::vector<std::vector<std::string>>& changed)>;

  /// \brief Installs the publish observer. Must be set before updates start
  /// flowing; not synchronized itself.
  void set_publish_hook(PublishHook hook) { publish_hook_ = std::move(hook); }

  /// \brief Merges \p tuples into the current cube and publishes the result
  /// under the next epoch. Returns that epoch. Uses the incremental
  /// delta-merge path (dwarf::CubeUpdater::Apply) unless full rebuilds were
  /// forced with set_full_rebuild, or the arena chunk chain has grown past
  /// kCompactionChunkLimit — then one full rebuild compacts it (the logical
  /// result is identical either way). Updates are serialized; readers are
  /// only blocked for the pointer swap. When \p profile is non-null it
  /// receives the update profile (captured through the updater's
  /// post-rebuild hook).
  Result<uint64_t> ApplyUpdate(
      const std::vector<std::pair<std::vector<std::string>, dwarf::Measure>>&
          tuples,
      dwarf::UpdateProfile* profile = nullptr);

  /// \brief Forces every publish through the full from-scratch rebuild path
  /// (the pre-incremental behavior). Fallback/debug knob; set before updates
  /// start flowing, not synchronized itself.
  void set_full_rebuild(bool full_rebuild) { full_rebuild_ = full_rebuild; }

  /// Incremental publishes append one arena chunk per epoch; past this many
  /// chunks one publish pays for a full rebuild to reset the chain (and drop
  /// dead nodes) before chunk-lookup costs creep into reads.
  static constexpr size_t kCompactionChunkLimit = 64;

 private:
  mutable std::shared_mutex mu_;  ///< guards epoch_ + cube_
  std::mutex update_mu_;          ///< serializes writers
  uint64_t epoch_ = 0;
  std::shared_ptr<const dwarf::DwarfCube> cube_;
  PublishHook publish_hook_;
  bool full_rebuild_ = false;
};

}  // namespace scdwarf::server

#endif  // SCDWARF_SERVER_EPOCH_CUBE_H_
