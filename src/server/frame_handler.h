/// \file frame_handler.h
/// \brief The transport-facing request interface: anything that can turn one
/// request frame payload into one response frame payload. QueryServer (direct
/// serving) and replica::Router (fan-out over replicas) both implement it, so
/// TcpServer can front either without knowing which.

#ifndef SCDWARF_SERVER_FRAME_HANDLER_H_
#define SCDWARF_SERVER_FRAME_HANDLER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace scdwarf::server {

/// \brief Per-connection state: the cursor ids opened over one connection,
/// so the transport can reclaim them on disconnect. Owned by a single
/// connection thread — not thread-safe on its own.
struct ClientContext {
  std::vector<uint64_t> cursors;
};

/// \brief Serves one request frame at a time. Implementations must be
/// thread-safe: the TCP front-end calls HandleFrame concurrently from every
/// connection thread.
class FrameHandler {
 public:
  virtual ~FrameHandler() = default;

  /// \brief Serves one request frame payload and returns the response frame
  /// payload (never throws; protocol errors become error payloads).
  /// \p client, when given, records cursor sessions opened by this caller so
  /// CloseClientSessions can reclaim them on disconnect.
  virtual std::string HandleFrame(std::string_view request_json,
                                  ClientContext* client = nullptr) = 0;

  /// \brief Closes every cursor session recorded in \p client (idempotent;
  /// already-expired cursors are skipped silently).
  virtual void CloseClientSessions(ClientContext& client) = 0;
};

}  // namespace scdwarf::server

#endif  // SCDWARF_SERVER_FRAME_HANDLER_H_
