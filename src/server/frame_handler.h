/// \file frame_handler.h
/// \brief The transport-facing request interface: anything that can turn one
/// request frame payload into one response frame payload. QueryServer (direct
/// serving) and replica::Router (fan-out over replicas) both implement it, so
/// TcpServer can front either without knowing which.

#ifndef SCDWARF_SERVER_FRAME_HANDLER_H_
#define SCDWARF_SERVER_FRAME_HANDLER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace scdwarf::server {

/// \brief Per-connection state: the cursor ids opened over one connection,
/// so the transport can reclaim them on disconnect. Owned by a single
/// connection thread — not thread-safe on its own.
struct ClientContext {
  std::vector<uint64_t> cursors;
  /// Set when this connection negotiated the "bin1" wire format (a "hello"
  /// frame offering it); the transport then routes every later frame
  /// through HandleBinaryFrame.
  bool binary = false;
};

/// \brief Serves one request frame at a time. Implementations must be
/// thread-safe: the TCP front-end calls HandleFrame concurrently from every
/// connection thread.
class FrameHandler {
 public:
  virtual ~FrameHandler() = default;

  /// \brief Serves one request frame payload and returns the response frame
  /// payload (never throws; protocol errors become error payloads).
  /// \p client, when given, records cursor sessions opened by this caller so
  /// CloseClientSessions can reclaim them on disconnect.
  virtual std::string HandleFrame(std::string_view request_json,
                                  ClientContext* client = nullptr) = 0;

  /// \brief Serves one frame on a connection that negotiated the "bin1"
  /// format. \p request_payload may be a binary request (magic 0xB1) or a
  /// JSON request — the format is detected per frame by the first byte, and
  /// the response mirrors the request's format. The default implementation
  /// decodes the binary request, spells it canonically in JSON, routes it
  /// through HandleFrame, and wraps the JSON response as a binary
  /// passthrough — so every FrameHandler supports binary clients;
  /// implementations override to add zero-copy response paths.
  virtual std::string HandleBinaryFrame(std::string_view request_payload,
                                        ClientContext* client = nullptr);

  /// \brief Closes every cursor session recorded in \p client (idempotent;
  /// already-expired cursors are skipped silently).
  virtual void CloseClientSessions(ClientContext& client) = 0;
};

}  // namespace scdwarf::server

#endif  // SCDWARF_SERVER_FRAME_HANDLER_H_
