/// \file binwire.h
/// \brief The "bin1" binary wire encoding: a compact, length-delimited
/// rendering of the same requests and responses wire.h spells in JSON.
///
/// Framing is unchanged — every payload still travels inside the 4-byte
/// big-endian length frame of wire.h — only the payload bytes differ. A
/// binary payload always starts with the magic byte 0xB1, which no JSON
/// payload can start with (requests and responses are JSON objects, so their
/// first byte is '{'), letting a negotiated connection tell the two apart
/// per frame. The byte-level layout of every message is specified in
/// docs/WIRE_PROTOCOL.md; this header is the single implementation of it.
///
/// Integers are little-endian fixed width; strings are u32 length-prefixed
/// UTF-8 with no terminator. Decoding is strictly bounds-checked: truncated
/// or corrupt payloads produce InvalidArgument, never a crash or overread —
/// the server fuzzer leans on this.
///
/// Responses come in two kinds:
///  - kind 0 ("JSON passthrough"): the complete JSON response string,
///    embedded verbatim. Every op can be answered this way, so a generic
///    FrameHandler supports binary clients without op-specific code.
///  - kind 3 ("cursor page"): a query_next page encoded natively — epoch,
///    cursor id, done flag and the rows as raw length-prefixed keys plus an
///    i64 measure. DecodeResponse reconstructs the canonical JSON response
///    byte-identically (it routes through MakeCursorPagePayload /
///    MakeResponse), so callers above the client see one format regardless
///    of what the connection negotiated.

#ifndef SCDWARF_SERVER_BINWIRE_H_
#define SCDWARF_SERVER_BINWIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "dwarf/cursor.h"
#include "server/wire.h"

namespace scdwarf::server::binwire {

/// First payload byte of every binary message. JSON payloads start with '{'.
constexpr unsigned char kMagic = 0xB1;

/// Encoding version carried in every binary request (second byte).
constexpr uint8_t kVersion = 1;

/// Response kinds (second byte of a binary response).
constexpr uint8_t kKindJsonPassthrough = 0;
constexpr uint8_t kKindCursorPage = 3;

/// True when \p payload starts with the binary magic byte.
inline bool IsBinaryPayload(std::string_view payload) {
  return !payload.empty() &&
         static_cast<unsigned char>(payload[0]) == kMagic;
}

/// \brief Encodes \p request as a bin1 request payload. InvalidArgument for
/// ops that never travel in binary (hello is the JSON-only negotiation op).
Result<std::string> EncodeRequest(const QueryRequest& request);

/// \brief Decodes a bin1 request payload. InvalidArgument on bad magic,
/// unsupported version, unknown op, or truncated/corrupt bytes.
Result<QueryRequest> DecodeRequest(std::string_view payload);

/// \brief Wraps a complete JSON response string as a kind-0 binary response.
std::string EncodeJsonPassthrough(std::string_view response_json);

/// \brief Encodes one query_next page as a kind-3 binary response. The
/// server's zero-copy path: rows go straight from the cursor to the wire
/// with no JSON materialization.
std::string EncodeCursorPage(uint64_t epoch, uint64_t cursor_id,
                             const std::vector<dwarf::SliceRow>& rows,
                             bool done);

/// \brief Decodes a binary response back to the canonical JSON response
/// string — byte-identical to what the JSON wire path would have produced
/// for the same answer. InvalidArgument on corrupt bytes.
Result<std::string> DecodeResponse(std::string_view payload);

/// \brief Kind-3 header fields, readable without materializing the rows.
struct CursorPageHeader {
  uint64_t epoch = 0;
  uint64_t cursor_id = 0;
  bool done = false;
  uint32_t num_rows = 0;
};

/// \brief Reads the header of a kind-3 cursor page (cheap: no row decode).
/// InvalidArgument when \p payload is not a kind-3 binary response — callers
/// draining cursors use this to steer without paying for reconstruction.
Result<CursorPageHeader> PeekCursorPage(std::string_view payload);

}  // namespace scdwarf::server::binwire

#endif  // SCDWARF_SERVER_BINWIRE_H_
