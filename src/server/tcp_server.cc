#include "server/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "server/wire.h"

namespace scdwarf::server {

Status TcpServer::Start(uint16_t port, const std::string& bind_address) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("server already started");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        "invalid bind address \"" + bind_address +
        "\" (expected an IPv4 literal such as 127.0.0.1 or 0.0.0.0)");
  }
  addr.sin_port = htons(port);
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status =
        Status::IoError("bind: " + std::string(std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    Status status =
        Status::IoError("listen: " + std::string(std::strerror(errno)));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    Status status =
        Status::IoError("getsockname: " + std::string(std::strerror(errno)));
    ::close(fd);
    return status;
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  bind_address_ = bind_address;
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or unrecoverable error): stop accepting
    }
    // Reap before registering so the connection table never grows past
    // live connections + the ones that finished since the last accept.
    ReapFinishedConnections();
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    uint64_t id = next_connection_id_++;
    Connection& conn = connections_[id];
    conn.fd = fd;
    conn.thread = std::thread([this, id, fd] { ServeConnection(id, fd); });
  }
}

void TcpServer::ServeConnection(uint64_t id, int fd) {
  ClientContext client;
  while (!stopping_.load(std::memory_order_acquire)) {
    Result<std::string> frame = ReadFrame(fd, max_frame_bytes_);
    if (!frame.ok()) break;  // clean EOF, oversized frame, or read error
    // A "hello" frame negotiating bin1 flips client.binary for the rest of
    // the connection; its own response is still JSON.
    std::string response = client.binary
                               ? server_->HandleBinaryFrame(*frame, &client)
                               : server_->HandleFrame(*frame, &client);
    if (!WriteFrame(fd, response).ok()) break;
  }
  // A dropped connection must not leak its cursor sessions until the TTL.
  server_->CloseClientSessions(client);
  ::shutdown(fd, SHUT_RDWR);
  // Self-register as finished; the next reap joins this thread and closes
  // the socket (the fd stays open until then — no reuse race).
  std::lock_guard<std::mutex> lock(mu_);
  finished_.push_back(id);
}

size_t TcpServer::ReapFinishedConnections() {
  std::vector<std::thread> done_threads;
  std::vector<int> done_fds;
  size_t live = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t id : finished_) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;  // already taken by Stop()
      done_threads.push_back(std::move(it->second.thread));
      done_fds.push_back(it->second.fd);
      connections_.erase(it);
    }
    finished_.clear();
    live = connections_.size();
  }
  for (std::thread& thread : done_threads) {
    if (thread.joinable()) thread.join();
  }
  for (int fd : done_fds) ::close(fd);
  return live;
}

void TcpServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::map<uint64_t, Connection> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connections_);
    finished_.clear();
  }
  for (auto& [id, conn] : connections) {
    ::shutdown(conn.fd, SHUT_RDWR);  // unblocks pending reads
  }
  for (auto& [id, conn] : connections) {
    if (conn.thread.joinable()) conn.thread.join();
  }
  for (auto& [id, conn] : connections) ::close(conn.fd);
}

}  // namespace scdwarf::server
