/// \file result_cache.h
/// \brief Sharded LRU cache of serialized query results, keyed by
/// (normalized request, epoch).
///
/// The epoch is part of the lookup key, so results from superseded epochs
/// can never be served. On an epoch publish the cache is *revalidated*, not
/// wholesale invalidated: Revalidate() re-tags every previous-epoch entry
/// whose query a caller-supplied predicate proves unaffected by the publish
/// (counted as `revalidated`), and drops the rest (counted as
/// `invalidations`). A later Get at the new epoch then hits the carried-over
/// entry without recomputing anything. Sharding is by the *normalized
/// request* alone — all epochs of one query live in one shard — which keeps
/// re-tagging a per-shard operation and the lock a short critical section on
/// the query hot path.

#ifndef SCDWARF_SERVER_RESULT_CACHE_H_
#define SCDWARF_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"

namespace scdwarf::server {

/// \brief One cached execution result (see wire.h ExecResult).
struct CachedResult {
  bool ok = false;
  std::string payload_json;
};

/// \brief Monotonic cache counters (read from the registry's counter series;
/// totals are exact, the entries count is a point-in-time sum over shards).
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;      ///< capacity evictions, not invalidations
  uint64_t invalidations = 0;  ///< entries dropped by Revalidate/InvalidateAll
  uint64_t revalidated = 0;    ///< entries re-tagged to a new epoch
  uint64_t entries = 0;
};

/// \brief Thread-safe sharded LRU. A capacity of 0 disables caching (every
/// Get misses, Put is a no-op).
class ResultCache {
 public:
  /// \p registry receives the cache's counter series (server_cache_*_total).
  /// When null the cache owns a private registry — the counters still work,
  /// they just aren't exported anywhere.
  explicit ResultCache(size_t capacity, size_t num_shards,
                       metrics::MetricRegistry* registry = nullptr);

  /// Returns the cached result for (key, epoch), refreshing its LRU
  /// position, or nullopt (counted as a miss) when absent.
  std::optional<CachedResult> Get(const std::string& key, uint64_t epoch);

  /// Inserts or refreshes (key, epoch) -> result, evicting the shard's
  /// least-recently-used entry when over capacity.
  void Put(const std::string& key, uint64_t epoch, CachedResult result);

  /// \brief Epoch-publish sweep. Entries tagged \p new_epoch - 1 whose
  /// normalized key satisfies \p unaffected are re-tagged to \p new_epoch
  /// (their results provably carry over); every other stale entry is
  /// dropped. Returns the number of entries re-tagged. \p unaffected runs
  /// under the shard lock — keep it cheap relative to a query execution.
  size_t Revalidate(uint64_t new_epoch,
                    const std::function<bool(const std::string& key)>& unaffected);

  /// Drops every entry unconditionally (a Revalidate that keeps nothing).
  void InvalidateAll();

  ResultCacheStats stats() const;

  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string key;  ///< normalized request, without the epoch
    uint64_t epoch = 0;
    CachedResult result;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    /// Composed "epoch|key" -> LRU position.
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  Shard& ShardFor(const std::string& key);
  static std::string ComposeKey(const std::string& key, uint64_t epoch);

  size_t capacity_ = 0;        ///< total across shards
  size_t shard_capacity_ = 0;  ///< per shard
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Fallback registry when the caller injected none; the counter pointers
  /// below stay valid for the cache's lifetime either way.
  std::unique_ptr<metrics::MetricRegistry> owned_registry_;
  metrics::Counter* hits_ = nullptr;
  metrics::Counter* misses_ = nullptr;
  metrics::Counter* evictions_ = nullptr;
  metrics::Counter* invalidations_ = nullptr;
  metrics::Counter* revalidated_ = nullptr;
};

}  // namespace scdwarf::server

#endif  // SCDWARF_SERVER_RESULT_CACHE_H_
