/// \file tcp_server.h
/// \brief TCP front-end of the query service: a thread-per-connection accept
/// loop speaking the length-prefixed JSON wire format of wire.h. Each
/// connection thread reads one frame at a time and blocks in
/// FrameHandler::HandleFrame, so all execution, admission control and caching
/// happen in the shared handler (a QueryServer serving directly, or a
/// replica::Router fanning out), identically to in-process callers.

#ifndef SCDWARF_SERVER_TCP_SERVER_H_
#define SCDWARF_SERVER_TCP_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "server/frame_handler.h"

namespace scdwarf::server {

/// \brief TCP listener serving one FrameHandler. Binds loopback by default;
/// pass a bind address to Start() to serve a whole machine or rack
/// ("0.0.0.0" for every interface — the fleet binaries expose it as --bind).
class TcpServer {
 public:
  /// \p server must outlive this object. Frames beyond \p max_frame_bytes
  /// close the offending connection.
  explicit TcpServer(FrameHandler* server, size_t max_frame_bytes = 1 << 20)
      : server_(server), max_frame_bytes_(max_frame_bytes) {}
  ~TcpServer() { Stop(); }

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds \p bind_address:\p port (port 0 = kernel-assigned, see port())
  /// and starts the accept thread. \p bind_address must be an IPv4 literal
  /// ("127.0.0.1", "0.0.0.0", a specific interface address); anything else
  /// is an InvalidArgument before any socket is opened.
  Status Start(uint16_t port = 0, const std::string& bind_address = kLoopback);

  /// The default bind address: loopback only.
  static constexpr const char* kLoopback = "127.0.0.1";

  /// The bound port; valid after a successful Start().
  int port() const { return port_; }

  /// The address Start() bound; valid after a successful Start().
  const std::string& bind_address() const { return bind_address_; }

  /// Shuts the listener and every live connection down and joins all
  /// threads. Idempotent; also run by the destructor.
  void Stop();

  /// Joins and forgets threads of connections that already closed. Each
  /// connection thread registers itself as finished on exit and the accept
  /// loop reaps before registering every new connection, so a long-lived
  /// server with many short connections holds O(live) thread handles, not
  /// O(ever accepted). Exposed so idle callers (and tests) can trigger a
  /// sweep directly; returns the number of connections still being served.
  size_t ReapFinishedConnections();

 private:
  /// One accepted connection: its socket and its serving thread.
  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  void AcceptLoop();
  void ServeConnection(uint64_t id, int fd);

  FrameHandler* server_;
  size_t max_frame_bytes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::string bind_address_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex mu_;  ///< guards connections_, finished_, next_connection_id_
  uint64_t next_connection_id_ = 0;
  std::map<uint64_t, Connection> connections_;
  std::vector<uint64_t> finished_;  ///< ids whose serving thread has exited
};

}  // namespace scdwarf::server

#endif  // SCDWARF_SERVER_TCP_SERVER_H_
