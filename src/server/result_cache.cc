#include "server/result_cache.h"

#include <algorithm>

#include "common/hash.h"

namespace scdwarf::server {

ResultCache::ResultCache(size_t capacity, size_t num_shards,
                         metrics::MetricRegistry* registry)
    : capacity_(capacity) {
  num_shards = std::max<size_t>(1, std::min(num_shards, std::max<size_t>(1, capacity)));
  shard_capacity_ = capacity == 0 ? 0 : std::max<size_t>(1, capacity / num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<metrics::MetricRegistry>();
    registry = owned_registry_.get();
  }
  hits_ = registry->GetCounter("server_cache_hits_total", {},
                               "result-cache lookups answered from cache");
  misses_ = registry->GetCounter("server_cache_misses_total", {},
                                 "result-cache lookups that executed a query");
  evictions_ = registry->GetCounter("server_cache_evictions_total", {},
                                    "entries evicted by LRU capacity pressure");
  invalidations_ =
      registry->GetCounter("server_cache_invalidations_total", {},
                           "entries dropped by epoch publishes/InvalidateAll");
  revalidated_ =
      registry->GetCounter("server_cache_revalidated_total", {},
                           "entries carried over to a new epoch unexecuted");
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  // Sharded by the epoch-less key: every epoch of one query shares a shard,
  // so Revalidate can re-tag an entry without migrating it.
  return *shards_[HashString(key) % shards_.size()];
}

std::string ResultCache::ComposeKey(const std::string& key, uint64_t epoch) {
  return std::to_string(epoch) + "|" + key;
}

std::optional<CachedResult> ResultCache::Get(const std::string& key,
                                             uint64_t epoch) {
  if (capacity_ == 0) {
    misses_->Increment();
    return std::nullopt;
  }
  Shard& shard = ShardFor(key);
  std::string composed = ComposeKey(key, epoch);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(composed);
  if (it == shard.index.end()) {
    misses_->Increment();
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_->Increment();
  return it->second->result;
}

void ResultCache::Put(const std::string& key, uint64_t epoch,
                      CachedResult result) {
  if (capacity_ == 0) return;
  Shard& shard = ShardFor(key);
  std::string composed = ComposeKey(key, epoch);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(composed);
  if (it != shard.index.end()) {
    it->second->result = std::move(result);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, epoch, std::move(result)});
  shard.index.emplace(std::move(composed), shard.lru.begin());
  while (shard.lru.size() > shard_capacity_) {
    const Entry& victim = shard.lru.back();
    shard.index.erase(ComposeKey(victim.key, victim.epoch));
    shard.lru.pop_back();
    evictions_->Increment();
  }
}

size_t ResultCache::Revalidate(
    uint64_t new_epoch,
    const std::function<bool(const std::string& key)>& unaffected) {
  size_t kept = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->epoch == new_epoch) {
        ++it;  // already current (shouldn't happen under serialized publishes)
        continue;
      }
      // Only the immediately-previous epoch is a carry-over candidate: an
      // older entry missed at least one intervening publish, so nothing
      // proves its result still holds.
      if (it->epoch + 1 == new_epoch && unaffected && unaffected(it->key)) {
        shard->index.erase(ComposeKey(it->key, it->epoch));
        it->epoch = new_epoch;
        shard->index.emplace(ComposeKey(it->key, it->epoch), it);
        revalidated_->Increment();
        ++kept;
        ++it;
        continue;
      }
      shard->index.erase(ComposeKey(it->key, it->epoch));
      it = shard->lru.erase(it);
      invalidations_->Increment();
    }
  }
  return kept;
}

void ResultCache::InvalidateAll() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    invalidations_->Increment(shard->lru.size());
    shard->lru.clear();
    shard->index.clear();
  }
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats stats;
  stats.hits = hits_->value();
  stats.misses = misses_->value();
  stats.evictions = evictions_->value();
  stats.invalidations = invalidations_->value();
  stats.revalidated = revalidated_->value();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace scdwarf::server
