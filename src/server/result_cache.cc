#include "server/result_cache.h"

#include <algorithm>

#include "common/hash.h"

namespace scdwarf::server {

ResultCache::ResultCache(size_t capacity, size_t num_shards)
    : capacity_(capacity) {
  num_shards = std::max<size_t>(1, std::min(num_shards, std::max<size_t>(1, capacity)));
  shard_capacity_ = capacity == 0 ? 0 : std::max<size_t>(1, capacity / num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return *shards_[HashString(key) % shards_.size()];
}

std::string ResultCache::ComposeKey(const std::string& key, uint64_t epoch) {
  return std::to_string(epoch) + "|" + key;
}

std::optional<CachedResult> ResultCache::Get(const std::string& key,
                                             uint64_t epoch) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::string composed = ComposeKey(key, epoch);
  Shard& shard = ShardFor(composed);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(composed);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->result;
}

void ResultCache::Put(const std::string& key, uint64_t epoch,
                      CachedResult result) {
  if (capacity_ == 0) return;
  std::string composed = ComposeKey(key, epoch);
  Shard& shard = ShardFor(composed);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(composed);
  if (it != shard.index.end()) {
    it->second->result = std::move(result);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{composed, epoch, std::move(result)});
  shard.index.emplace(composed, shard.lru.begin());
  while (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ResultCache::InvalidateAll() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    invalidations_.fetch_add(shard->lru.size(), std::memory_order_relaxed);
    shard->lru.clear();
    shard->index.clear();
  }
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace scdwarf::server
