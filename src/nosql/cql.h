/// \file cql.h
/// \brief A CQL subset: the statements the DWARF-to-NoSQL mapper emits (§4,
/// Fig. 3) plus what the examples need for interactive querying.
///
/// Supported grammar (case-insensitive keywords):
///   CREATE KEYSPACE <name>
///   CREATE TABLE <ks>.<name> ( <col> <type> [, ...] , PRIMARY KEY ( <col> ) )
///   CREATE INDEX ON <ks>.<name> ( <col> )
///   DROP TABLE <ks>.<name>
///   INSERT INTO <ks>.<name> ( <cols> ) VALUES ( <literals> )
///   DELETE FROM <ks>.<name> WHERE <pk-col> = <literal>
///   SELECT <*|cols> FROM <ks>.<name> [WHERE <col> = <literal>
///       [AND <col> = <literal>]...] [ALLOW FILTERING]
///   BEGIN BATCH <insert>; [<insert>;]... APPLY BATCH
///
/// Literals: integers, 'text' (doubled '' escapes), true/false, null and
/// integer sets {1,2,3}.

#ifndef SCDWARF_NOSQL_CQL_H_
#define SCDWARF_NOSQL_CQL_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "nosql/database.h"

namespace scdwarf::nosql {

/// \brief Parsed statement forms.
struct CreateKeyspaceStmt {
  std::string keyspace;
};

struct CreateTableStmt {
  TableSchema schema;
};

struct CreateIndexStmt {
  std::string keyspace;
  std::string table;
  std::string column;
};

struct DropTableStmt {
  std::string keyspace;
  std::string table;
};

struct InsertStmt {
  std::string keyspace;
  std::string table;
  std::vector<std::string> columns;
  std::vector<Value> values;
};

struct SelectStmt {
  std::string keyspace;
  std::string table;
  std::vector<std::string> columns;  // empty => *
  std::vector<std::pair<std::string, Value>> where;  // conjunctive equality
  bool allow_filtering = false;
};

struct BatchStmt {
  std::vector<InsertStmt> inserts;
};

struct DeleteStmt {
  std::string keyspace;
  std::string table;
  std::string column;  // must be the primary key
  Value key;
};

using Statement =
    std::variant<CreateKeyspaceStmt, CreateTableStmt, CreateIndexStmt,
                 DropTableStmt, InsertStmt, SelectStmt, BatchStmt, DeleteStmt>;

/// \brief Parses one CQL statement (trailing ';' optional).
Result<Statement> ParseCql(std::string_view input);

/// \brief Result set of an executed statement. DDL/DML return empty results.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  /// Renders an ASCII table (for examples and debugging).
  std::string ToString() const;
};

/// \brief Parses and executes \p input against \p db.
Result<QueryResult> ExecuteCql(Database* db, std::string_view input);

/// \brief Executes an already-parsed statement.
Result<QueryResult> ExecuteStatement(Database* db, const Statement& statement);

}  // namespace scdwarf::nosql

#endif  // SCDWARF_NOSQL_CQL_H_
