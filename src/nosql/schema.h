/// \file schema.h
/// \brief Column-family schemas for the NoSQL store: column definitions, one
/// partition (primary) key, and optional secondary indexes. Keyspaces group
/// column families exactly as §3 of the paper describes.

#ifndef SCDWARF_NOSQL_SCHEMA_H_
#define SCDWARF_NOSQL_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace scdwarf::nosql {

/// \brief One column: name + type.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt;

  ColumnDef() = default;
  ColumnDef(std::string name_in, DataType type_in)
      : name(std::move(name_in)), type(type_in) {}

  bool operator==(const ColumnDef& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief Schema of one column family. The primary key is a single column
/// (all of the paper's column families key on an int id). Secondary indexes
/// are maintained as hidden ordered index structures, mirroring Cassandra's
/// hidden index tables — each one adds write amplification on insert and
/// extra bytes on disk, which is precisely the effect Table 5 attributes the
/// NoSQL-Min slowdown to.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string keyspace, std::string name,
              std::vector<ColumnDef> columns, std::string primary_key)
      : keyspace_(std::move(keyspace)),
        name_(std::move(name)),
        columns_(std::move(columns)),
        primary_key_(std::move(primary_key)) {}

  Status Validate() const;

  const std::string& keyspace() const { return keyspace_; }
  const std::string& name() const { return name_; }
  /// "keyspace.table" as written in CQL statements.
  std::string QualifiedName() const { return keyspace_ + "." + name_; }

  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const std::string& primary_key() const { return primary_key_; }

  Result<size_t> ColumnIndex(std::string_view column) const;
  /// Index of the primary key column; schema must be valid.
  size_t PrimaryKeyIndex() const;

  /// Columns carrying a secondary index (by column index, sorted).
  const std::vector<size_t>& secondary_indexes() const {
    return secondary_indexes_;
  }
  /// Registers a secondary index on \p column; AlreadyExists if present,
  /// InvalidArgument for the primary key or unknown columns.
  Status AddSecondaryIndex(std::string_view column);

  bool operator==(const TableSchema& other) const {
    return keyspace_ == other.keyspace_ && name_ == other.name_ &&
           columns_ == other.columns_ && primary_key_ == other.primary_key_ &&
           secondary_indexes_ == other.secondary_indexes_;
  }

  /// Renders the CREATE TABLE statement for this column family (parsable by
  /// the CQL subset); secondary indexes render as separate CREATE INDEX
  /// statements via ToCreateIndexDdl.
  std::string ToCqlDdl() const;

  /// CREATE INDEX statements for the registered secondary indexes.
  std::vector<std::string> ToCreateIndexDdl() const;

  /// Binary round-trip for segment file headers.
  void EncodeTo(ByteWriter* writer) const;
  static Result<TableSchema> DecodeFrom(ByteReader* reader);

 private:
  std::string keyspace_;
  std::string name_;
  std::vector<ColumnDef> columns_;
  std::string primary_key_;
  std::vector<size_t> secondary_indexes_;
};

/// \brief A row is one value per schema column, in schema order.
using Row = std::vector<Value>;

}  // namespace scdwarf::nosql

#endif  // SCDWARF_NOSQL_SCHEMA_H_
