#include "nosql/table.h"

#include "common/logging.h"

namespace scdwarf::nosql {

namespace {
constexpr uint32_t kSegmentMagic = 0x43465345;  // "ESFC"
constexpr uint8_t kSegmentVersion = 1;
}  // namespace

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  SCD_CHECK(schema_.Validate().ok()) << "invalid schema passed to Table";
  pk_index_ = schema_.PrimaryKeyIndex();
  for (size_t index : schema_.secondary_indexes()) {
    secondary_.emplace(index, std::multimap<Value, Row>{});
  }
}

Status Table::ValidateRow(const Row& row) const {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, " +
        schema_.QualifiedName() + " has " +
        std::to_string(schema_.num_columns()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].MatchesType(schema_.columns()[i].type)) {
      return Status::InvalidArgument(
          "value " + row[i].ToCqlLiteral() + " does not match type " +
          DataTypeName(schema_.columns()[i].type) + " of column '" +
          schema_.columns()[i].name + "'");
    }
  }
  if (row[pk_index_].is_null()) {
    return Status::InvalidArgument("primary key must not be null");
  }
  return Status::OK();
}

void Table::WriteIndexEntry(std::multimap<Value, Row>* index,
                            const Value& value, const Value& pk) {
  // Materialize the index row (value, pk) — the hidden column family's
  // mutation payload.
  Row entry;
  entry.reserve(2);
  entry.push_back(value);
  entry.push_back(pk);
  // Read-before-write merge within the index partition.
  auto [begin, end] = index->equal_range(value);
  for (auto it = begin; it != end; ++it) {
    if (it->second[1] == pk) {
      it->second = std::move(entry);
      return;
    }
  }
  index->emplace(value, std::move(entry));
}

void Table::IndexRow(size_t row_index) {
  const Value& pk = rows_[row_index][pk_index_];
  for (auto& [column, index] : secondary_) {
    // Cassandra does not index null values.
    if (rows_[row_index][column].is_null()) continue;
    WriteIndexEntry(&index, rows_[row_index][column], pk);
  }
}

void Table::UnindexRow(size_t row_index) {
  const Value& pk = rows_[row_index][pk_index_];
  for (auto& [column, index] : secondary_) {
    if (rows_[row_index][column].is_null()) continue;
    auto [begin, end] = index.equal_range(rows_[row_index][column]);
    for (auto it = begin; it != end; ++it) {
      if (it->second[1] == pk) {
        index.erase(it);
        break;
      }
    }
  }
}

Status Table::Insert(Row row) {
  SCD_RETURN_IF_ERROR(ValidateRow(row));
  // Single hash probe: try_emplace inserts a placeholder slot, the upsert
  // branch reuses the existing one.
  auto [it, inserted] = primary_.try_emplace(row[pk_index_], rows_.size());
  if (!inserted) {
    // Upsert: replace in place, fixing secondary index entries.
    size_t slot = it->second;
    UnindexRow(slot);
    rows_[slot] = std::move(row);
    IndexRow(slot);
    BumpVersion();
    return Status::OK();
  }
  size_t slot = rows_.size();
  rows_.push_back(std::move(row));
  live_.push_back(true);
  ++live_count_;
  IndexRow(slot);
  BumpVersion();
  return Status::OK();
}

Status Table::CreateIndex(std::string_view column) {
  SCD_RETURN_IF_ERROR(schema_.AddSecondaryIndex(column));
  size_t index = schema_.ColumnIndex(column).ValueOrDie();
  auto& entries = secondary_[index];
  for (size_t slot = 0; slot < rows_.size(); ++slot) {
    if (live_[slot] && !rows_[slot][index].is_null()) {
      WriteIndexEntry(&entries, rows_[slot][index], rows_[slot][pk_index_]);
    }
  }
  BumpVersion();
  return Status::OK();
}

Status Table::DeleteByPk(const Value& key) {
  auto it = primary_.find(key);
  if (it == primary_.end()) {
    return Status::NotFound("no row with primary key " + key.ToCqlLiteral() +
                            " in " + schema_.QualifiedName());
  }
  size_t slot = it->second;
  UnindexRow(slot);
  primary_.erase(it);
  live_[slot] = false;
  rows_[slot].clear();
  rows_[slot].shrink_to_fit();
  --live_count_;
  BumpVersion();
  return Status::OK();
}

Result<const Row*> Table::GetByPk(const Value& key) const {
  auto it = primary_.find(key);
  if (it == primary_.end()) {
    return Status::NotFound("no row with primary key " + key.ToCqlLiteral() +
                            " in " + schema_.QualifiedName());
  }
  return &rows_[it->second];
}

Result<std::vector<const Row*>> Table::SelectEq(std::string_view column,
                                                const Value& value,
                                                bool allow_filtering) const {
  SCD_ASSIGN_OR_RETURN(size_t index, schema_.ColumnIndex(column));
  std::vector<const Row*> result;
  if (index == pk_index_) {
    auto row = GetByPk(value);
    if (row.ok()) result.push_back(*row);
    return result;
  }
  auto secondary_it = secondary_.find(index);
  if (secondary_it != secondary_.end()) {
    auto [begin, end] = secondary_it->second.equal_range(value);
    for (auto it = begin; it != end; ++it) {
      // Resolve the index entry through the base table (Cassandra's 2i read
      // path: index hit, then base-row fetch by primary key).
      auto base = primary_.find(it->second[1]);
      if (base != primary_.end()) result.push_back(&rows_[base->second]);
    }
    return result;
  }
  if (!allow_filtering) {
    return Status::FailedPrecondition(
        "column '" + std::string(column) + "' of " + schema_.QualifiedName() +
        " has no index; use ALLOW FILTERING to scan");
  }
  for (size_t slot = 0; slot < rows_.size(); ++slot) {
    if (live_[slot] && rows_[slot][index] == value) {
      result.push_back(&rows_[slot]);
    }
  }
  return result;
}

std::vector<const Row*> Table::ScanAll() const {
  std::vector<const Row*> result;
  result.reserve(live_count_);
  for (size_t slot = 0; slot < rows_.size(); ++slot) {
    if (live_[slot]) result.push_back(&rows_[slot]);
  }
  return result;
}

void Table::SerializeTo(ByteWriter* writer) const {
  writer->PutU32(kSegmentMagic);
  writer->PutU8(kSegmentVersion);
  schema_.EncodeTo(writer);
  writer->PutVarint(live_count_);
  for (size_t slot = 0; slot < rows_.size(); ++slot) {
    if (!live_[slot]) continue;
    for (const Value& value : rows_[slot]) value.EncodeTo(writer);
  }
  // Secondary index blocks: each index persists its ordered (value ->
  // primary key) entries, the on-disk footprint Cassandra's hidden index
  // tables pay. Keys reference primary keys (stable across reload), not
  // slot numbers.
  writer->PutVarint(secondary_.size());
  for (const auto& [column, entries] : secondary_) {
    writer->PutVarint(column);
    writer->PutVarint(entries.size());
    for (const auto& [value, entry] : entries) {
      value.EncodeTo(writer);
      entry[1].EncodeTo(writer);  // primary key
    }
  }
}

uint64_t Table::EstimateSegmentBytes() const {
  ByteWriter writer;
  SerializeTo(&writer);
  return writer.size();
}

Result<std::unique_ptr<Table>> Table::Deserialize(ByteReader* reader) {
  SCD_ASSIGN_OR_RETURN(uint32_t magic, reader->ReadU32());
  if (magic != kSegmentMagic) {
    return Status::ParseError("bad segment magic");
  }
  SCD_ASSIGN_OR_RETURN(uint8_t version, reader->ReadU8());
  if (version != kSegmentVersion) {
    return Status::ParseError("unsupported segment version " +
                              std::to_string(version));
  }
  SCD_ASSIGN_OR_RETURN(TableSchema schema, TableSchema::DecodeFrom(reader));
  auto table = std::make_unique<Table>(schema);
  SCD_ASSIGN_OR_RETURN(uint64_t num_rows, reader->ReadVarint());
  for (uint64_t r = 0; r < num_rows; ++r) {
    Row row;
    row.reserve(schema.num_columns());
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      SCD_ASSIGN_OR_RETURN(Value value, Value::DecodeFrom(reader));
      row.push_back(std::move(value));
    }
    SCD_RETURN_IF_ERROR(table->Insert(std::move(row)));
  }
  // Index blocks were rebuilt by Insert; skip the persisted copies.
  SCD_ASSIGN_OR_RETURN(uint64_t num_indexes, reader->ReadVarint());
  for (uint64_t i = 0; i < num_indexes; ++i) {
    SCD_ASSIGN_OR_RETURN(uint64_t column, reader->ReadVarint());
    (void)column;
    SCD_ASSIGN_OR_RETURN(uint64_t num_entries, reader->ReadVarint());
    for (uint64_t e = 0; e < num_entries; ++e) {
      SCD_RETURN_IF_ERROR(Value::DecodeFrom(reader).status());
      SCD_RETURN_IF_ERROR(Value::DecodeFrom(reader).status());
    }
  }
  return table;
}

}  // namespace scdwarf::nosql
