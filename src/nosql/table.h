/// \file table.h
/// \brief One column family: an in-memory partition (hash-indexed by primary
/// key, Cassandra-style) plus hidden ordered secondary indexes, with binary
/// segment serialization for on-disk persistence.

#ifndef SCDWARF_NOSQL_TABLE_H_
#define SCDWARF_NOSQL_TABLE_H_

#include <atomic>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "nosql/schema.h"

namespace scdwarf::nosql {

/// \brief A column family with rows, a primary hash index and secondary
/// ordered indexes. Inserts are upserts (Cassandra write semantics).
class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }

  /// Upserts \p row. Validates arity and column types. Secondary indexes are
  /// maintained inline (one hidden ordered-structure write per index — the
  /// cost Table 5 measures for NoSQL-Min).
  Status Insert(Row row);

  /// Pre-sizes the row store and primary index for \p additional rows
  /// (called by the bulk write path before applying a mutation batch).
  void ReserveAdditional(size_t additional) {
    rows_.reserve(rows_.size() + additional);
    live_.reserve(live_.size() + additional);
    primary_.reserve(primary_.size() + additional);
  }

  /// Adds a secondary index on \p column and back-fills it from existing rows.
  Status CreateIndex(std::string_view column);

  /// Deletes the row with primary key \p key (tombstone + index cleanup);
  /// NotFound when absent.
  Status DeleteByPk(const Value& key);

  /// Row lookup by primary key; NotFound when absent.
  Result<const Row*> GetByPk(const Value& key) const;

  /// All rows where \p column equals \p value. Uses the secondary index when
  /// one exists; otherwise requires \p allow_filtering (Cassandra's rule) and
  /// scans. Primary-key equality is always allowed.
  Result<std::vector<const Row*>> SelectEq(std::string_view column,
                                           const Value& value,
                                           bool allow_filtering = false) const;

  /// Every live row (scan order unspecified).
  std::vector<const Row*> ScanAll() const;

  size_t num_rows() const { return live_count_; }

  /// Serialized segment size in bytes (rows + index blocks + header),
  /// without actually writing the file.
  uint64_t EstimateSegmentBytes() const;

  /// Writes the full segment (schema header, row data, secondary index
  /// blocks) — the bytes a Flush() puts on disk.
  void SerializeTo(ByteWriter* writer) const;

  /// Inverse of SerializeTo.
  static Result<std::unique_ptr<Table>> Deserialize(ByteReader* reader);

  /// Monotonic mutation counter, bumped by every successful Insert /
  /// DeleteByPk / CreateIndex. The async flusher compares it against
  /// flushed_version() to skip serializing tables whose last flush already
  /// captured every mutation.
  uint64_t mutation_version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// The mutation version the last completed flush captured (0 = never
  /// flushed; a fresh table therefore starts dirty).
  uint64_t flushed_version() const {
    return flushed_version_.load(std::memory_order_acquire);
  }

  /// Records that a serialization taken at \p version reached disk.
  /// Monotonic: out-of-order completions keep the maximum.
  void MarkFlushed(uint64_t version) {
    uint64_t seen = flushed_version_.load(std::memory_order_relaxed);
    while (seen < version && !flushed_version_.compare_exchange_weak(
                                 seen, version, std::memory_order_acq_rel)) {
    }
  }

 private:
  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }
  Status ValidateRow(const Row& row) const;
  void IndexRow(size_t row_index);
  void UnindexRow(size_t row_index);
  /// Full write path of one hidden index entry: materialize the (value, pk)
  /// index row, then merge it into the index partition (read-before-write:
  /// an existing entry for the same pk is replaced, as Cassandra's index
  /// update does).
  void WriteIndexEntry(std::multimap<Value, Row>* index, const Value& value,
                       const Value& pk);

  TableSchema schema_;
  size_t pk_index_ = 0;
  std::vector<Row> rows_;        // slot array; erased slots are tombstones
  std::vector<bool> live_;
  size_t live_count_ = 0;
  std::unordered_map<Value, size_t, ValueHash> primary_;
  /// Hidden index column families, one per indexed column. Cassandra models
  /// a secondary index as an internal table keyed by the indexed value whose
  /// entries are materialized rows (value, pk); maintaining one costs about
  /// a full extra write per base-table mutation — the effect Table 5
  /// attributes NoSQL-Min's insert times to. Reads resolve entries back
  /// through the primary index, like Cassandra's 2i read path.
  std::map<size_t, std::multimap<Value, Row>> secondary_;
  std::atomic<uint64_t> version_{1};  // starts above flushed_version_: dirty
  std::atomic<uint64_t> flushed_version_{0};
};

}  // namespace scdwarf::nosql

#endif  // SCDWARF_NOSQL_TABLE_H_
