#include "nosql/schema.h"

#include <algorithm>

namespace scdwarf::nosql {

Status TableSchema::Validate() const {
  if (keyspace_.empty()) return Status::InvalidArgument("empty keyspace name");
  if (name_.empty()) return Status::InvalidArgument("empty table name");
  if (columns_.empty()) {
    return Status::InvalidArgument("table " + QualifiedName() +
                                   " has no columns");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name.empty()) {
      return Status::InvalidArgument("column " + std::to_string(i) +
                                     " has an empty name");
    }
    for (size_t j = i + 1; j < columns_.size(); ++j) {
      if (columns_[i].name == columns_[j].name) {
        return Status::InvalidArgument("duplicate column '" + columns_[i].name +
                                       "' in " + QualifiedName());
      }
    }
  }
  if (!ColumnIndex(primary_key_).ok()) {
    return Status::InvalidArgument("primary key '" + primary_key_ +
                                   "' is not a column of " + QualifiedName());
  }
  for (size_t index : secondary_indexes_) {
    if (index >= columns_.size()) {
      return Status::InvalidArgument("secondary index out of range");
    }
  }
  return Status::OK();
}

Result<size_t> TableSchema::ColumnIndex(std::string_view column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column) return i;
  }
  return Status::NotFound("no column '" + std::string(column) + "' in " +
                          QualifiedName());
}

size_t TableSchema::PrimaryKeyIndex() const {
  return ColumnIndex(primary_key_).ValueOrDie();
}

Status TableSchema::AddSecondaryIndex(std::string_view column) {
  SCD_ASSIGN_OR_RETURN(size_t index, ColumnIndex(column));
  if (columns_[index].name == primary_key_) {
    return Status::InvalidArgument("primary key is already indexed");
  }
  if (columns_[index].type == DataType::kIntSet) {
    return Status::InvalidArgument("set columns cannot carry an index");
  }
  if (std::find(secondary_indexes_.begin(), secondary_indexes_.end(), index) !=
      secondary_indexes_.end()) {
    return Status::AlreadyExists("index on '" + std::string(column) +
                                 "' already exists");
  }
  secondary_indexes_.push_back(index);
  std::sort(secondary_indexes_.begin(), secondary_indexes_.end());
  return Status::OK();
}

std::string TableSchema::ToCqlDdl() const {
  std::string ddl = "CREATE TABLE " + QualifiedName() + " (";
  for (const ColumnDef& column : columns_) {
    ddl += column.name;
    ddl += " ";
    ddl += DataTypeName(column.type);
    ddl += ", ";
  }
  ddl += "PRIMARY KEY (" + primary_key_ + "))";
  return ddl;
}

std::vector<std::string> TableSchema::ToCreateIndexDdl() const {
  std::vector<std::string> statements;
  for (size_t index : secondary_indexes_) {
    statements.push_back("CREATE INDEX ON " + QualifiedName() + " (" +
                         columns_[index].name + ")");
  }
  return statements;
}

void TableSchema::EncodeTo(ByteWriter* writer) const {
  writer->PutString(keyspace_);
  writer->PutString(name_);
  writer->PutVarint(columns_.size());
  for (const ColumnDef& column : columns_) {
    writer->PutString(column.name);
    writer->PutU8(static_cast<uint8_t>(column.type));
  }
  writer->PutString(primary_key_);
  writer->PutVarint(secondary_indexes_.size());
  for (size_t index : secondary_indexes_) writer->PutVarint(index);
}

Result<TableSchema> TableSchema::DecodeFrom(ByteReader* reader) {
  TableSchema schema;
  SCD_ASSIGN_OR_RETURN(schema.keyspace_, reader->ReadString());
  SCD_ASSIGN_OR_RETURN(schema.name_, reader->ReadString());
  SCD_ASSIGN_OR_RETURN(uint64_t num_columns, reader->ReadVarint());
  for (uint64_t i = 0; i < num_columns; ++i) {
    ColumnDef column;
    SCD_ASSIGN_OR_RETURN(column.name, reader->ReadString());
    SCD_ASSIGN_OR_RETURN(uint8_t type, reader->ReadU8());
    if (type > static_cast<uint8_t>(DataType::kIntSet)) {
      return Status::ParseError("invalid column type tag");
    }
    column.type = static_cast<DataType>(type);
    schema.columns_.push_back(std::move(column));
  }
  SCD_ASSIGN_OR_RETURN(schema.primary_key_, reader->ReadString());
  SCD_ASSIGN_OR_RETURN(uint64_t num_indexes, reader->ReadVarint());
  for (uint64_t i = 0; i < num_indexes; ++i) {
    SCD_ASSIGN_OR_RETURN(uint64_t index, reader->ReadVarint());
    schema.secondary_indexes_.push_back(static_cast<size_t>(index));
  }
  SCD_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

}  // namespace scdwarf::nosql
