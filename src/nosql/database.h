/// \file database.h
/// \brief The NoSQL store: keyspaces of column families, a write path with a
/// commit log (append per mutation batch, Cassandra-style), flush to segment
/// files and reopen with commit-log replay. Disk size accounting backs the
/// paper's size_as_mb measurements (Table 4).

#ifndef SCDWARF_NOSQL_DATABASE_H_
#define SCDWARF_NOSQL_DATABASE_H_

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "common/result.h"
#include "nosql/table.h"

namespace scdwarf::nosql {

/// \brief A single-node columnar NoSQL database.
///
/// With a data directory, every mutation batch is appended to a commit log
/// before being applied, Flush() writes one segment file per column family,
/// and Open() reloads segments then replays any unflushed log tail. Without a
/// directory the store is purely in-memory (used by unit tests).
///
/// Concurrency: mutations from different threads are safe and serialize
/// behind a fixed pool of per-table shard locks (catalog changes — create /
/// drop — take the catalog lock exclusively). Tables are shared_ptr-owned:
/// GetTable() hands out shared ownership, so a concurrent DropTable only
/// removes the catalog entry and the table object stays alive until the
/// last user releases it — no use-after-free, mutations against a dropped
/// table become no-ops on an orphan. Reads concurrent with writes to the
/// *same* table are not synchronized; callers partition work so one table
/// has one writer at a time or accept shard-lock serialization.
/// FlushTableAsync() hands segment serialization to a background flusher
/// thread with a bounded queue; WaitFlushed() is the completion barrier.
///
/// Durability: each mutation appends to the commit log and applies to the
/// table under one shard-lock critical section, so no mutation straddles
/// Flush()'s log rotation. Flush() rotates the log to a sidecar under all
/// shard locks, serializes every dirty table, and deletes the sidecar only
/// after every segment hit disk; a crash anywhere in between leaves either
/// the sidecar or the live log to replay, so acknowledged mutations are
/// never lost (inserts are upserts, so re-replay is idempotent).
class Database {
 public:
  /// In-memory database.
  Database();
  ~Database();

  /// Creates or opens a durable database rooted at \p data_dir.
  static Result<Database> Open(const std::string& data_dir);

  /// Moving drains and stops both databases' flusher threads first (they
  /// hold back-pointers); the flusher restarts lazily on the next async
  /// flush. Concurrent use of a Database while it is being moved is UB, as
  /// for any standard type.
  Database(Database&&) noexcept;
  Database& operator=(Database&&) noexcept;

  Status CreateKeyspace(const std::string& name);
  bool HasKeyspace(const std::string& name) const;

  /// Creates a column family. The keyspace must exist.
  Status CreateTable(const TableSchema& schema);
  Status DropTable(const std::string& keyspace, const std::string& table);
  Status CreateIndex(const std::string& keyspace, const std::string& table,
                     const std::string& column);

  /// Looks up a table. The returned shared_ptr keeps the table alive even
  /// if it is concurrently dropped; mutations applied after the drop go to
  /// the orphaned object and are discarded with it.
  Result<std::shared_ptr<Table>> GetTable(const std::string& keyspace,
                                          const std::string& table);
  Result<std::shared_ptr<const Table>> GetTable(const std::string& keyspace,
                                                const std::string& table) const;

  /// Applies one insert, first appending it to the commit log (durable mode).
  Status Insert(const std::string& keyspace, const std::string& table, Row row);

  /// Applies many inserts into one table with a single commit-log append —
  /// the paper's "executed in a bulk process" (§4).
  Status BulkInsert(const std::string& keyspace, const std::string& table,
                    std::vector<Row> rows);

  /// Deletes one row by primary key (logged like inserts).
  Status Delete(const std::string& keyspace, const std::string& table,
                const Value& key);

  /// Deletes many rows by primary key with one commit-log append.
  Status BulkDelete(const std::string& keyspace, const std::string& table,
                    const std::vector<Value>& keys);

  /// Writes all column families to segment files and truncates the commit
  /// log. No-op in memory mode. Internally rotates the commit log (under
  /// every shard lock, so no in-flight mutation straddles the cut), enqueues
  /// every table on the background flusher, waits for the barrier, and
  /// removes the rotated log only if every segment was written — tables
  /// untouched since their last flush are skipped.
  Status Flush();

  /// Queues one column family for serialization on the background flusher
  /// thread and returns once the job is accepted (blocking only while the
  /// bounded queue is full). Clean tables — no mutations since their last
  /// flush — are skipped when the job runs. No-op in memory mode.
  Status FlushTableAsync(const std::string& keyspace, const std::string& table);

  /// Blocks until every queued async flush has completed and returns the
  /// first flush error since the last barrier (OK when none, or when no
  /// flush was ever queued).
  Status WaitFlushed();

  /// Bytes on disk: segment files plus commit-log tail. Zero in memory mode.
  Result<uint64_t> DiskSizeBytes() const;

  /// Sum of serialized segment sizes (works in memory mode too).
  uint64_t EstimateBytes() const;

  /// Names of tables in \p keyspace.
  Result<std::vector<std::string>> ListTables(const std::string& keyspace) const;

  const std::string& data_dir() const { return data_dir_; }

 private:
  class Flusher;

  static constexpr size_t kTableLockShards = 16;

  /// Lock state lives behind one heap allocation so the Database itself
  /// stays movable (mutexes are neither movable nor copyable).
  struct Sync {
    std::shared_mutex catalog_mu;  ///< keyspaces_ map shape
    std::array<std::mutex, kTableLockShards> table_shards;  ///< row contents
    std::mutex log_mu;      ///< commit-log appends
    std::mutex flusher_mu;  ///< lazy flusher creation
  };

  Status AppendToCommitLog(const std::string& keyspace, const std::string& table,
                           const std::vector<Row>& rows, bool is_delete = false);
  /// Replays the rotated sidecar (crash mid-flush) then the live log.
  Status ReplayCommitLog();
  Status ReplayCommitLogFile(const std::string& path);
  /// Moves the live commit log aside to the sidecar (appending if a prior
  /// flush's sidecar survived a crash). Caller must exclude writers — every
  /// shard lock plus log_mu.
  Status RotateCommitLog();
  std::string SegmentPath(const std::string& keyspace,
                          const std::string& table) const;
  std::string CommitLogPath() const;
  std::string RotatedCommitLogPath() const;

  /// The shard lock guarding (keyspace, table)'s row contents.
  std::mutex& TableLock(const std::string& keyspace,
                        const std::string& table) const;

  /// Serializes one column family to its segment file (runs on the flusher
  /// thread). Tables dropped since enqueue, or clean since their last
  /// flush, are skipped; the segment hits disk under the catalog shared
  /// lock so a racing DropTable cannot have its file removal overwritten.
  Status FlushTableNow(const std::string& keyspace, const std::string& table);

  std::string data_dir_;  // empty => in-memory
  std::map<std::string, std::map<std::string, std::shared_ptr<Table>>>
      keyspaces_;
  std::unique_ptr<Sync> sync_;
  std::unique_ptr<Flusher> flusher_;  // created lazily by FlushTableAsync
};

}  // namespace scdwarf::nosql

#endif  // SCDWARF_NOSQL_DATABASE_H_
