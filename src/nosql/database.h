/// \file database.h
/// \brief The NoSQL store: keyspaces of column families, a write path with a
/// commit log (append per mutation batch, Cassandra-style), flush to segment
/// files and reopen with commit-log replay. Disk size accounting backs the
/// paper's size_as_mb measurements (Table 4).

#ifndef SCDWARF_NOSQL_DATABASE_H_
#define SCDWARF_NOSQL_DATABASE_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "nosql/table.h"

namespace scdwarf::nosql {

/// \brief A single-node columnar NoSQL database.
///
/// With a data directory, every mutation batch is appended to a commit log
/// before being applied, Flush() writes one segment file per column family,
/// and Open() reloads segments then replays any unflushed log tail. Without a
/// directory the store is purely in-memory (used by unit tests).
class Database {
 public:
  /// In-memory database.
  Database() = default;

  /// Creates or opens a durable database rooted at \p data_dir.
  static Result<Database> Open(const std::string& data_dir);

  Database(Database&&) noexcept = default;
  Database& operator=(Database&&) noexcept = default;

  Status CreateKeyspace(const std::string& name);
  bool HasKeyspace(const std::string& name) const {
    return keyspaces_.count(name) > 0;
  }

  /// Creates a column family. The keyspace must exist.
  Status CreateTable(const TableSchema& schema);
  Status DropTable(const std::string& keyspace, const std::string& table);
  Status CreateIndex(const std::string& keyspace, const std::string& table,
                     const std::string& column);

  Result<Table*> GetTable(const std::string& keyspace,
                          const std::string& table);
  Result<const Table*> GetTable(const std::string& keyspace,
                                const std::string& table) const;

  /// Applies one insert, first appending it to the commit log (durable mode).
  Status Insert(const std::string& keyspace, const std::string& table, Row row);

  /// Applies many inserts into one table with a single commit-log append —
  /// the paper's "executed in a bulk process" (§4).
  Status BulkInsert(const std::string& keyspace, const std::string& table,
                    std::vector<Row> rows);

  /// Deletes one row by primary key (logged like inserts).
  Status Delete(const std::string& keyspace, const std::string& table,
                const Value& key);

  /// Deletes many rows by primary key with one commit-log append.
  Status BulkDelete(const std::string& keyspace, const std::string& table,
                    const std::vector<Value>& keys);

  /// Writes all column families to segment files and truncates the commit
  /// log. No-op in memory mode.
  Status Flush();

  /// Bytes on disk: segment files plus commit-log tail. Zero in memory mode.
  Result<uint64_t> DiskSizeBytes() const;

  /// Sum of serialized segment sizes (works in memory mode too).
  uint64_t EstimateBytes() const;

  /// Names of tables in \p keyspace.
  Result<std::vector<std::string>> ListTables(const std::string& keyspace) const;

  const std::string& data_dir() const { return data_dir_; }

 private:
  Status AppendToCommitLog(const std::string& keyspace, const std::string& table,
                           const std::vector<Row>& rows, bool is_delete = false);
  Status ReplayCommitLog();
  std::string SegmentPath(const std::string& keyspace,
                          const std::string& table) const;
  std::string CommitLogPath() const;

  std::string data_dir_;  // empty => in-memory
  std::map<std::string, std::map<std::string, std::unique_ptr<Table>>>
      keyspaces_;
};

}  // namespace scdwarf::nosql

#endif  // SCDWARF_NOSQL_DATABASE_H_
