#include "nosql/cql.h"

#include <cctype>

#include "common/strings.h"

namespace scdwarf::nosql {

namespace {

// ------------------------------------------------------------------ lexer

enum class TokenType {
  kIdentifier,  // bare word or keyword
  kNumber,
  kString,    // 'quoted'
  kSymbol,    // ( ) , . = ; { } < >
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;  // identifiers lower-cased; strings unescaped
  std::string raw;   // original spelling (identifiers keep their case)
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespace();
      if (pos_ >= input_.size()) break;
      char c = input_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t begin = pos_;
        while (pos_ < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
                input_[pos_] == '_')) {
          ++pos_;
        }
        std::string raw(input_.substr(begin, pos_ - begin));
        tokens.push_back({TokenType::kIdentifier, AsciiToLower(raw), raw});
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < input_.size() &&
                  std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
        size_t begin = pos_;
        ++pos_;
        while (pos_ < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
          ++pos_;
        }
        std::string raw(input_.substr(begin, pos_ - begin));
        tokens.push_back({TokenType::kNumber, raw, raw});
      } else if (c == '\'') {
        ++pos_;
        std::string text;
        while (true) {
          if (pos_ >= input_.size()) {
            return Status::ParseError("unterminated string literal");
          }
          if (input_[pos_] == '\'') {
            if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '\'') {
              text.push_back('\'');
              pos_ += 2;
              continue;
            }
            ++pos_;
            break;
          }
          text.push_back(input_[pos_++]);
        }
        tokens.push_back({TokenType::kString, text, text});
      } else if (std::string("(),.=;{}<>*").find(c) != std::string::npos) {
        tokens.push_back({TokenType::kSymbol, std::string(1, c),
                          std::string(1, c)});
        ++pos_;
      } else {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' in CQL input");
      }
    }
    tokens.push_back({TokenType::kEnd, "", ""});
    return tokens;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

// ----------------------------------------------------------------- parser

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    SCD_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
    ConsumeSymbol(";");
    if (!AtEnd()) return Error("trailing tokens after statement");
    return stmt;
  }

 private:
  Result<Statement> ParseStatementInner() {
    if (ConsumeKeyword("create")) {
      if (ConsumeKeyword("keyspace")) return ParseCreateKeyspace();
      if (ConsumeKeyword("table")) return ParseCreateTable();
      if (ConsumeKeyword("index")) return ParseCreateIndex();
      return Error("expected KEYSPACE, TABLE or INDEX after CREATE");
    }
    if (ConsumeKeyword("drop")) {
      if (!ConsumeKeyword("table")) return Error("expected TABLE after DROP");
      DropTableStmt stmt;
      SCD_RETURN_IF_ERROR(ParseQualifiedName(&stmt.keyspace, &stmt.table));
      return Statement(stmt);
    }
    if (PeekKeyword("insert")) {
      SCD_ASSIGN_OR_RETURN(InsertStmt stmt, ParseInsert());
      return Statement(stmt);
    }
    if (ConsumeKeyword("select")) return ParseSelect();
    if (ConsumeKeyword("delete")) {
      if (!ConsumeKeyword("from")) return Error("expected FROM after DELETE");
      DeleteStmt stmt;
      SCD_RETURN_IF_ERROR(ParseQualifiedName(&stmt.keyspace, &stmt.table));
      if (!ConsumeKeyword("where")) return Error("DELETE requires WHERE");
      SCD_ASSIGN_OR_RETURN(stmt.column, ExpectIdentifier("column name"));
      if (!ConsumeSymbol("=")) return Error("expected '=' in DELETE");
      SCD_ASSIGN_OR_RETURN(stmt.key, ParseLiteral());
      return Statement(stmt);
    }
    if (ConsumeKeyword("begin")) {
      if (!ConsumeKeyword("batch")) return Error("expected BATCH after BEGIN");
      BatchStmt batch;
      while (!PeekKeyword("apply")) {
        SCD_ASSIGN_OR_RETURN(InsertStmt insert, ParseInsert());
        batch.inserts.push_back(std::move(insert));
        ConsumeSymbol(";");
      }
      ConsumeKeyword("apply");
      if (!ConsumeKeyword("batch")) return Error("expected APPLY BATCH");
      return Statement(batch);
    }
    return Error("unrecognized statement");
  }

  Result<Statement> ParseCreateKeyspace() {
    SCD_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("keyspace name"));
    return Statement(CreateKeyspaceStmt{name});
  }

  Result<Statement> ParseCreateTable() {
    std::string keyspace, table;
    SCD_RETURN_IF_ERROR(ParseQualifiedName(&keyspace, &table));
    if (!ConsumeSymbol("(")) return Error("expected '(' after table name");
    std::vector<ColumnDef> columns;
    std::string primary_key;
    while (true) {
      if (ConsumeKeyword("primary")) {
        if (!ConsumeKeyword("key")) return Error("expected KEY after PRIMARY");
        if (!ConsumeSymbol("(")) return Error("expected '(' after PRIMARY KEY");
        SCD_ASSIGN_OR_RETURN(primary_key, ExpectIdentifier("key column"));
        if (!ConsumeSymbol(")")) return Error("expected ')' after key column");
      } else {
        SCD_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("column name"));
        SCD_ASSIGN_OR_RETURN(DataType type, ParseTypeTokens());
        columns.emplace_back(name, type);
      }
      if (ConsumeSymbol(",")) continue;
      if (ConsumeSymbol(")")) break;
      return Error("expected ',' or ')' in column list");
    }
    if (primary_key.empty()) return Error("missing PRIMARY KEY clause");
    TableSchema schema(keyspace, table, std::move(columns), primary_key);
    SCD_RETURN_IF_ERROR(schema.Validate());
    return Statement(CreateTableStmt{std::move(schema)});
  }

  /// Parses "int" / "text" / "set < int >" token sequences into a DataType.
  Result<DataType> ParseTypeTokens() {
    SCD_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("type name"));
    if (name == "set") {
      if (!ConsumeSymbol("<")) return Error("expected '<' after set");
      SCD_ASSIGN_OR_RETURN(std::string inner, ExpectIdentifier("set element type"));
      if (!ConsumeSymbol(">")) return Error("expected '>' after set element");
      return ParseDataType("set<" + inner + ">");
    }
    return ParseDataType(name);
  }

  Result<Statement> ParseCreateIndex() {
    // Optional index name.
    if (Peek().type == TokenType::kIdentifier && Peek().text != "on") {
      ++pos_;
    }
    if (!ConsumeKeyword("on")) return Error("expected ON in CREATE INDEX");
    CreateIndexStmt stmt;
    SCD_RETURN_IF_ERROR(ParseQualifiedName(&stmt.keyspace, &stmt.table));
    if (!ConsumeSymbol("(")) return Error("expected '(' after table name");
    SCD_ASSIGN_OR_RETURN(stmt.column, ExpectIdentifier("indexed column"));
    if (!ConsumeSymbol(")")) return Error("expected ')' after indexed column");
    return Statement(stmt);
  }

  Result<InsertStmt> ParseInsert() {
    if (!ConsumeKeyword("insert") || !ConsumeKeyword("into")) {
      return Error("expected INSERT INTO");
    }
    InsertStmt stmt;
    SCD_RETURN_IF_ERROR(ParseQualifiedName(&stmt.keyspace, &stmt.table));
    if (!ConsumeSymbol("(")) return Error("expected '(' after table name");
    while (true) {
      SCD_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier("column name"));
      stmt.columns.push_back(std::move(column));
      if (ConsumeSymbol(",")) continue;
      if (ConsumeSymbol(")")) break;
      return Error("expected ',' or ')' in column list");
    }
    if (!ConsumeKeyword("values")) return Error("expected VALUES");
    if (!ConsumeSymbol("(")) return Error("expected '(' after VALUES");
    while (true) {
      SCD_ASSIGN_OR_RETURN(Value value, ParseLiteral());
      stmt.values.push_back(std::move(value));
      if (ConsumeSymbol(",")) continue;
      if (ConsumeSymbol(")")) break;
      return Error("expected ',' or ')' in value list");
    }
    if (stmt.columns.size() != stmt.values.size()) {
      return Error("column/value count mismatch in INSERT");
    }
    return stmt;
  }

  Result<Statement> ParseSelect() {
    SelectStmt stmt;
    if (ConsumeSymbol("*")) {
      // all columns
    } else {
      while (true) {
        SCD_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier("column name"));
        stmt.columns.push_back(std::move(column));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (!ConsumeKeyword("from")) return Error("expected FROM");
    SCD_RETURN_IF_ERROR(ParseQualifiedName(&stmt.keyspace, &stmt.table));
    if (ConsumeKeyword("where")) {
      while (true) {
        SCD_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier("column name"));
        if (!ConsumeSymbol("=")) return Error("only equality predicates supported");
        SCD_ASSIGN_OR_RETURN(Value value, ParseLiteral());
        stmt.where.emplace_back(std::move(column), std::move(value));
        if (!ConsumeKeyword("and")) break;
      }
    }
    if (ConsumeKeyword("allow")) {
      if (!ConsumeKeyword("filtering")) return Error("expected ALLOW FILTERING");
      stmt.allow_filtering = true;
    }
    return Statement(stmt);
  }

  Result<Value> ParseLiteral() {
    const Token& token = Peek();
    if (token.type == TokenType::kNumber) {
      ++pos_;
      SCD_ASSIGN_OR_RETURN(int64_t value, ParseInt64(token.text));
      return Value::Int(value);
    }
    if (token.type == TokenType::kString) {
      ++pos_;
      return Value::Text(token.text);
    }
    if (token.type == TokenType::kIdentifier) {
      if (token.text == "true") {
        ++pos_;
        return Value::Bool(true);
      }
      if (token.text == "false") {
        ++pos_;
        return Value::Bool(false);
      }
      if (token.text == "null") {
        ++pos_;
        return Value::Null();
      }
      return Error("expected a literal, got '" + token.raw + "'");
    }
    if (token.type == TokenType::kSymbol && token.text == "{") {
      ++pos_;
      std::vector<int64_t> members;
      if (!ConsumeSymbol("}")) {
        while (true) {
          const Token& member = Peek();
          if (member.type != TokenType::kNumber) {
            return Error("set literals may contain only integers");
          }
          ++pos_;
          SCD_ASSIGN_OR_RETURN(int64_t value, ParseInt64(member.text));
          members.push_back(value);
          if (ConsumeSymbol(",")) continue;
          if (ConsumeSymbol("}")) break;
          return Error("expected ',' or '}' in set literal");
        }
      }
      return Value::IntSet(std::move(members));
    }
    return Error("expected a literal");
  }

  Status ParseQualifiedName(std::string* keyspace, std::string* table) {
    SCD_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier("keyspace name"));
    if (!ConsumeSymbol(".")) {
      return Error("table names must be keyspace-qualified (ks.table)");
    }
    SCD_ASSIGN_OR_RETURN(std::string second, ExpectIdentifier("table name"));
    *keyspace = std::move(first);
    *table = std::move(second);
    return Status::OK();
  }

  // --- token helpers ---
  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool PeekKeyword(std::string_view keyword) const {
    return Peek().type == TokenType::kIdentifier && Peek().text == keyword;
  }
  bool ConsumeKeyword(std::string_view keyword) {
    if (!PeekKeyword(keyword)) return false;
    ++pos_;
    return true;
  }
  bool ConsumeSymbol(std::string_view symbol) {
    if (Peek().type != TokenType::kSymbol || Peek().text != symbol) return false;
    ++pos_;
    return true;
  }
  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected " + what);
    }
    return tokens_[pos_++].text;
  }
  Status Error(const std::string& message) const {
    std::string near = AtEnd() ? "<end>" : Peek().raw;
    return Status::ParseError(message + " (near '" + near + "')");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

// --------------------------------------------------------------- executor

Result<QueryResult> ExecuteInsert(Database* db, const InsertStmt& stmt) {
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> table, static_cast<const Database*>(db)
                                              ->GetTable(stmt.keyspace, stmt.table));
  const TableSchema& schema = table->schema();
  Row row(schema.num_columns(), Value::Null());
  for (size_t i = 0; i < stmt.columns.size(); ++i) {
    SCD_ASSIGN_OR_RETURN(size_t index, schema.ColumnIndex(stmt.columns[i]));
    row[index] = stmt.values[i];
  }
  SCD_RETURN_IF_ERROR(db->Insert(stmt.keyspace, stmt.table, std::move(row)));
  return QueryResult{};
}

Result<QueryResult> ExecuteSelect(Database* db, const SelectStmt& stmt) {
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> table, static_cast<const Database*>(db)
                                              ->GetTable(stmt.keyspace, stmt.table));
  const TableSchema& schema = table->schema();

  // Resolve projection.
  std::vector<size_t> projection;
  QueryResult result;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      projection.push_back(i);
      result.columns.push_back(schema.columns()[i].name);
    }
  } else {
    for (const std::string& column : stmt.columns) {
      SCD_ASSIGN_OR_RETURN(size_t index, schema.ColumnIndex(column));
      projection.push_back(index);
      result.columns.push_back(column);
    }
  }

  // Candidate rows: use the most selective equality (pk first, then any
  // indexed column); remaining predicates filter.
  std::vector<const Row*> candidates;
  if (stmt.where.empty()) {
    candidates = table->ScanAll();
  } else {
    // Pick driver predicate.
    int driver = -1;
    for (size_t i = 0; i < stmt.where.size(); ++i) {
      SCD_ASSIGN_OR_RETURN(size_t index, schema.ColumnIndex(stmt.where[i].first));
      if (index == schema.PrimaryKeyIndex()) {
        driver = static_cast<int>(i);
        break;
      }
      bool indexed = false;
      for (size_t sec : schema.secondary_indexes()) {
        if (sec == index) indexed = true;
      }
      if (indexed && driver < 0) driver = static_cast<int>(i);
    }
    if (driver < 0) {
      if (!stmt.allow_filtering) {
        return Status::FailedPrecondition(
            "no indexed column in WHERE clause; use ALLOW FILTERING");
      }
      driver = 0;
    }
    SCD_ASSIGN_OR_RETURN(
        candidates,
        table->SelectEq(stmt.where[driver].first, stmt.where[driver].second,
                        /*allow_filtering=*/true));
    // Apply the rest.
    for (size_t i = 0; i < stmt.where.size(); ++i) {
      if (static_cast<int>(i) == driver) continue;
      SCD_ASSIGN_OR_RETURN(size_t index, schema.ColumnIndex(stmt.where[i].first));
      std::vector<const Row*> filtered;
      for (const Row* row : candidates) {
        if ((*row)[index] == stmt.where[i].second) filtered.push_back(row);
      }
      candidates = std::move(filtered);
    }
  }

  result.rows.reserve(candidates.size());
  for (const Row* row : candidates) {
    Row projected;
    projected.reserve(projection.size());
    for (size_t index : projection) projected.push_back((*row)[index]);
    result.rows.push_back(std::move(projected));
  }
  return result;
}

}  // namespace

Result<Statement> ParseCql(std::string_view input) {
  Lexer lexer(input);
  SCD_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<QueryResult> ExecuteStatement(Database* db, const Statement& statement) {
  if (const auto* stmt = std::get_if<CreateKeyspaceStmt>(&statement)) {
    SCD_RETURN_IF_ERROR(db->CreateKeyspace(stmt->keyspace));
    return QueryResult{};
  }
  if (const auto* stmt = std::get_if<CreateTableStmt>(&statement)) {
    SCD_RETURN_IF_ERROR(db->CreateTable(stmt->schema));
    return QueryResult{};
  }
  if (const auto* stmt = std::get_if<CreateIndexStmt>(&statement)) {
    SCD_RETURN_IF_ERROR(db->CreateIndex(stmt->keyspace, stmt->table, stmt->column));
    return QueryResult{};
  }
  if (const auto* stmt = std::get_if<DropTableStmt>(&statement)) {
    SCD_RETURN_IF_ERROR(db->DropTable(stmt->keyspace, stmt->table));
    return QueryResult{};
  }
  if (const auto* stmt = std::get_if<InsertStmt>(&statement)) {
    return ExecuteInsert(db, *stmt);
  }
  if (const auto* stmt = std::get_if<SelectStmt>(&statement)) {
    return ExecuteSelect(db, *stmt);
  }
  if (const auto* stmt = std::get_if<DeleteStmt>(&statement)) {
    SCD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> table,
                         static_cast<const Database*>(db)->GetTable(
                             stmt->keyspace, stmt->table));
    if (table->schema().primary_key() != stmt->column) {
      return Status::InvalidArgument(
          "DELETE is only supported by primary key ('" +
          table->schema().primary_key() + "')");
    }
    SCD_RETURN_IF_ERROR(db->Delete(stmt->keyspace, stmt->table, stmt->key));
    return QueryResult{};
  }
  if (const auto* stmt = std::get_if<BatchStmt>(&statement)) {
    for (const InsertStmt& insert : stmt->inserts) {
      SCD_RETURN_IF_ERROR(ExecuteInsert(db, insert).status());
    }
    return QueryResult{};
  }
  return Status::Internal("unhandled statement variant");
}

Result<QueryResult> ExecuteCql(Database* db, std::string_view input) {
  SCD_ASSIGN_OR_RETURN(Statement statement, ParseCql(input));
  return ExecuteStatement(db, statement);
}

std::string QueryResult::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns[i];
  }
  out += "\n";
  out += std::string(out.size() > 1 ? out.size() - 1 : 0, '-');
  out += "\n";
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToDisplayString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace scdwarf::nosql
