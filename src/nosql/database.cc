#include "nosql/database.h"

#include <cctype>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>
#include <utility>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace scdwarf::nosql {

namespace fs = std::filesystem;

namespace {

metrics::Counter* FlushesCounter() {
  static metrics::Counter* const counter = metrics::GlobalRegistry().GetCounter(
      "nosql_flushes_total", {}, "Database::Flush calls");
  return counter;
}

FixedBucketHistogram* FlushHistogram() {
  static FixedBucketHistogram* const hist =
      metrics::GlobalRegistry().GetHistogram(
          "nosql_flush_us", {},
          "full Flush wall time: rotation + segment writes + barrier (us)");
  return hist;
}

metrics::Counter* LogRotationsCounter() {
  static metrics::Counter* const counter = metrics::GlobalRegistry().GetCounter(
      "nosql_log_rotations_total", {},
      "commit-log rotations to the flush sidecar");
  return counter;
}

FixedBucketHistogram* LogRotateHistogram() {
  static FixedBucketHistogram* const hist =
      metrics::GlobalRegistry().GetHistogram(
          "nosql_log_rotate_us", {},
          "commit-log rotation critical section incl. writer exclusion (us)");
  return hist;
}

metrics::Counter* AsyncFlushesCounter() {
  static metrics::Counter* const counter = metrics::GlobalRegistry().GetCounter(
      "nosql_async_flushes_total", {},
      "segment flush jobs handed to the background flusher");
  return counter;
}

metrics::Counter* SegmentFlushesCounter() {
  static metrics::Counter* const counter = metrics::GlobalRegistry().GetCounter(
      "nosql_segment_flushes_total", {},
      "per-table segment serializations actually written (dirty tables)");
  return counter;
}

FixedBucketHistogram* SegmentFlushHistogram() {
  static FixedBucketHistogram* const hist =
      metrics::GlobalRegistry().GetHistogram(
          "nosql_segment_flush_us", {},
          "one table's segment serialize + atomic write time (us)");
  return hist;
}

Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& bytes) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::IoError("short write to " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return Status::IoError("rename failed: " + ec.message());
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::IoError("short read from " + path);
  }
  return bytes;
}

/// Encodes a table or keyspace name safely into a file name.
std::string SanitizeName(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-') {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  return out;
}

}  // namespace

/// \brief Background segment serializer: one worker thread drains a bounded
/// queue of (keyspace, table) flush jobs.
///
/// Enqueue() blocks while the queue is full (back-pressure against an
/// ingester outrunning the disk), Wait() blocks until the queue and any
/// in-flight job drain and reports the first error since the last barrier.
/// The destructor drains remaining jobs before joining, so no accepted
/// flush is ever dropped.
class Database::Flusher {
 public:
  explicit Flusher(Database* db) : db_(db), worker_([this] { Loop(); }) {}

  ~Flusher() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    wake_.notify_all();
    space_.notify_all();
    worker_.join();
  }

  Status Enqueue(const std::string& keyspace, const std::string& table) {
    std::unique_lock<std::mutex> lock(mu_);
    space_.wait(lock,
                [this] { return queue_.size() < kCapacity || stopping_; });
    if (stopping_) return Status::FailedPrecondition("flusher is stopping");
    queue_.emplace_back(keyspace, table);
    ++in_flight_;
    wake_.notify_all();
    return Status::OK();
  }

  Status Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    drained_.wait(lock, [this] { return in_flight_ == 0; });
    Status first = std::move(first_error_);
    first_error_ = Status::OK();
    return first;
  }

 private:
  /// Bounded queue depth: enough to overlap serialization with ingestion,
  /// small enough that back-pressure caps memory held in pending jobs.
  static constexpr size_t kCapacity = 8;

  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and fully drained
      std::pair<std::string, std::string> job = std::move(queue_.front());
      queue_.pop_front();
      space_.notify_all();
      lock.unlock();
      Status status = db_->FlushTableNow(job.first, job.second);
      lock.lock();
      if (!status.ok() && first_error_.ok()) first_error_ = std::move(status);
      if (--in_flight_ == 0) drained_.notify_all();
    }
  }

  Database* db_;
  std::mutex mu_;
  std::condition_variable wake_;     ///< worker: work available or stopping
  std::condition_variable space_;    ///< producers: queue has room
  std::condition_variable drained_;  ///< barrier: all jobs completed
  std::deque<std::pair<std::string, std::string>> queue_;
  size_t in_flight_ = 0;  ///< queued + currently running
  bool stopping_ = false;
  Status first_error_;
  std::thread worker_;  // last member: starts after the state above exists
};

Database::Database() : sync_(std::make_unique<Sync>()) {}

Database::~Database() = default;  // ~Flusher drains + joins first

Database::Database(Database&& other) noexcept {
  other.flusher_.reset();  // drain + join: the worker holds &other
  data_dir_ = std::move(other.data_dir_);
  keyspaces_ = std::move(other.keyspaces_);
  sync_ = std::move(other.sync_);
}

Database& Database::operator=(Database&& other) noexcept {
  if (this != &other) {
    flusher_.reset();
    other.flusher_.reset();
    data_dir_ = std::move(other.data_dir_);
    keyspaces_ = std::move(other.keyspaces_);
    sync_ = std::move(other.sync_);
  }
  return *this;
}

Result<Database> Database::Open(const std::string& data_dir) {
  if (data_dir.empty()) {
    return Status::InvalidArgument("data_dir must not be empty; "
                                   "use the default constructor for memory mode");
  }
  Database db;
  db.data_dir_ = data_dir;
  std::error_code ec;
  fs::create_directories(data_dir, ec);
  if (ec) return Status::IoError("cannot create " + data_dir + ": " + ec.message());

  // Load existing segments: <dir>/<keyspace>/<table>.cf
  for (const auto& ks_entry : fs::directory_iterator(data_dir)) {
    if (!ks_entry.is_directory()) continue;
    std::string keyspace = ks_entry.path().filename().string();
    db.keyspaces_[keyspace];  // ensure keyspace exists even if empty
    for (const auto& cf_entry : fs::directory_iterator(ks_entry.path())) {
      if (cf_entry.path().extension() != ".cf") continue;
      SCD_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                           ReadFile(cf_entry.path().string()));
      ByteReader reader(bytes);
      auto table = Table::Deserialize(&reader);
      if (!table.ok()) {
        return table.status().WithContext("loading " +
                                          cf_entry.path().string());
      }
      std::string name = (*table)->schema().name();
      db.keyspaces_[keyspace][name] = std::move(*table);
    }
  }
  SCD_RETURN_IF_ERROR(db.ReplayCommitLog());
  return db;
}

bool Database::HasKeyspace(const std::string& name) const {
  std::shared_lock<std::shared_mutex> catalog(sync_->catalog_mu);
  return keyspaces_.count(name) > 0;
}

Status Database::CreateKeyspace(const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("empty keyspace name");
  std::unique_lock<std::shared_mutex> catalog(sync_->catalog_mu);
  if (keyspaces_.count(name) > 0) {
    return Status::AlreadyExists("keyspace '" + name + "' already exists");
  }
  keyspaces_[name];
  return Status::OK();
}

Status Database::CreateTable(const TableSchema& schema) {
  SCD_RETURN_IF_ERROR(schema.Validate());
  std::unique_lock<std::shared_mutex> catalog(sync_->catalog_mu);
  auto ks = keyspaces_.find(schema.keyspace());
  if (ks == keyspaces_.end()) {
    return Status::NotFound("keyspace '" + schema.keyspace() + "' does not exist");
  }
  if (ks->second.count(schema.name()) > 0) {
    return Status::AlreadyExists("table " + schema.QualifiedName() +
                                 " already exists");
  }
  ks->second[schema.name()] = std::make_shared<Table>(schema);
  return Status::OK();
}

Status Database::DropTable(const std::string& keyspace,
                           const std::string& table) {
  std::unique_lock<std::shared_mutex> catalog(sync_->catalog_mu);
  auto ks = keyspaces_.find(keyspace);
  if (ks == keyspaces_.end() || ks->second.erase(table) == 0) {
    return Status::NotFound("table " + keyspace + "." + table +
                            " does not exist");
  }
  if (!data_dir_.empty()) {
    std::error_code ec;
    fs::remove(SegmentPath(keyspace, table), ec);
  }
  return Status::OK();
}

Status Database::CreateIndex(const std::string& keyspace,
                             const std::string& table,
                             const std::string& column) {
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, GetTable(keyspace, table));
  std::lock_guard<std::mutex> lock(TableLock(keyspace, table));
  return t->CreateIndex(column);
}

Result<std::shared_ptr<Table>> Database::GetTable(const std::string& keyspace,
                                                  const std::string& table) {
  std::shared_lock<std::shared_mutex> catalog(sync_->catalog_mu);
  auto ks = keyspaces_.find(keyspace);
  if (ks == keyspaces_.end()) {
    return Status::NotFound("keyspace '" + keyspace + "' does not exist");
  }
  auto it = ks->second.find(table);
  if (it == ks->second.end()) {
    return Status::NotFound("table " + keyspace + "." + table +
                            " does not exist");
  }
  return it->second;
}

Result<std::shared_ptr<const Table>> Database::GetTable(
    const std::string& keyspace, const std::string& table) const {
  auto* self = const_cast<Database*>(this);
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<Table> t,
                       self->GetTable(keyspace, table));
  return std::shared_ptr<const Table>(std::move(t));
}

Status Database::Insert(const std::string& keyspace, const std::string& table,
                        Row row) {
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, GetTable(keyspace, table));
  // One shard-lock critical section covers the log append and the in-memory
  // apply, so no mutation straddles Flush()'s log rotation (which holds
  // every shard lock): a logged row is applied before the rotation cut or
  // logged entirely after it.
  std::lock_guard<std::mutex> lock(TableLock(keyspace, table));
  if (!data_dir_.empty()) {
    std::lock_guard<std::mutex> log_lock(sync_->log_mu);
    SCD_RETURN_IF_ERROR(AppendToCommitLog(keyspace, table, {row}));
  }
  return t->Insert(std::move(row));
}

Status Database::BulkInsert(const std::string& keyspace,
                            const std::string& table, std::vector<Row> rows) {
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, GetTable(keyspace, table));
  std::lock_guard<std::mutex> lock(TableLock(keyspace, table));
  if (!data_dir_.empty()) {
    std::lock_guard<std::mutex> log_lock(sync_->log_mu);
    SCD_RETURN_IF_ERROR(AppendToCommitLog(keyspace, table, rows));
  }
  t->ReserveAdditional(rows.size());
  for (Row& row : rows) {
    SCD_RETURN_IF_ERROR(t->Insert(std::move(row)));
  }
  return Status::OK();
}

Status Database::Delete(const std::string& keyspace, const std::string& table,
                        const Value& key) {
  return BulkDelete(keyspace, table, {key});
}

Status Database::BulkDelete(const std::string& keyspace,
                            const std::string& table,
                            const std::vector<Value>& keys) {
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, GetTable(keyspace, table));
  std::lock_guard<std::mutex> lock(TableLock(keyspace, table));
  if (!data_dir_.empty()) {
    // Deletes are logged as single-value rows with the delete flag set.
    std::vector<Row> key_rows;
    key_rows.reserve(keys.size());
    for (const Value& key : keys) key_rows.push_back({key});
    std::lock_guard<std::mutex> log_lock(sync_->log_mu);
    SCD_RETURN_IF_ERROR(
        AppendToCommitLog(keyspace, table, key_rows, /*is_delete=*/true));
  }
  for (const Value& key : keys) {
    SCD_RETURN_IF_ERROR(t->DeleteByPk(key));
  }
  return Status::OK();
}

Status Database::Flush() {
  if (data_dir_.empty()) return Status::OK();
  trace::ScopedSpan span("nosql.flush");
  Stopwatch flush_watch;
  FlushesCounter()->Increment();
  // Rotate the commit log with every writer excluded (all shard locks +
  // log_mu). Afterwards each logged mutation is either in the sidecar and
  // already applied to its table — so the serialization below captures it —
  // or entirely in the fresh live log.
  {
    Stopwatch rotate_watch;
    std::array<std::unique_lock<std::mutex>, kTableLockShards> shard_locks;
    for (size_t i = 0; i < kTableLockShards; ++i) {
      shard_locks[i] = std::unique_lock<std::mutex>(sync_->table_shards[i]);
    }
    std::lock_guard<std::mutex> log_lock(sync_->log_mu);
    SCD_RETURN_IF_ERROR(RotateCommitLog());
    LogRotateHistogram()->Record(rotate_watch.ElapsedMicros());
  }
  // Jobs are collected after the rotation so every table with sidecar
  // records still in the catalog gets a flush job.
  std::vector<std::pair<std::string, std::string>> jobs;
  {
    std::shared_lock<std::shared_mutex> catalog(sync_->catalog_mu);
    for (const auto& [keyspace, tables] : keyspaces_) {
      // Keyspace directories are created even when empty so a reopen
      // rediscovers the keyspace.
      std::error_code ec;
      fs::create_directories(fs::path(data_dir_) / SanitizeName(keyspace), ec);
      if (ec) {
        return Status::IoError("cannot create keyspace dir: " + ec.message());
      }
      for (const auto& [name, table] : tables) jobs.emplace_back(keyspace, name);
    }
  }
  for (const auto& [keyspace, name] : jobs) {
    SCD_RETURN_IF_ERROR(FlushTableAsync(keyspace, name));
  }
  SCD_RETURN_IF_ERROR(WaitFlushed());
  // Every sidecar record is now covered by a segment (records for tables
  // dropped meanwhile are skipped at replay anyway), so the sidecar can go.
  // On any earlier error it survives and is replayed at the next reopen.
  std::error_code ec;
  fs::remove(RotatedCommitLogPath(), ec);
  FlushHistogram()->Record(flush_watch.ElapsedMicros());
  return Status::OK();
}

Status Database::FlushTableAsync(const std::string& keyspace,
                                 const std::string& table) {
  if (data_dir_.empty()) return Status::OK();
  AsyncFlushesCounter()->Increment();
  Flusher* flusher = nullptr;
  {
    std::lock_guard<std::mutex> lock(sync_->flusher_mu);
    if (flusher_ == nullptr) flusher_ = std::make_unique<Flusher>(this);
    flusher = flusher_.get();
  }
  return flusher->Enqueue(keyspace, table);
}

Status Database::WaitFlushed() {
  Flusher* flusher = nullptr;
  {
    std::lock_guard<std::mutex> lock(sync_->flusher_mu);
    flusher = flusher_.get();
  }
  if (flusher == nullptr) return Status::OK();
  return flusher->Wait();
}

Status Database::FlushTableNow(const std::string& keyspace,
                               const std::string& table) {
  trace::ScopedSpan span("nosql.segment_flush");
  Stopwatch watch;
  std::shared_ptr<Table> t;
  {
    std::shared_lock<std::shared_mutex> catalog(sync_->catalog_mu);
    auto ks = keyspaces_.find(keyspace);
    if (ks == keyspaces_.end()) return Status::OK();  // dropped since enqueue
    auto it = ks->second.find(table);
    if (it == ks->second.end()) return Status::OK();
    t = it->second;
  }
  ByteWriter writer;
  uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(TableLock(keyspace, table));
    version = t->mutation_version();
    if (version == t->flushed_version()) return Status::OK();  // clean
    t->SerializeTo(&writer);
  }
  // The segment is written under the catalog shared lock: a concurrent
  // DropTable (exclusive) either already removed the entry — the
  // re-validation skips the write — or blocks until the segment is out and
  // then removes the file, so a drop is never resurrected by a stale flush.
  std::shared_lock<std::shared_mutex> catalog(sync_->catalog_mu);
  auto ks = keyspaces_.find(keyspace);
  if (ks == keyspaces_.end()) return Status::OK();
  auto it = ks->second.find(table);
  if (it == ks->second.end() || it->second != t) return Status::OK();
  std::error_code ec;
  fs::create_directories(fs::path(data_dir_) / SanitizeName(keyspace), ec);
  if (ec) {
    return Status::IoError("cannot create keyspace dir: " + ec.message());
  }
  SCD_RETURN_IF_ERROR(
      WriteFileAtomic(SegmentPath(keyspace, table), writer.data()));
  t->MarkFlushed(version);
  SegmentFlushesCounter()->Increment();
  SegmentFlushHistogram()->Record(watch.ElapsedMicros());
  return Status::OK();
}

std::mutex& Database::TableLock(const std::string& keyspace,
                                const std::string& table) const {
  size_t h = std::hash<std::string>()(keyspace) * 1000003u ^
             std::hash<std::string>()(table);
  return sync_->table_shards[h % kTableLockShards];
}

Result<uint64_t> Database::DiskSizeBytes() const {
  if (data_dir_.empty()) return uint64_t{0};
  uint64_t total = 0;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(data_dir_, ec);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_regular_file()) total += it->file_size();
  }
  if (ec) return Status::IoError("walking " + data_dir_ + ": " + ec.message());
  return total;
}

uint64_t Database::EstimateBytes() const {
  uint64_t total = 0;
  std::shared_lock<std::shared_mutex> catalog(sync_->catalog_mu);
  for (const auto& [keyspace, tables] : keyspaces_) {
    for (const auto& [name, table] : tables) {
      total += table->EstimateSegmentBytes();
    }
  }
  return total;
}

Result<std::vector<std::string>> Database::ListTables(
    const std::string& keyspace) const {
  std::shared_lock<std::shared_mutex> catalog(sync_->catalog_mu);
  auto ks = keyspaces_.find(keyspace);
  if (ks == keyspaces_.end()) {
    return Status::NotFound("keyspace '" + keyspace + "' does not exist");
  }
  std::vector<std::string> names;
  names.reserve(ks->second.size());
  for (const auto& [name, table] : ks->second) names.push_back(name);
  return names;
}

std::string Database::SegmentPath(const std::string& keyspace,
                                  const std::string& table) const {
  return (fs::path(data_dir_) / SanitizeName(keyspace) /
          (SanitizeName(table) + ".cf"))
      .string();
}

std::string Database::CommitLogPath() const {
  return (fs::path(data_dir_) / "commitlog.bin").string();
}

std::string Database::RotatedCommitLogPath() const {
  return (fs::path(data_dir_) / "commitlog.old.bin").string();
}

Status Database::RotateCommitLog() {
  if (!fs::exists(CommitLogPath())) return Status::OK();
  LogRotationsCounter()->Increment();
  std::error_code ec;
  const std::string rotated = RotatedCommitLogPath();
  if (!fs::exists(rotated)) {
    fs::rename(CommitLogPath(), rotated, ec);
    if (ec) return Status::IoError("rotating commit log: " + ec.message());
    return Status::OK();
  }
  // A prior flush failed (or crashed) after rotating: append the live log
  // to the surviving sidecar so replay order — sidecar, then live — still
  // reproduces append order.
  SCD_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFile(CommitLogPath()));
  {
    std::ofstream out(rotated, std::ios::binary | std::ios::app);
    if (!out) return Status::IoError("cannot open rotated commit log");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::IoError("short append to rotated commit log");
  }
  fs::remove(CommitLogPath(), ec);
  if (ec) return Status::IoError("removing commit log: " + ec.message());
  return Status::OK();
}

Status Database::AppendToCommitLog(const std::string& keyspace,
                                   const std::string& table,
                                   const std::vector<Row>& rows,
                                   bool is_delete) {
  ByteWriter writer;
  writer.PutU8(is_delete ? 1 : 0);
  writer.PutString(keyspace);
  writer.PutString(table);
  writer.PutVarint(rows.size());
  for (const Row& row : rows) {
    writer.PutVarint(row.size());
    for (const Value& value : row) value.EncodeTo(&writer);
  }
  std::ofstream out(CommitLogPath(), std::ios::binary | std::ios::app);
  if (!out) return Status::IoError("cannot open commit log");
  // Length-prefixed record so replay can find batch boundaries.
  ByteWriter framed;
  framed.PutU32(static_cast<uint32_t>(writer.size()));
  out.write(reinterpret_cast<const char*>(framed.data().data()),
            static_cast<std::streamsize>(framed.size()));
  out.write(reinterpret_cast<const char*>(writer.data().data()),
            static_cast<std::streamsize>(writer.size()));
  if (!out) return Status::IoError("short write to commit log");
  return Status::OK();
}

Status Database::ReplayCommitLog() {
  // The sidecar (a flush that never finished) holds older records than the
  // live log; replay it first. Inserts are upserts, so records whose rows
  // also reached a segment re-apply idempotently.
  SCD_RETURN_IF_ERROR(ReplayCommitLogFile(RotatedCommitLogPath()));
  return ReplayCommitLogFile(CommitLogPath());
}

Status Database::ReplayCommitLogFile(const std::string& path) {
  if (!fs::exists(path)) return Status::OK();
  SCD_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFile(path));
  ByteReader reader(bytes);
  while (!reader.AtEnd()) {
    auto frame_size = reader.ReadU32();
    if (!frame_size.ok()) break;  // torn tail: stop replay
    if (reader.remaining() < *frame_size) break;
    SCD_ASSIGN_OR_RETURN(uint8_t op, reader.ReadU8());
    SCD_ASSIGN_OR_RETURN(std::string keyspace, reader.ReadString());
    SCD_ASSIGN_OR_RETURN(std::string table, reader.ReadString());
    SCD_ASSIGN_OR_RETURN(uint64_t num_rows, reader.ReadVarint());
    auto table_result = GetTable(keyspace, table);
    for (uint64_t r = 0; r < num_rows; ++r) {
      SCD_ASSIGN_OR_RETURN(uint64_t arity, reader.ReadVarint());
      Row row;
      row.reserve(arity);
      for (uint64_t c = 0; c < arity; ++c) {
        SCD_ASSIGN_OR_RETURN(Value value, Value::DecodeFrom(&reader));
        row.push_back(std::move(value));
      }
      // Rows for tables dropped since the log was written are skipped.
      if (table_result.ok()) {
        if (op == 1) {
          // A delete of a row that never reached a segment replays as a
          // no-op.
          Status status = (*table_result)->DeleteByPk(row[0]);
          if (!status.ok() && !status.IsNotFound()) return status;
        } else {
          SCD_RETURN_IF_ERROR((*table_result)->Insert(std::move(row)));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace scdwarf::nosql
