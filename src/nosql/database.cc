#include "nosql/database.h"

#include <cctype>
#include <filesystem>
#include <fstream>

namespace scdwarf::nosql {

namespace fs = std::filesystem;

namespace {

Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& bytes) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::IoError("short write to " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return Status::IoError("rename failed: " + ec.message());
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::IoError("short read from " + path);
  }
  return bytes;
}

/// Encodes a table or keyspace name safely into a file name.
std::string SanitizeName(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-') {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  return out;
}

}  // namespace

Result<Database> Database::Open(const std::string& data_dir) {
  if (data_dir.empty()) {
    return Status::InvalidArgument("data_dir must not be empty; "
                                   "use the default constructor for memory mode");
  }
  Database db;
  db.data_dir_ = data_dir;
  std::error_code ec;
  fs::create_directories(data_dir, ec);
  if (ec) return Status::IoError("cannot create " + data_dir + ": " + ec.message());

  // Load existing segments: <dir>/<keyspace>/<table>.cf
  for (const auto& ks_entry : fs::directory_iterator(data_dir)) {
    if (!ks_entry.is_directory()) continue;
    std::string keyspace = ks_entry.path().filename().string();
    db.keyspaces_[keyspace];  // ensure keyspace exists even if empty
    for (const auto& cf_entry : fs::directory_iterator(ks_entry.path())) {
      if (cf_entry.path().extension() != ".cf") continue;
      SCD_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                           ReadFile(cf_entry.path().string()));
      ByteReader reader(bytes);
      auto table = Table::Deserialize(&reader);
      if (!table.ok()) {
        return table.status().WithContext("loading " +
                                          cf_entry.path().string());
      }
      std::string name = (*table)->schema().name();
      db.keyspaces_[keyspace][name] = std::move(*table);
    }
  }
  SCD_RETURN_IF_ERROR(db.ReplayCommitLog());
  return db;
}

Status Database::CreateKeyspace(const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("empty keyspace name");
  if (keyspaces_.count(name) > 0) {
    return Status::AlreadyExists("keyspace '" + name + "' already exists");
  }
  keyspaces_[name];
  return Status::OK();
}

Status Database::CreateTable(const TableSchema& schema) {
  SCD_RETURN_IF_ERROR(schema.Validate());
  auto ks = keyspaces_.find(schema.keyspace());
  if (ks == keyspaces_.end()) {
    return Status::NotFound("keyspace '" + schema.keyspace() + "' does not exist");
  }
  if (ks->second.count(schema.name()) > 0) {
    return Status::AlreadyExists("table " + schema.QualifiedName() +
                                 " already exists");
  }
  ks->second[schema.name()] = std::make_unique<Table>(schema);
  return Status::OK();
}

Status Database::DropTable(const std::string& keyspace,
                           const std::string& table) {
  auto ks = keyspaces_.find(keyspace);
  if (ks == keyspaces_.end() || ks->second.erase(table) == 0) {
    return Status::NotFound("table " + keyspace + "." + table +
                            " does not exist");
  }
  if (!data_dir_.empty()) {
    std::error_code ec;
    fs::remove(SegmentPath(keyspace, table), ec);
  }
  return Status::OK();
}

Status Database::CreateIndex(const std::string& keyspace,
                             const std::string& table,
                             const std::string& column) {
  SCD_ASSIGN_OR_RETURN(Table * t, GetTable(keyspace, table));
  return t->CreateIndex(column);
}

Result<Table*> Database::GetTable(const std::string& keyspace,
                                  const std::string& table) {
  auto ks = keyspaces_.find(keyspace);
  if (ks == keyspaces_.end()) {
    return Status::NotFound("keyspace '" + keyspace + "' does not exist");
  }
  auto it = ks->second.find(table);
  if (it == ks->second.end()) {
    return Status::NotFound("table " + keyspace + "." + table +
                            " does not exist");
  }
  return it->second.get();
}

Result<const Table*> Database::GetTable(const std::string& keyspace,
                                        const std::string& table) const {
  auto* self = const_cast<Database*>(this);
  SCD_ASSIGN_OR_RETURN(Table * t, self->GetTable(keyspace, table));
  return static_cast<const Table*>(t);
}

Status Database::Insert(const std::string& keyspace, const std::string& table,
                        Row row) {
  SCD_ASSIGN_OR_RETURN(Table * t, GetTable(keyspace, table));
  if (!data_dir_.empty()) {
    SCD_RETURN_IF_ERROR(AppendToCommitLog(keyspace, table, {row}));
  }
  return t->Insert(std::move(row));
}

Status Database::BulkInsert(const std::string& keyspace,
                            const std::string& table, std::vector<Row> rows) {
  SCD_ASSIGN_OR_RETURN(Table * t, GetTable(keyspace, table));
  if (!data_dir_.empty()) {
    SCD_RETURN_IF_ERROR(AppendToCommitLog(keyspace, table, rows));
  }
  t->ReserveAdditional(rows.size());
  for (Row& row : rows) {
    SCD_RETURN_IF_ERROR(t->Insert(std::move(row)));
  }
  return Status::OK();
}

Status Database::Delete(const std::string& keyspace, const std::string& table,
                        const Value& key) {
  return BulkDelete(keyspace, table, {key});
}

Status Database::BulkDelete(const std::string& keyspace,
                            const std::string& table,
                            const std::vector<Value>& keys) {
  SCD_ASSIGN_OR_RETURN(Table * t, GetTable(keyspace, table));
  if (!data_dir_.empty()) {
    // Deletes are logged as single-value rows with the delete flag set.
    std::vector<Row> key_rows;
    key_rows.reserve(keys.size());
    for (const Value& key : keys) key_rows.push_back({key});
    SCD_RETURN_IF_ERROR(
        AppendToCommitLog(keyspace, table, key_rows, /*is_delete=*/true));
  }
  for (const Value& key : keys) {
    SCD_RETURN_IF_ERROR(t->DeleteByPk(key));
  }
  return Status::OK();
}

Status Database::Flush() {
  if (data_dir_.empty()) return Status::OK();
  for (const auto& [keyspace, tables] : keyspaces_) {
    std::error_code ec;
    fs::create_directories(fs::path(data_dir_) / SanitizeName(keyspace), ec);
    if (ec) return Status::IoError("cannot create keyspace dir: " + ec.message());
    for (const auto& [name, table] : tables) {
      ByteWriter writer;
      table->SerializeTo(&writer);
      SCD_RETURN_IF_ERROR(
          WriteFileAtomic(SegmentPath(keyspace, name), writer.data()));
    }
  }
  std::error_code ec;
  fs::remove(CommitLogPath(), ec);
  return Status::OK();
}

Result<uint64_t> Database::DiskSizeBytes() const {
  if (data_dir_.empty()) return uint64_t{0};
  uint64_t total = 0;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(data_dir_, ec);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_regular_file()) total += it->file_size();
  }
  if (ec) return Status::IoError("walking " + data_dir_ + ": " + ec.message());
  return total;
}

uint64_t Database::EstimateBytes() const {
  uint64_t total = 0;
  for (const auto& [keyspace, tables] : keyspaces_) {
    for (const auto& [name, table] : tables) {
      total += table->EstimateSegmentBytes();
    }
  }
  return total;
}

Result<std::vector<std::string>> Database::ListTables(
    const std::string& keyspace) const {
  auto ks = keyspaces_.find(keyspace);
  if (ks == keyspaces_.end()) {
    return Status::NotFound("keyspace '" + keyspace + "' does not exist");
  }
  std::vector<std::string> names;
  names.reserve(ks->second.size());
  for (const auto& [name, table] : ks->second) names.push_back(name);
  return names;
}

std::string Database::SegmentPath(const std::string& keyspace,
                                  const std::string& table) const {
  return (fs::path(data_dir_) / SanitizeName(keyspace) /
          (SanitizeName(table) + ".cf"))
      .string();
}

std::string Database::CommitLogPath() const {
  return (fs::path(data_dir_) / "commitlog.bin").string();
}

Status Database::AppendToCommitLog(const std::string& keyspace,
                                   const std::string& table,
                                   const std::vector<Row>& rows,
                                   bool is_delete) {
  ByteWriter writer;
  writer.PutU8(is_delete ? 1 : 0);
  writer.PutString(keyspace);
  writer.PutString(table);
  writer.PutVarint(rows.size());
  for (const Row& row : rows) {
    writer.PutVarint(row.size());
    for (const Value& value : row) value.EncodeTo(&writer);
  }
  std::ofstream out(CommitLogPath(), std::ios::binary | std::ios::app);
  if (!out) return Status::IoError("cannot open commit log");
  // Length-prefixed record so replay can find batch boundaries.
  ByteWriter framed;
  framed.PutU32(static_cast<uint32_t>(writer.size()));
  out.write(reinterpret_cast<const char*>(framed.data().data()),
            static_cast<std::streamsize>(framed.size()));
  out.write(reinterpret_cast<const char*>(writer.data().data()),
            static_cast<std::streamsize>(writer.size()));
  if (!out) return Status::IoError("short write to commit log");
  return Status::OK();
}

Status Database::ReplayCommitLog() {
  if (!fs::exists(CommitLogPath())) return Status::OK();
  SCD_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFile(CommitLogPath()));
  ByteReader reader(bytes);
  while (!reader.AtEnd()) {
    auto frame_size = reader.ReadU32();
    if (!frame_size.ok()) break;  // torn tail: stop replay
    if (reader.remaining() < *frame_size) break;
    SCD_ASSIGN_OR_RETURN(uint8_t op, reader.ReadU8());
    SCD_ASSIGN_OR_RETURN(std::string keyspace, reader.ReadString());
    SCD_ASSIGN_OR_RETURN(std::string table, reader.ReadString());
    SCD_ASSIGN_OR_RETURN(uint64_t num_rows, reader.ReadVarint());
    auto table_result = GetTable(keyspace, table);
    for (uint64_t r = 0; r < num_rows; ++r) {
      SCD_ASSIGN_OR_RETURN(uint64_t arity, reader.ReadVarint());
      Row row;
      row.reserve(arity);
      for (uint64_t c = 0; c < arity; ++c) {
        SCD_ASSIGN_OR_RETURN(Value value, Value::DecodeFrom(&reader));
        row.push_back(std::move(value));
      }
      // Rows for tables dropped since the log was written are skipped.
      if (table_result.ok()) {
        if (op == 1) {
          // A delete of a row that never reached a segment replays as a
          // no-op.
          Status status = (*table_result)->DeleteByPk(row[0]);
          if (!status.ok() && !status.IsNotFound()) return status;
        } else {
          SCD_RETURN_IF_ERROR((*table_result)->Insert(std::move(row)));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace scdwarf::nosql
