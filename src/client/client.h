/// \file client.h
/// \brief Client library for the scdwarf wire protocol: a single pooled
/// connection type (CubeClient) plus a thread-safe connection pool
/// (ClientPool) with bounded retries.
///
/// Design notes:
///  - Connections are lazy: a CubeClient connects on the first Call (with a
///    connect timeout via non-blocking connect + poll), then sets socket
///    send/receive timeouts so a hung server surfaces as a timed-out IoError
///    instead of a stuck thread.
///  - Any transport error closes the connection; the next Call reconnects.
///    Protocol-level errors (an "ok":false response) are NOT transport
///    errors — the frame arrived fine — and never close the socket.
///  - ClientPool::Call retries on a fresh connection up to max_retries
///    times. That is safe because every wire op is idempotent on the server:
///    queries are pure reads, query_open just allocates another session
///    (reaped by TTL if the response was lost), and load_snapshot rejects
///    replayed epochs.
///  - Every error message carries the endpoint ("... (peer 127.0.0.1:4321)"),
///    threaded through wire::ReadFull/WriteFull, so router retry logs name
///    the replica that failed.

#ifndef SCDWARF_CLIENT_CLIENT_H_
#define SCDWARF_CLIENT_CLIENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace scdwarf::client {

/// \brief A host:port pair. Only IPv4 literals and "localhost" are
/// supported — the fleet this targets is loopback / rack-local.
struct Endpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  std::string ToString() const { return host + ":" + std::to_string(port); }

  bool operator==(const Endpoint& other) const {
    return host == other.host && port == other.port;
  }
};

/// \brief Parses "host:port" (host may be omitted: ":9000" and "9000" both
/// mean 127.0.0.1). InvalidArgument on malformed input.
Result<Endpoint> ParseEndpoint(std::string_view text);

/// \brief Parses a comma-separated endpoint list ("host:port,host:port,...").
/// Empty segments are rejected.
Result<std::vector<Endpoint>> ParseEndpointList(std::string_view text);

/// \brief Client knobs. Defaults suit loopback fleets.
struct ClientOptions {
  int connect_timeout_ms = 2000;
  int io_timeout_ms = 5000;  ///< per-frame send/receive timeout
  size_t max_frame_bytes = 1 << 20;
  /// ClientPool::Call attempts = 1 + max_retries, each on a fresh or pooled
  /// connection. Retries fire only on transport errors (see file comment).
  int max_retries = 2;
  /// Idle connections the pool keeps per endpoint; extras are closed on
  /// release.
  size_t max_idle = 8;
  /// Offer the "bin1" binary wire format when connecting (a "hello" frame
  /// right after connect). When the server accepts, every Call encodes the
  /// request in binary and decodes the response back to the canonical JSON
  /// string — callers see byte-identical responses either way. A server
  /// that rejects the offer (or predates it) leaves the connection on JSON;
  /// negotiation failure is never a connection error.
  bool prefer_binary = false;
};

/// \brief One connection to one server. Not thread-safe — either own one per
/// thread or go through ClientPool.
class CubeClient {
 public:
  explicit CubeClient(Endpoint endpoint, ClientOptions options = {});
  ~CubeClient();

  CubeClient(const CubeClient&) = delete;
  CubeClient& operator=(const CubeClient&) = delete;

  /// \brief Sends one request payload and returns the response payload.
  /// Connects lazily; any transport error closes the connection (the next
  /// Call reconnects) and is returned with the peer address in the message.
  /// On a binary-negotiated connection the JSON request is transcoded to
  /// bin1 on the way out and the response decoded back to canonical JSON.
  Result<std::string> Call(std::string_view request_json);

  /// \brief Sends \p payload verbatim and returns the raw response payload,
  /// with no transcoding in either direction. The zero-copy drain path:
  /// benches and cursor-heavy callers pre-encode binary requests once and
  /// read binary pages via binwire::PeekCursorPage without JSON
  /// reconstruction. Same transport semantics as Call.
  Result<std::string> CallRaw(std::string_view payload);

  /// True when this connection negotiated the bin1 format.
  bool binary() const { return binary_; }

  /// True while a socket is open (it may still be dead; the next Call finds
  /// out).
  bool connected() const { return fd_ >= 0; }

  /// Closes the connection if open. Idempotent.
  void Close();

  const Endpoint& endpoint() const { return endpoint_; }

 private:
  Status Connect();
  /// Sends the hello frame offering bin1 and records the server's choice.
  /// Only transport failures are errors; a refusal just stays on JSON.
  Status Negotiate();

  Endpoint endpoint_;
  ClientOptions options_;
  std::string peer_;  ///< endpoint_.ToString(), for error annotation
  int fd_ = -1;
  bool binary_ = false;  ///< this connection negotiated bin1
};

/// \brief Thread-safe pool of CubeClient connections to one endpoint.
class ClientPool {
 public:
  explicit ClientPool(Endpoint endpoint, ClientOptions options = {});

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  /// \brief Acquire → Call → Release, retrying transport errors on a fresh
  /// connection up to options.max_retries times. Returns the last transport
  /// error when every attempt fails.
  Result<std::string> Call(std::string_view request_json);

  /// \brief Takes an idle connection, or builds a new one (still
  /// unconnected — the first Call connects).
  std::unique_ptr<CubeClient> Acquire();

  /// \brief Returns \p conn to the idle list; drops it instead when the pool
  /// already holds max_idle connections or the connection is closed.
  void Release(std::unique_ptr<CubeClient> conn);

  /// \brief Closes every idle connection (live checked-out connections are
  /// unaffected). The router calls this when it marks a replica unhealthy,
  /// so no stale socket to a dead process is ever reused.
  void DropIdle();

  const Endpoint& endpoint() const { return endpoint_; }

 private:
  Endpoint endpoint_;
  ClientOptions options_;
  std::mutex mu_;
  std::vector<std::unique_ptr<CubeClient>> idle_;
};

}  // namespace scdwarf::client

#endif  // SCDWARF_CLIENT_CLIENT_H_
