#include "client/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "json/json_parser.h"
#include "json/json_value.h"
#include "server/binwire.h"
#include "server/wire.h"

namespace scdwarf::client {

namespace {

Status Errno(const std::string& what, const std::string& peer) {
  return Status::IoError(what + ": " + std::strerror(errno) + " (peer " +
                         peer + ")");
}

}  // namespace

Result<Endpoint> ParseEndpoint(std::string_view text) {
  Endpoint endpoint;
  std::string_view port_text = text;
  size_t colon = text.rfind(':');
  if (colon != std::string_view::npos) {
    if (colon > 0) endpoint.host = std::string(text.substr(0, colon));
    port_text = text.substr(colon + 1);
  }
  if (port_text.empty()) {
    return Status::InvalidArgument("endpoint \"" + std::string(text) +
                                   "\" has no port");
  }
  uint32_t port = 0;
  for (char c : port_text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("endpoint \"" + std::string(text) +
                                     "\" has a non-numeric port");
    }
    port = port * 10 + static_cast<uint32_t>(c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("endpoint \"" + std::string(text) +
                                     "\" port out of range");
    }
  }
  if (port == 0) {
    return Status::InvalidArgument("endpoint \"" + std::string(text) +
                                   "\" port must be nonzero");
  }
  endpoint.port = static_cast<uint16_t>(port);
  return endpoint;
}

Result<std::vector<Endpoint>> ParseEndpointList(std::string_view text) {
  std::vector<Endpoint> endpoints;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    std::string_view part = text.substr(
        start, comma == std::string_view::npos ? text.size() - start
                                               : comma - start);
    SCD_ASSIGN_OR_RETURN(Endpoint endpoint, ParseEndpoint(part));
    endpoints.push_back(std::move(endpoint));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (endpoints.empty()) {
    return Status::InvalidArgument("empty endpoint list");
  }
  return endpoints;
}

CubeClient::CubeClient(Endpoint endpoint, ClientOptions options)
    : endpoint_(std::move(endpoint)),
      options_(options),
      peer_(endpoint_.ToString()) {}

CubeClient::~CubeClient() { Close(); }

void CubeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  binary_ = false;  // the format is per-connection; renegotiate on reconnect
}

Status CubeClient::Connect() {
  // Name resolution stays trivial on purpose: IPv4 literals plus the one
  // alias everyone actually uses. No getaddrinfo in the serving path.
  const char* host = endpoint_.host == "localhost" ? "127.0.0.1"
                                                   : endpoint_.host.c_str();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint_.port);
  if (::inet_pton(AF_INET, host, &addr.sin_addr) != 1) {
    return Status::InvalidArgument("endpoint host \"" + endpoint_.host +
                                   "\" is not an IPv4 literal");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return Errno("socket", peer_);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      Status status = Errno("connect", peer_);
      ::close(fd);
      return status;
    }
    // Non-blocking connect: poll for writability within the connect
    // timeout, then read SO_ERROR for the actual outcome.
    pollfd waiter{};
    waiter.fd = fd;
    waiter.events = POLLOUT;
    int ready = ::poll(&waiter, 1, options_.connect_timeout_ms);
    if (ready <= 0) {
      ::close(fd);
      if (ready == 0) {
        return Status::IoError("connect timed out after " +
                               std::to_string(options_.connect_timeout_ms) +
                               "ms (peer " + peer_ + ")");
      }
      return Errno("poll", peer_);
    }
    int error = 0;
    socklen_t error_len = sizeof(error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &error_len) != 0 ||
        error != 0) {
      ::close(fd);
      if (error != 0) errno = error;
      return Errno("connect", peer_);
    }
  }
  // Back to blocking with per-frame timeouts: a hung replica turns into a
  // timed-out frame read, which the pool treats as any other transport
  // error (close + retry elsewhere).
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  timeval io_timeout{};
  io_timeout.tv_sec = options_.io_timeout_ms / 1000;
  io_timeout.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &io_timeout, sizeof(io_timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &io_timeout, sizeof(io_timeout));
  int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  fd_ = fd;
  if (options_.prefer_binary) {
    Status negotiated = Negotiate();
    if (!negotiated.ok()) {
      Close();
      return negotiated;
    }
  }
  return Status::OK();
}

Status CubeClient::Negotiate() {
  static constexpr std::string_view kHelloFrame =
      "{\"op\":\"hello\",\"formats\":[\"json\",\"bin1\"]}";
  SCD_RETURN_IF_ERROR(server::WriteFrame(fd_, kHelloFrame, peer_));
  SCD_ASSIGN_OR_RETURN(
      std::string response,
      server::ReadFrame(fd_, options_.max_frame_bytes, peer_));
  // Anything but an explicit {"ok":true,...,"format":"bin1"} — an old server
  // rejecting the unknown op included — leaves the connection on JSON.
  Result<json::JsonValue> root = json::ParseJson(response);
  if (!root.ok()) return Status::OK();
  Result<json::JsonValue> format = root->Get("format");
  if (!format.ok()) return Status::OK();
  Result<std::string> chosen = format->AsString();
  binary_ = chosen.ok() && *chosen == "bin1";
  return Status::OK();
}

Result<std::string> CubeClient::CallRaw(std::string_view payload) {
  if (fd_ < 0) {
    SCD_RETURN_IF_ERROR(Connect());
  }
  Status written = server::WriteFrame(fd_, payload, peer_);
  if (!written.ok()) {
    Close();
    return written;
  }
  Result<std::string> response =
      server::ReadFrame(fd_, options_.max_frame_bytes, peer_);
  if (!response.ok()) Close();
  return response;
}

Result<std::string> CubeClient::Call(std::string_view request_json) {
  if (fd_ < 0) {
    SCD_RETURN_IF_ERROR(Connect());
  }
  if (!binary_) {
    return CallRaw(request_json);
  }
  // Binary connection: transcode the JSON request to bin1 and decode the
  // response back to the canonical JSON string, so callers are format-blind.
  // A request that fails to parse is forwarded as JSON — the server detects
  // the format per frame and answers with its normal JSON parse error.
  Result<server::QueryRequest> parsed = server::ParseRequest(request_json);
  if (!parsed.ok()) {
    return CallRaw(request_json);
  }
  Result<std::string> encoded = server::binwire::EncodeRequest(*parsed);
  if (!encoded.ok()) {
    return CallRaw(request_json);  // e.g. a hand-sent hello: JSON-only op
  }
  SCD_ASSIGN_OR_RETURN(std::string raw, CallRaw(*encoded));
  Result<std::string> decoded = server::binwire::DecodeResponse(raw);
  if (!decoded.ok()) {
    // A malformed response is a transport-level failure: the stream can no
    // longer be trusted, so drop the connection like any other I/O error.
    Close();
    return Status::IoError("binary response decode failed: " +
                           decoded.status().message() + " (peer " + peer_ +
                           ")");
  }
  return decoded;
}

ClientPool::ClientPool(Endpoint endpoint, ClientOptions options)
    : endpoint_(std::move(endpoint)), options_(options) {}

std::unique_ptr<CubeClient> ClientPool::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      std::unique_ptr<CubeClient> conn = std::move(idle_.back());
      idle_.pop_back();
      return conn;
    }
  }
  return std::make_unique<CubeClient>(endpoint_, options_);
}

void ClientPool::Release(std::unique_ptr<CubeClient> conn) {
  if (conn == nullptr || !conn->connected()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (idle_.size() >= options_.max_idle) return;  // drop: pool is full
  idle_.push_back(std::move(conn));
}

void ClientPool::DropIdle() {
  std::vector<std::unique_ptr<CubeClient>> doomed;
  std::lock_guard<std::mutex> lock(mu_);
  doomed.swap(idle_);
}

Result<std::string> ClientPool::Call(std::string_view request_json) {
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    std::unique_ptr<CubeClient> conn = Acquire();
    Result<std::string> response = conn->Call(request_json);
    if (response.ok()) {
      Release(std::move(conn));
      return response;
    }
    // Transport failure: the connection is already closed; retry on a fresh
    // one (safe — every wire op is idempotent server-side).
    last = response.status();
  }
  return last;
}

}  // namespace scdwarf::client
