/// \file parallel_apply.h
/// \brief Ordered apply lanes: one background worker per destination table
/// that applies staged row batches in FIFO order.
///
/// GenerateApplyChunks (parallel_rows.h) parallelizes row *generation* but
/// applies every chunk on the calling thread, so with several destination
/// tables the apply phase serializes behind one thread. An ApplyLane moves
/// the per-table application onto its own worker: the mapper pushes one
/// closure per (chunk, table) and each lane drains its queue in push order.
/// Because a single worker owns each table's batcher, rows reach every table
/// in exactly the serial order — segment bytes stay byte-identical to the
/// single-threaded apply — while different tables' inserts overlap. The
/// engines' per-table shard locks make the concurrent BulkInserts safe.
///
/// Error handling is sticky: the first failing task is recorded, later
/// pushes and queued tasks are skipped, and Finish() (or the destructor)
/// joins the worker and reports the error.

#ifndef SCDWARF_MAPPER_PARALLEL_APPLY_H_
#define SCDWARF_MAPPER_PARALLEL_APPLY_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "common/metrics.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace scdwarf::mapper {

namespace internal {

/// Lane instrumentation, shared across every lane (one gauge for the summed
/// queue depth rather than a per-table series — table names are unbounded).
inline metrics::Gauge* ApplyQueueDepthGauge() {
  static metrics::Gauge* const gauge = metrics::GlobalRegistry().GetGauge(
      "mapper_apply_queue_depth", {},
      "row batches queued across all apply lanes, not yet applied");
  return gauge;
}

inline metrics::Counter* ApplyTasksCounter() {
  static metrics::Counter* const counter = metrics::GlobalRegistry().GetCounter(
      "mapper_apply_tasks_total", {},
      "apply-lane tasks executed (chunk x table applications)");
  return counter;
}

inline FixedBucketHistogram* ApplyTaskHistogram() {
  static FixedBucketHistogram* const hist =
      metrics::GlobalRegistry().GetHistogram(
          "mapper_apply_task_us", {},
          "per-task apply latency on a lane worker (us)");
  return hist;
}

}  // namespace internal

/// \brief A FIFO queue of apply tasks drained by one background worker.
class ApplyLane {
 public:
  /// \p capacity bounds the queue: Push blocks when the worker falls this
  /// many tasks behind, back-pressuring generation against the engine.
  explicit ApplyLane(std::string name, size_t capacity = 8)
      : name_(std::move(name)),
        capacity_(capacity),
        worker_([this] { Loop(); }) {}

  ~ApplyLane() { (void)Finish(); }

  ApplyLane(const ApplyLane&) = delete;
  ApplyLane& operator=(const ApplyLane&) = delete;

  /// Enqueues \p task, blocking while the queue is full. Returns the sticky
  /// error without enqueueing once any task has failed.
  Status Push(std::function<Status()> task) {
    std::unique_lock<std::mutex> lock(mu_);
    space_.wait(lock, [this] {
      return queue_.size() < capacity_ || !error_.ok() || finished_;
    });
    if (!error_.ok()) return error_;
    if (finished_) {
      return Status::FailedPrecondition("lane '" + name_ + "' is finished");
    }
    queue_.push_back(std::move(task));
    internal::ApplyQueueDepthGauge()->Add(1);
    wake_.notify_one();
    return Status::OK();
  }

  /// Drains the queue, joins the worker, and returns the first task error
  /// (OK when every task succeeded). Idempotent.
  Status Finish() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      finished_ = true;
    }
    wake_.notify_all();
    space_.notify_all();
    if (worker_.joinable()) worker_.join();
    std::lock_guard<std::mutex> lock(mu_);
    return error_;
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      wake_.wait(lock, [this] { return finished_ || !queue_.empty(); });
      if (queue_.empty()) return;  // finished, and fully drained
      std::function<Status()> task = std::move(queue_.front());
      queue_.pop_front();
      internal::ApplyQueueDepthGauge()->Sub(1);
      space_.notify_all();
      if (!error_.ok()) continue;  // sticky error: skip remaining tasks
      lock.unlock();
      Status status;
      {
        trace::ScopedSpan span("mapper.apply_task");
        Stopwatch watch;
        status = task();
        internal::ApplyTaskHistogram()->Record(watch.ElapsedMicros());
        internal::ApplyTasksCounter()->Increment();
      }
      lock.lock();
      if (!status.ok() && error_.ok()) {
        error_ = status.WithContext("apply lane '" + name_ + "'");
        space_.notify_all();  // release any producer blocked on capacity
      }
    }
  }

  std::string name_;
  size_t capacity_;
  std::mutex mu_;
  std::condition_variable wake_;   ///< worker: task available or finished
  std::condition_variable space_;  ///< producers: queue has room (or error)
  std::deque<std::function<Status()>> queue_;
  Status error_;
  bool finished_ = false;
  std::thread worker_;  // last member: starts after the state above exists
};

}  // namespace scdwarf::mapper

#endif  // SCDWARF_MAPPER_PARALLEL_APPLY_H_
