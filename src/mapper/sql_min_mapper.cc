#include "mapper/sql_min_mapper.h"

#include <algorithm>

#include "common/parallel.h"
#include "mapper/id_map.h"
#include "mapper/parallel_rows.h"
#include "mapper/row_batcher.h"
#include "mapper/stored_cube.h"

namespace scdwarf::mapper {

using sql::SqlRow;
using sql::SqlTableDef;

Status SqlMinMapper::EnsureSchema() {
  if (!engine_->HasDatabase(database_)) {
    SCD_RETURN_IF_ERROR(engine_->CreateDatabase(database_));
  }
  auto create_if_missing = [this](const SqlTableDef& def) -> Status {
    Status status = engine_->CreateTable(def);
    if (status.IsAlreadyExists()) return Status::OK();
    return status;
  };
  SCD_RETURN_IF_ERROR(create_if_missing(SqlTableDef(
      database_, kCubeTable,
      {{"id", DataType::kInt, false},
       {"node_count", DataType::kInt},
       {"cell_count", DataType::kInt},
       {"size_as_mb", DataType::kInt}},
      "id")));
  SCD_RETURN_IF_ERROR(create_if_missing(SqlTableDef(
      database_, kCellTable,
      {{"id", DataType::kInt, false},
       {"item_name", DataType::kText},
       {"measure", DataType::kInt},
       {"leaf", DataType::kBool},
       {"root", DataType::kBool},
       {"cubeid", DataType::kInt},
       {"parentnodeid", DataType::kInt},
       {"childnodeid", DataType::kInt}},
      "id")));
  SCD_RETURN_IF_ERROR(create_if_missing(SqlTableDef(
      database_, kMetaTable,
      {{"id", DataType::kInt, false},
       {"cube_id", DataType::kInt},
       {"kind", DataType::kText},
       {"idx", DataType::kInt},
       {"value", DataType::kText}},
      "id")));
  return Status::OK();
}

Result<int64_t> SqlMinMapper::NextId(const std::string& table) const {
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const sql::HeapTable> t,
                       static_cast<const sql::SqlEngine*>(engine_)->GetTable(
                           database_, table));
  auto rows = t->ScanAll();
  if (rows.empty()) return int64_t{0};
  SCD_ASSIGN_OR_RETURN(int64_t max_id, (*rows.back())[0].AsInt());
  return max_id + 1;
}

Result<int64_t> SqlMinMapper::Store(const dwarf::DwarfCube& cube) {
  SCD_RETURN_IF_ERROR(EnsureSchema());
  SCD_RETURN_IF_ERROR(ValidateNoReservedKeys(cube));
  SCD_ASSIGN_OR_RETURN(int64_t cube_id, NextId(kCubeTable));
  SCD_ASSIGN_OR_RETURN(int64_t node_base, NextId(kCellTable));
  CubeIdMap ids = AssignIds(cube, node_base, node_base + cube.num_nodes());

  RowBatcher<sql::SqlEngine> cell_batch(engine_, database_, kCellTable);
  // Cell rows are generated on worker threads in node chunks and applied
  // here in chunk order — the row sequence matches the serial one exactly.
  auto generate = [&](size_t begin, size_t end) {
    std::vector<SqlRow> out;
    for (size_t i = begin; i < end; ++i) {
      dwarf::NodeId node_id = ids.visit_order[i];
      const dwarf::NodeView node = cube.node(node_id);
      bool leaf = cube.IsLeafLevel(node.level);
      bool is_root = node_id == cube.root();
      for (size_t c = 0; c < node.cells.size(); ++c) {
        const dwarf::DwarfCell& cell = node.cells[c];
        const std::string& key =
            cube.dictionary(node.level).DecodeUnchecked(cell.key);
        out.push_back(
            {Value::Int(ids.cell_ids[node_id][c]), Value::Text(key),
             Value::Int(leaf ? cell.measure : 0), Value::Bool(leaf),
             Value::Bool(is_root), Value::Int(cube_id),
             Value::Int(ids.node_ids[node_id]),
             leaf ? Value::Null() : Value::Int(ids.node_ids[cell.child])});
      }
      out.push_back(
          {Value::Int(ids.all_cell_ids[node_id]), Value::Text(kAllCellKey),
           Value::Int(leaf ? node.all_measure : 0), Value::Bool(leaf),
           Value::Bool(is_root), Value::Int(cube_id),
           Value::Int(ids.node_ids[node_id]),
           leaf ? Value::Null() : Value::Int(ids.node_ids[node.all_child])});
    }
    return out;
  };
  auto apply = [&](std::vector<SqlRow> rows) -> Status {
    for (SqlRow& row : rows) {
      SCD_RETURN_IF_ERROR(cell_batch.Add(std::move(row)));
    }
    return Status::OK();
  };
  SCD_RETURN_IF_ERROR(GenerateApplyChunks<std::vector<SqlRow>>(
      ResolveThreadCount(num_threads_), ids.visit_order.size(),
      kDefaultRowChunkItems, generate, apply));
  SCD_RETURN_IF_ERROR(cell_batch.Flush());

  SCD_RETURN_IF_ERROR(engine_->BulkInsert(
      database_, kCubeTable,
      {{Value::Int(cube_id), Value::Int(static_cast<int64_t>(cube.num_nodes())),
        Value::Int(static_cast<int64_t>(cell_batch.total())), Value::Int(0)}}));

  SCD_ASSIGN_OR_RETURN(int64_t meta_base, NextId(kMetaTable));
  std::vector<SqlRow> meta_rows;
  for (const MetaRow& row : MetaToRows(CubeMeta::FromSchema(cube.schema()))) {
    meta_rows.push_back({Value::Int(meta_base++), Value::Int(cube_id),
                         Value::Text(row.kind), Value::Int(row.idx),
                         Value::Text(row.value)});
  }
  SCD_RETURN_IF_ERROR(
      engine_->BulkInsert(database_, kMetaTable, std::move(meta_rows)));

  SCD_RETURN_IF_ERROR(engine_->Flush());
  SCD_ASSIGN_OR_RETURN(uint64_t disk_bytes, engine_->DiskSizeBytes());
  uint64_t size_bytes =
      engine_->data_dir().empty() ? engine_->EstimateBytes() : disk_bytes;
  SCD_ASSIGN_OR_RETURN(int64_t size_meta_id, NextId(kMetaTable));
  SCD_RETURN_IF_ERROR(engine_->BulkInsert(
      database_, kMetaTable,
      {{Value::Int(size_meta_id), Value::Int(cube_id), Value::Text("size_mb"),
        Value::Int(0), Value::Text(std::to_string(size_bytes >> 20))}}));
  return cube_id;
}

Status SqlMinMapper::DeleteCube(int64_t cube_id) {
  const sql::SqlEngine* engine = engine_;
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const sql::HeapTable> cube_table,
                       engine->GetTable(database_, kCubeTable));
  SCD_RETURN_IF_ERROR(cube_table->GetByPk(Value::Int(cube_id)).status());
  auto delete_matching = [this, engine](const char* table, const char* column,
                                        int64_t id) -> Status {
    SCD_ASSIGN_OR_RETURN(std::shared_ptr<const sql::HeapTable> t,
                         engine->GetTable(database_, table));
    SCD_ASSIGN_OR_RETURN(std::vector<const sql::SqlRow*> rows,
                         t->SelectEq(column, Value::Int(id)));
    std::vector<Value> keys;
    keys.reserve(rows.size());
    for (const sql::SqlRow* row : rows) keys.push_back((*row)[0]);
    return engine_->BulkDelete(database_, table, keys);
  };
  SCD_RETURN_IF_ERROR(delete_matching(kCellTable, "cubeid", cube_id));
  SCD_RETURN_IF_ERROR(delete_matching(kMetaTable, "cube_id", cube_id));
  return engine_->Delete(database_, kCubeTable, Value::Int(cube_id));
}

Result<dwarf::DwarfCube> SqlMinMapper::Load(int64_t cube_id) const {
  const sql::SqlEngine* engine = engine_;
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const sql::HeapTable> cube_table,
                       engine->GetTable(database_, kCubeTable));
  SCD_RETURN_IF_ERROR(cube_table->GetByPk(Value::Int(cube_id)).status());

  StoredCube stored;
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const sql::HeapTable> meta_table,
                       engine->GetTable(database_, kMetaTable));
  std::vector<MetaRow> meta_rows;
  SCD_ASSIGN_OR_RETURN(std::vector<const SqlRow*> meta_matches,
                       meta_table->SelectEq("cube_id", Value::Int(cube_id)));
  for (const SqlRow* row : meta_matches) {
    MetaRow meta;
    SCD_ASSIGN_OR_RETURN(meta.kind, (*row)[2].AsText());
    if (meta.kind == "size_mb") continue;
    SCD_ASSIGN_OR_RETURN(meta.idx, (*row)[3].AsInt());
    SCD_ASSIGN_OR_RETURN(meta.value, (*row)[4].AsText());
    meta_rows.push_back(std::move(meta));
  }
  SCD_ASSIGN_OR_RETURN(stored.meta, MetaFromRows(meta_rows));

  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const sql::HeapTable> cell_table,
                       engine->GetTable(database_, kCellTable));
  SCD_ASSIGN_OR_RETURN(std::vector<const SqlRow*> cell_matches,
                       cell_table->SelectEq("cubeid", Value::Int(cube_id)));
  stored.entry_node_id = -1;
  for (const SqlRow* row : cell_matches) {
    StoredCell cell;
    SCD_ASSIGN_OR_RETURN(cell.id, (*row)[0].AsInt());
    SCD_ASSIGN_OR_RETURN(cell.key, (*row)[1].AsText());
    SCD_ASSIGN_OR_RETURN(cell.measure, (*row)[2].AsInt());
    SCD_ASSIGN_OR_RETURN(cell.leaf, (*row)[3].AsBool());
    SCD_ASSIGN_OR_RETURN(bool is_root, (*row)[4].AsBool());
    SCD_ASSIGN_OR_RETURN(cell.parent_node, (*row)[6].AsInt());
    if ((*row)[7].is_null()) {
      cell.pointer_node = -1;
    } else {
      SCD_ASSIGN_OR_RETURN(cell.pointer_node, (*row)[7].AsInt());
    }
    if (is_root) {
      if (stored.entry_node_id >= 0 &&
          stored.entry_node_id != cell.parent_node) {
        return Status::ParseError("cube " + std::to_string(cube_id) +
                                  " has conflicting root markers");
      }
      stored.entry_node_id = cell.parent_node;
    }
    stored.cells.push_back(std::move(cell));
  }
  if (!stored.cells.empty() && stored.entry_node_id < 0) {
    return Status::ParseError("cube " + std::to_string(cube_id) +
                              " has no root cells");
  }
  return RebuildCube(stored);
}

}  // namespace scdwarf::mapper
