/// \file sql_dwarf_mapper.h
/// \brief The MySQL-DWARF comparison schema (Fig. 4): a fully relational
/// DWARF with DWARF_CUBE, DWARF_NODE, DWARF_CELL plus the NODE_CHILDREN and
/// CELL_CHILDREN join tables. "Nodes can contain multiple cells and multiple
/// cells can point to the same node" — relations MySQL cannot store in a set
/// column, so every node-cell and cell-node edge becomes its own row; that
/// row explosion is what Table 4 measures.

#ifndef SCDWARF_MAPPER_SQL_DWARF_MAPPER_H_
#define SCDWARF_MAPPER_SQL_DWARF_MAPPER_H_

#include <string>

#include "dwarf/dwarf_cube.h"
#include "sql/engine.h"

namespace scdwarf::mapper {

/// \brief Row counters reported by a Store() call.
struct SqlDwarfStoreStats {
  uint64_t node_rows = 0;
  uint64_t cell_rows = 0;
  uint64_t node_children_rows = 0;
  uint64_t cell_children_rows = 0;
};

/// \brief DWARF <-> MySQL-DWARF (Fig. 4) mapping.
class SqlDwarfMapper {
 public:
  SqlDwarfMapper(sql::SqlEngine* engine, std::string database)
      : engine_(engine), database_(std::move(database)) {}

  /// Threads for Store()'s row serialization: 0 = auto (SCDWARF_THREADS env
  /// override, else hardware_concurrency), 1 = serial. Rows are generated in
  /// parallel but applied in order — edge-table ids come from per-chunk
  /// prefix counts — so the stored bytes are identical for any value.
  void set_num_threads(int num_threads) { num_threads_ = num_threads; }

  /// Creates the five Fig. 4 tables (plus metadata) if missing.
  Status EnsureSchema();

  Result<int64_t> Store(const dwarf::DwarfCube& cube,
                        SqlDwarfStoreStats* stats = nullptr);

  Result<dwarf::DwarfCube> Load(int64_t cube_id) const;

  /// Removes every row of the stored cube across all five tables.
  Status DeleteCube(int64_t cube_id);

  static constexpr const char* kCubeTable = "dwarf_cube";
  static constexpr const char* kNodeTable = "dwarf_node";
  static constexpr const char* kCellTable = "dwarf_cell";
  static constexpr const char* kNodeChildrenTable = "node_children";
  static constexpr const char* kCellChildrenTable = "cell_children";
  static constexpr const char* kMetaTable = "dwarf_metadata";

 private:
  Result<int64_t> NextId(const std::string& table) const;

  sql::SqlEngine* engine_;
  std::string database_;
  int num_threads_ = 0;
};

}  // namespace scdwarf::mapper

#endif  // SCDWARF_MAPPER_SQL_DWARF_MAPPER_H_
