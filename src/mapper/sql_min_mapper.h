/// \file sql_min_mapper.h
/// \brief The MySQL-Min comparison schema: the NoSQL-Min layout (Table 3)
/// expressed relationally — "designed to test how well MySQL performs using
/// a schema without joins" (§5). Two tables, no node rows, no secondary
/// indexes; rebuilds pay for it with full scans.

#ifndef SCDWARF_MAPPER_SQL_MIN_MAPPER_H_
#define SCDWARF_MAPPER_SQL_MIN_MAPPER_H_

#include <string>

#include "dwarf/dwarf_cube.h"
#include "sql/engine.h"

namespace scdwarf::mapper {

/// \brief DWARF <-> MySQL-Min mapping.
class SqlMinMapper {
 public:
  SqlMinMapper(sql::SqlEngine* engine, std::string database)
      : engine_(engine), database_(std::move(database)) {}

  /// Threads for Store()'s row serialization: 0 = auto (SCDWARF_THREADS env
  /// override, else hardware_concurrency), 1 = serial. Rows are generated in
  /// parallel but applied in order, so the stored bytes are identical for
  /// any value.
  void set_num_threads(int num_threads) { num_threads_ = num_threads; }

  Status EnsureSchema();
  Result<int64_t> Store(const dwarf::DwarfCube& cube);
  Result<dwarf::DwarfCube> Load(int64_t cube_id) const;

  /// Removes every row of the stored cube.
  Status DeleteCube(int64_t cube_id);

  static constexpr const char* kCubeTable = "dwarf_cube";
  static constexpr const char* kCellTable = "dwarf_cell";
  static constexpr const char* kMetaTable = "dwarf_metadata";

 private:
  Result<int64_t> NextId(const std::string& table) const;

  sql::SqlEngine* engine_;
  std::string database_;
  int num_threads_ = 0;
};

}  // namespace scdwarf::mapper

#endif  // SCDWARF_MAPPER_SQL_MIN_MAPPER_H_
