#include "mapper/nosql_min_mapper.h"

#include <algorithm>

#include "common/parallel.h"
#include "mapper/id_map.h"
#include "mapper/parallel_rows.h"
#include "mapper/row_batcher.h"
#include "mapper/stored_cube.h"

namespace scdwarf::mapper {

using scdwarf::DataType;
using nosql::Row;
using nosql::Table;
using nosql::TableSchema;
using scdwarf::Value;

Status NoSqlMinMapper::EnsureSchema() {
  if (!db_->HasKeyspace(keyspace_)) {
    SCD_RETURN_IF_ERROR(db_->CreateKeyspace(keyspace_));
  }
  auto create_if_missing = [this](TableSchema schema) -> Status {
    Status status = db_->CreateTable(schema);
    if (status.IsAlreadyExists()) return Status::OK();
    return status;
  };
  SCD_RETURN_IF_ERROR(create_if_missing(TableSchema(
      keyspace_, kCubeCf,
      {{"id", DataType::kInt},
       {"node_count", DataType::kInt},
       {"cell_count", DataType::kInt},
       {"size_as_mb", DataType::kInt}},
      "id")));
  // Table 3's DWARF_Cell, plus the measure column the text implies (cells
  // carry the leaf aggregates that make node rows unnecessary).
  TableSchema cell_schema(keyspace_, kCellCf,
                          {{"id", DataType::kInt},
                           {"item_name", DataType::kText},
                           {"measure", DataType::kInt},
                           {"leaf", DataType::kBool},
                           {"root", DataType::kBool},
                           {"cubeid", DataType::kInt},
                           {"parentnodeid", DataType::kInt},
                           {"childnodeid", DataType::kInt}},
                          "id");
  Status status = db_->CreateTable(cell_schema);
  if (!status.ok() && !status.IsAlreadyExists()) return status;
  if (status.ok() && options_.create_secondary_indexes) {
    // "the absence of a DWARF Node table ... necessitates the addition of
    // two secondary indexes on the DWARF Cell table" (§5.1).
    SCD_RETURN_IF_ERROR(db_->CreateIndex(keyspace_, kCellCf, "parentnodeid"));
    SCD_RETURN_IF_ERROR(db_->CreateIndex(keyspace_, kCellCf, "childnodeid"));
  }
  SCD_RETURN_IF_ERROR(create_if_missing(TableSchema(
      keyspace_, kMetaCf,
      {{"id", DataType::kInt},
       {"cube_id", DataType::kInt},
       {"kind", DataType::kText},
       {"idx", DataType::kInt},
       {"value", DataType::kText}},
      "id")));
  return Status::OK();
}

Result<int64_t> NoSqlMinMapper::NextId(const std::string& table) const {
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> t,
                       static_cast<const nosql::Database*>(db_)->GetTable(
                           keyspace_, table));
  int64_t max_id = -1;
  for (const Row* row : t->ScanAll()) {
    SCD_ASSIGN_OR_RETURN(int64_t id, (*row)[0].AsInt());
    max_id = std::max(max_id, id);
  }
  return max_id + 1;
}

Result<int64_t> NoSqlMinMapper::Store(const dwarf::DwarfCube& cube) {
  SCD_RETURN_IF_ERROR(EnsureSchema());
  SCD_RETURN_IF_ERROR(ValidateNoReservedKeys(cube));
  SCD_ASSIGN_OR_RETURN(int64_t cube_id, NextId(kCubeCf));
  SCD_ASSIGN_OR_RETURN(int64_t node_base, NextId(kCellCf));
  // Node ids never materialize as rows but must not collide with other
  // cubes' ids within the shared cell family id space; cells and nodes draw
  // from one counter here.
  CubeIdMap ids = AssignIds(cube, node_base, node_base + cube.num_nodes());

  RowBatcher<nosql::Database> cell_batch(db_, keyspace_, kCellCf);
  // Cell rows are generated on worker threads in node chunks and applied
  // here in chunk order — the row sequence matches the serial one exactly.
  auto generate = [&](size_t begin, size_t end) {
    std::vector<Row> out;
    for (size_t i = begin; i < end; ++i) {
      dwarf::NodeId node_id = ids.visit_order[i];
      const dwarf::NodeView node = cube.node(node_id);
      bool leaf = cube.IsLeafLevel(node.level);
      bool is_root = node_id == cube.root();
      for (size_t c = 0; c < node.cells.size(); ++c) {
        const dwarf::DwarfCell& cell = node.cells[c];
        const std::string& key =
            cube.dictionary(node.level).DecodeUnchecked(cell.key);
        out.push_back(
            {Value::Int(ids.cell_ids[node_id][c]), Value::Text(key),
             Value::Int(leaf ? cell.measure : 0), Value::Bool(leaf),
             Value::Bool(is_root), Value::Int(cube_id),
             Value::Int(ids.node_ids[node_id]),
             leaf ? Value::Null() : Value::Int(ids.node_ids[cell.child])});
      }
      out.push_back(
          {Value::Int(ids.all_cell_ids[node_id]), Value::Text(kAllCellKey),
           Value::Int(leaf ? node.all_measure : 0), Value::Bool(leaf),
           Value::Bool(is_root), Value::Int(cube_id),
           Value::Int(ids.node_ids[node_id]),
           leaf ? Value::Null() : Value::Int(ids.node_ids[node.all_child])});
    }
    return out;
  };
  auto apply = [&](std::vector<Row> rows) -> Status {
    for (Row& row : rows) {
      SCD_RETURN_IF_ERROR(cell_batch.Add(std::move(row)));
    }
    return Status::OK();
  };
  SCD_RETURN_IF_ERROR(GenerateApplyChunks<std::vector<Row>>(
      ResolveThreadCount(options_.num_threads), ids.visit_order.size(),
      kDefaultRowChunkItems, generate, apply));
  SCD_RETURN_IF_ERROR(cell_batch.Flush());

  Row cube_row = {Value::Int(cube_id),
                  Value::Int(static_cast<int64_t>(cube.num_nodes())),
                  Value::Int(static_cast<int64_t>(cell_batch.total())),
                  Value::Int(0)};
  SCD_RETURN_IF_ERROR(db_->BulkInsert(keyspace_, kCubeCf, {cube_row}));

  SCD_ASSIGN_OR_RETURN(int64_t meta_base, NextId(kMetaCf));
  std::vector<Row> meta_rows;
  for (const MetaRow& row : MetaToRows(CubeMeta::FromSchema(cube.schema()))) {
    meta_rows.push_back({Value::Int(meta_base++), Value::Int(cube_id),
                         Value::Text(row.kind), Value::Int(row.idx),
                         Value::Text(row.value)});
  }
  SCD_RETURN_IF_ERROR(db_->BulkInsert(keyspace_, kMetaCf, std::move(meta_rows)));

  SCD_RETURN_IF_ERROR(db_->Flush());
  SCD_ASSIGN_OR_RETURN(uint64_t disk_bytes, db_->DiskSizeBytes());
  uint64_t size_bytes = db_->data_dir().empty() ? db_->EstimateBytes()
                                                : disk_bytes;
  cube_row[3] = Value::Int(static_cast<int64_t>(size_bytes >> 20));
  SCD_RETURN_IF_ERROR(db_->Insert(keyspace_, kCubeCf, cube_row));
  return cube_id;
}

Status NoSqlMinMapper::DeleteCube(int64_t cube_id) {
  const nosql::Database* db = db_;
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> cube_cf, db->GetTable(keyspace_, kCubeCf));
  SCD_RETURN_IF_ERROR(cube_cf->GetByPk(Value::Int(cube_id)).status());
  auto delete_matching = [this, db](const char* table, const char* column,
                                    int64_t id) -> Status {
    SCD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> t, db->GetTable(keyspace_, table));
    SCD_ASSIGN_OR_RETURN(std::vector<const Row*> rows,
                         t->SelectEq(column, Value::Int(id),
                                     /*allow_filtering=*/true));
    std::vector<Value> keys;
    keys.reserve(rows.size());
    for (const Row* row : rows) keys.push_back((*row)[0]);
    return db_->BulkDelete(keyspace_, table, keys);
  };
  SCD_RETURN_IF_ERROR(delete_matching(kCellCf, "cubeid", cube_id));
  SCD_RETURN_IF_ERROR(delete_matching(kMetaCf, "cube_id", cube_id));
  return db_->Delete(keyspace_, kCubeCf, Value::Int(cube_id));
}

Result<dwarf::DwarfCube> NoSqlMinMapper::Load(int64_t cube_id) const {
  const nosql::Database* db = db_;
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> cube_cf, db->GetTable(keyspace_, kCubeCf));
  SCD_RETURN_IF_ERROR(cube_cf->GetByPk(Value::Int(cube_id)).status());

  StoredCube stored;
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> meta_cf, db->GetTable(keyspace_, kMetaCf));
  std::vector<MetaRow> meta_rows;
  SCD_ASSIGN_OR_RETURN(std::vector<const Row*> meta_matches,
                       meta_cf->SelectEq("cube_id", Value::Int(cube_id),
                                         /*allow_filtering=*/true));
  for (const Row* row : meta_matches) {
    MetaRow meta;
    SCD_ASSIGN_OR_RETURN(meta.kind, (*row)[2].AsText());
    SCD_ASSIGN_OR_RETURN(meta.idx, (*row)[3].AsInt());
    SCD_ASSIGN_OR_RETURN(meta.value, (*row)[4].AsText());
    meta_rows.push_back(std::move(meta));
  }
  SCD_ASSIGN_OR_RETURN(stored.meta, MetaFromRows(meta_rows));

  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> cell_cf, db->GetTable(keyspace_, kCellCf));
  SCD_ASSIGN_OR_RETURN(std::vector<const Row*> cell_matches,
                       cell_cf->SelectEq("cubeid", Value::Int(cube_id),
                                         /*allow_filtering=*/true));
  stored.entry_node_id = -1;
  for (const Row* row : cell_matches) {
    StoredCell cell;
    SCD_ASSIGN_OR_RETURN(cell.id, (*row)[0].AsInt());
    SCD_ASSIGN_OR_RETURN(cell.key, (*row)[1].AsText());
    SCD_ASSIGN_OR_RETURN(cell.measure, (*row)[2].AsInt());
    SCD_ASSIGN_OR_RETURN(cell.leaf, (*row)[3].AsBool());
    SCD_ASSIGN_OR_RETURN(bool is_root, (*row)[4].AsBool());
    SCD_ASSIGN_OR_RETURN(cell.parent_node, (*row)[6].AsInt());
    if ((*row)[7].is_null()) {
      cell.pointer_node = -1;
    } else {
      SCD_ASSIGN_OR_RETURN(cell.pointer_node, (*row)[7].AsInt());
    }
    if (is_root) {
      if (stored.entry_node_id >= 0 &&
          stored.entry_node_id != cell.parent_node) {
        return Status::ParseError("cube " + std::to_string(cube_id) +
                                  " has conflicting root markers");
      }
      stored.entry_node_id = cell.parent_node;
    }
    stored.cells.push_back(std::move(cell));
  }
  if (!stored.cells.empty() && stored.entry_node_id < 0) {
    return Status::ParseError("cube " + std::to_string(cube_id) +
                              " has no root cells");
  }
  return RebuildCube(stored);
}

}  // namespace scdwarf::mapper
