#include "mapper/nosql_dwarf_mapper.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "mapper/id_map.h"
#include "mapper/parallel_apply.h"
#include "mapper/parallel_rows.h"
#include "mapper/row_batcher.h"
#include "mapper/stored_cube.h"
#include "nosql/cql.h"

namespace scdwarf::mapper {

using scdwarf::DataType;
using nosql::Row;
using nosql::Table;
using nosql::TableSchema;
using scdwarf::Value;

Status NoSqlDwarfMapper::EnsureSchema() {
  if (!db_->HasKeyspace(keyspace_)) {
    SCD_RETURN_IF_ERROR(db_->CreateKeyspace(keyspace_));
  }
  auto create_if_missing = [this](const TableSchema& schema) -> Status {
    Status status = db_->CreateTable(schema);
    if (status.IsAlreadyExists()) return Status::OK();
    return status;
  };
  // Table 1-A.
  SCD_RETURN_IF_ERROR(create_if_missing(TableSchema(
      keyspace_, kSchemaCf,
      {{"id", DataType::kInt},
       {"node_count", DataType::kInt},
       {"cell_count", DataType::kInt},
       {"size_as_mb", DataType::kInt},
       {"entry_node_id", DataType::kInt},
       {"is_cube", DataType::kBool}},
      "id")));
  // Table 1-B.
  SCD_RETURN_IF_ERROR(create_if_missing(TableSchema(
      keyspace_, kNodeCf,
      {{"id", DataType::kInt},
       {"parentids", DataType::kIntSet},
       {"childrenids", DataType::kIntSet},
       {"root", DataType::kBool},
       {"schema_id", DataType::kInt}},
      "id")));
  // Table 1-C.
  SCD_RETURN_IF_ERROR(create_if_missing(TableSchema(
      keyspace_, kCellCf,
      {{"id", DataType::kInt},
       {"key", DataType::kText},
       {"measure", DataType::kInt},
       {"parentnode", DataType::kInt},
       {"pointernode", DataType::kInt},
       {"leaf", DataType::kBool},
       {"schema_id", DataType::kInt},
       {"dimension_table_name", DataType::kText}},
      "id")));
  // Metadata extension (see stored_cube.h).
  SCD_RETURN_IF_ERROR(create_if_missing(TableSchema(
      keyspace_, kMetaCf,
      {{"id", DataType::kInt},
       {"cube_id", DataType::kInt},
       {"kind", DataType::kText},
       {"idx", DataType::kInt},
       {"value", DataType::kText}},
      "id")));
  return Status::OK();
}

Result<int64_t> NoSqlDwarfMapper::NextId(const std::string& table,
                                         size_t id_column) const {
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> t,
                       static_cast<const nosql::Database*>(db_)->GetTable(
                           keyspace_, table));
  int64_t max_id = -1;
  for (const Row* row : t->ScanAll()) {
    SCD_ASSIGN_OR_RETURN(int64_t id, (*row)[id_column].AsInt());
    max_id = std::max(max_id, id);
  }
  return max_id + 1;
}

Result<int64_t> NoSqlDwarfMapper::Store(const dwarf::DwarfCube& cube,
                                        NoSqlDwarfMapperOptions options,
                                        NoSqlStoreStats* stats) {
  SCD_RETURN_IF_ERROR(EnsureSchema());
  SCD_RETURN_IF_ERROR(ValidateNoReservedKeys(cube));
  // §4: "The id field is obtained by querying the DWARF_Schema column
  // family ... to determine the next id to be used." Node/cell ids likewise
  // continue after existing rows so several cubes share the families.
  SCD_ASSIGN_OR_RETURN(int64_t schema_id, NextId(kSchemaCf, 0));
  SCD_ASSIGN_OR_RETURN(int64_t node_base, NextId(kNodeCf, 0));
  SCD_ASSIGN_OR_RETURN(int64_t cell_base, NextId(kCellCf, 0));
  SCD_ASSIGN_OR_RETURN(int64_t meta_base, NextId(kMetaCf, 0));

  CubeIdMap ids = AssignIds(cube, node_base, cell_base);
  std::vector<std::vector<dwarf::NodeId>> parents =
      dwarf::ComputeParentIds(cube);

  NoSqlStoreStats local_stats;
  RowBatcher<nosql::Database> node_batch(db_, keyspace_, kNodeCf);
  RowBatcher<nosql::Database> cell_batch(db_, keyspace_, kCellCf);

  const std::vector<std::string> kSchemaCols = {
      "id", "node_count", "cell_count", "size_as_mb", "entry_node_id",
      "is_cube"};
  const std::vector<std::string> kNodeCols = {"id", "parentids", "childrenids",
                                              "root", "schema_id"};
  const std::vector<std::string> kCellCols = {
      "id",   "key",       "measure", "parentnode", "pointernode",
      "leaf", "schema_id", "dimension_table_name"};

  // §4 / Fig. 3 statement mode: render each row as a textual CQL INSERT and
  // execute it; bulk mode stages rows through bounded mutation batches.
  auto insert_cql = [this, &local_stats](const std::string& table,
                                         const std::vector<std::string>& cols,
                                         const Row& row) -> Status {
    std::string stmt = "INSERT INTO " + keyspace_ + "." + table + " (";
    stmt += StrJoin(cols, ",");
    stmt += ") VALUES (";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) stmt += ",";
      stmt += row[i].ToCqlLiteral();
    }
    stmt += ")";
    ++local_stats.statements;
    return nosql::ExecuteCql(db_, stmt).status();
  };

  uint64_t total_cells = 0;
  for (dwarf::NodeId node_id : ids.visit_order) {
    total_cells += cube.node(node_id).cells.size() + 1;
  }
  Row schema_row = {Value::Int(schema_id),
                    Value::Int(static_cast<int64_t>(ids.visit_order.size())),
                    Value::Int(static_cast<int64_t>(total_cells)),
                    Value::Int(0),  // size_as_mb updated after flush
                    cube.empty() ? Value::Null()
                                 : Value::Int(ids.node_ids[cube.root()]),
                    Value::Bool(options.is_derived_cube)};
  if (options.via_cql_statements) {
    SCD_RETURN_IF_ERROR(insert_cql(kSchemaCf, kSchemaCols, schema_row));
  } else {
    SCD_RETURN_IF_ERROR(db_->BulkInsert(keyspace_, kSchemaCf, {schema_row}));
  }

  // Row serialization: generation (key decoding, Value construction) runs on
  // worker threads in node chunks; application happens in chunk order —
  // serially here, or with more than one thread pushed onto one ordered
  // ApplyLane per column family so the node and cell inserts overlap. Either
  // way each table receives the exact serial row sequence.
  struct NodeCellRows {
    std::vector<Row> node_rows;
    std::vector<Row> cell_rows;
  };
  // Statement mode stays serial: it exists to measure per-statement cost.
  int threads = options.via_cql_statements
                    ? 1
                    : ResolveThreadCount(options.num_threads);
  const bool laned = threads > 1 && !options.via_cql_statements;
  // Lanes (and their worker threads) exist only when the apply actually
  // runs laned; a serial Store spawns no threads.
  std::optional<ApplyLane> node_lane;
  std::optional<ApplyLane> cell_lane;
  if (laned) {
    node_lane.emplace(kNodeCf);
    cell_lane.emplace(kCellCf);
  }
  auto generate = [&](size_t begin, size_t end) {
    NodeCellRows out;
    out.node_rows.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      dwarf::NodeId node_id = ids.visit_order[i];
      const dwarf::NodeView node = cube.node(node_id);
      bool leaf = cube.IsLeafLevel(node.level);
      const std::string& dim_table =
          cube.schema().dimensions()[node.level].dimension_table;

      // DWARF_Node row.
      std::vector<int64_t> parent_ids;
      for (dwarf::NodeId parent : parents[node_id]) {
        parent_ids.push_back(ids.node_ids[parent]);
      }
      std::vector<int64_t> children_ids = ids.cell_ids[node_id];
      children_ids.push_back(ids.all_cell_ids[node_id]);
      out.node_rows.push_back({Value::Int(ids.node_ids[node_id]),
                               Value::IntSet(std::move(parent_ids)),
                               Value::IntSet(std::move(children_ids)),
                               Value::Bool(node_id == cube.root()),
                               Value::Int(schema_id)});

      // Regular cells.
      for (size_t c = 0; c < node.cells.size(); ++c) {
        const dwarf::DwarfCell& cell = node.cells[c];
        const std::string& key =
            cube.dictionary(node.level).DecodeUnchecked(cell.key);
        out.cell_rows.push_back(
            {Value::Int(ids.cell_ids[node_id][c]), Value::Text(key),
             Value::Int(leaf ? cell.measure : 0),
             Value::Int(ids.node_ids[node_id]),
             leaf ? Value::Null() : Value::Int(ids.node_ids[cell.child]),
             Value::Bool(leaf), Value::Int(schema_id), Value::Text(dim_table)});
      }
      // ALL cell (reserved key, see id_map.h).
      out.cell_rows.push_back(
          {Value::Int(ids.all_cell_ids[node_id]), Value::Text(kAllCellKey),
           Value::Int(leaf ? node.all_measure : 0),
           Value::Int(ids.node_ids[node_id]),
           leaf ? Value::Null() : Value::Int(ids.node_ids[node.all_child]),
           Value::Bool(leaf), Value::Int(schema_id), Value::Text(dim_table)});
    }
    return out;
  };
  auto apply = [&](NodeCellRows rows) -> Status {
    local_stats.node_rows += rows.node_rows.size();
    local_stats.cell_rows += rows.cell_rows.size();
    if (laned) {
      // std::function requires copyable callables, so the moved row chunks
      // ride in shared_ptrs.
      auto node_rows =
          std::make_shared<std::vector<Row>>(std::move(rows.node_rows));
      auto cell_rows =
          std::make_shared<std::vector<Row>>(std::move(rows.cell_rows));
      SCD_RETURN_IF_ERROR(node_lane->Push([&node_batch, node_rows]() -> Status {
        for (Row& row : *node_rows) {
          SCD_RETURN_IF_ERROR(node_batch.Add(std::move(row)));
        }
        return Status::OK();
      }));
      SCD_RETURN_IF_ERROR(cell_lane->Push([&cell_batch, cell_rows]() -> Status {
        for (Row& row : *cell_rows) {
          SCD_RETURN_IF_ERROR(cell_batch.Add(std::move(row)));
        }
        return Status::OK();
      }));
      return Status::OK();
    }
    for (Row& row : rows.node_rows) {
      if (options.via_cql_statements) {
        SCD_RETURN_IF_ERROR(insert_cql(kNodeCf, kNodeCols, row));
      } else {
        SCD_RETURN_IF_ERROR(node_batch.Add(std::move(row)));
      }
    }
    for (Row& row : rows.cell_rows) {
      if (options.via_cql_statements) {
        SCD_RETURN_IF_ERROR(insert_cql(kCellCf, kCellCols, row));
      } else {
        SCD_RETURN_IF_ERROR(cell_batch.Add(std::move(row)));
      }
    }
    return Status::OK();
  };
  Stopwatch apply_watch;
  Status chunks_status = GenerateApplyChunks<NodeCellRows>(
      threads, ids.visit_order.size(), kDefaultRowChunkItems, generate, apply);
  // Join the lanes before touching the batchers they own, even on error.
  Status node_lane_status = node_lane ? node_lane->Finish() : Status::OK();
  Status cell_lane_status = cell_lane ? cell_lane->Finish() : Status::OK();
  SCD_RETURN_IF_ERROR(chunks_status);
  SCD_RETURN_IF_ERROR(node_lane_status);
  SCD_RETURN_IF_ERROR(cell_lane_status);
  SCD_RETURN_IF_ERROR(node_batch.Flush());
  SCD_RETURN_IF_ERROR(cell_batch.Flush());
  local_stats.apply_ms = apply_watch.ElapsedMillis();

  // Metadata extension rows.
  std::vector<Row> meta_rows;
  for (const MetaRow& row : MetaToRows(CubeMeta::FromSchema(cube.schema()))) {
    meta_rows.push_back({Value::Int(meta_base++), Value::Int(schema_id),
                         Value::Text(row.kind), Value::Int(row.idx),
                         Value::Text(row.value)});
  }
  SCD_RETURN_IF_ERROR(db_->BulkInsert(keyspace_, kMetaCf, std::move(meta_rows)));

  // §4: "when all column families have been populated, the NoSQL store is
  // queried to determine the size of the DWARF structure and the size_as_mb
  // field ... is updated."
  Stopwatch flush_watch;
  SCD_RETURN_IF_ERROR(db_->Flush());
  local_stats.flush_ms = flush_watch.ElapsedMillis();
  SCD_ASSIGN_OR_RETURN(uint64_t disk_bytes, db_->DiskSizeBytes());
  uint64_t size_bytes = db_->data_dir().empty() ? db_->EstimateBytes()
                                                : disk_bytes;
  schema_row[3] = Value::Int(static_cast<int64_t>(size_bytes >> 20));
  SCD_RETURN_IF_ERROR(db_->Insert(keyspace_, kSchemaCf, schema_row));

  if (stats != nullptr) *stats = local_stats;
  return schema_id;
}

Result<dwarf::DwarfCube> NoSqlDwarfMapper::Load(int64_t schema_id) const {
  const nosql::Database* db = db_;
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> schema_cf,
                       db->GetTable(keyspace_, kSchemaCf));
  SCD_ASSIGN_OR_RETURN(const Row* schema_row,
                       schema_cf->GetByPk(Value::Int(schema_id)));

  StoredCube stored;
  if ((*schema_row)[4].is_null()) {
    stored.entry_node_id = -1;
  } else {
    SCD_ASSIGN_OR_RETURN(stored.entry_node_id, (*schema_row)[4].AsInt());
  }

  // Metadata.
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> meta_cf, db->GetTable(keyspace_, kMetaCf));
  std::vector<MetaRow> meta_rows;
  SCD_ASSIGN_OR_RETURN(
      std::vector<const Row*> meta_matches,
      meta_cf->SelectEq("cube_id", Value::Int(schema_id),
                        /*allow_filtering=*/true));
  for (const Row* row : meta_matches) {
    MetaRow meta;
    SCD_ASSIGN_OR_RETURN(meta.kind, (*row)[2].AsText());
    SCD_ASSIGN_OR_RETURN(meta.idx, (*row)[3].AsInt());
    SCD_ASSIGN_OR_RETURN(meta.value, (*row)[4].AsText());
    meta_rows.push_back(std::move(meta));
  }
  SCD_ASSIGN_OR_RETURN(stored.meta, MetaFromRows(meta_rows));

  // Cells. (Node rows are redundant for reconstruction — the paper's
  // NoSQL-Min schema demonstrates exactly that — but their ids validate.)
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> cell_cf, db->GetTable(keyspace_, kCellCf));
  SCD_ASSIGN_OR_RETURN(
      std::vector<const Row*> cell_matches,
      cell_cf->SelectEq("schema_id", Value::Int(schema_id),
                        /*allow_filtering=*/true));
  stored.cells.reserve(cell_matches.size());
  for (const Row* row : cell_matches) {
    StoredCell cell;
    SCD_ASSIGN_OR_RETURN(cell.id, (*row)[0].AsInt());
    SCD_ASSIGN_OR_RETURN(cell.key, (*row)[1].AsText());
    SCD_ASSIGN_OR_RETURN(cell.measure, (*row)[2].AsInt());
    SCD_ASSIGN_OR_RETURN(cell.parent_node, (*row)[3].AsInt());
    if ((*row)[4].is_null()) {
      cell.pointer_node = -1;
    } else {
      SCD_ASSIGN_OR_RETURN(cell.pointer_node, (*row)[4].AsInt());
    }
    SCD_ASSIGN_OR_RETURN(cell.leaf, (*row)[5].AsBool());
    stored.cells.push_back(std::move(cell));
  }
  return RebuildCube(stored);
}

Result<bool> NoSqlDwarfMapper::IsDerivedCube(int64_t schema_id) const {
  const nosql::Database* db = db_;
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> schema_cf,
                       db->GetTable(keyspace_, kSchemaCf));
  SCD_ASSIGN_OR_RETURN(const Row* row, schema_cf->GetByPk(Value::Int(schema_id)));
  return (*row)[5].AsBool();
}

Status NoSqlDwarfMapper::DeleteCube(int64_t schema_id) {
  const nosql::Database* db = db_;
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> schema_cf,
                       db->GetTable(keyspace_, kSchemaCf));
  SCD_RETURN_IF_ERROR(schema_cf->GetByPk(Value::Int(schema_id)).status());

  auto delete_matching = [this, db](const char* table, const char* column,
                                    int64_t id) -> Status {
    SCD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> t, db->GetTable(keyspace_, table));
    SCD_ASSIGN_OR_RETURN(std::vector<const Row*> rows,
                         t->SelectEq(column, Value::Int(id),
                                     /*allow_filtering=*/true));
    std::vector<Value> keys;
    keys.reserve(rows.size());
    for (const Row* row : rows) keys.push_back((*row)[0]);
    return db_->BulkDelete(keyspace_, table, keys);
  };
  SCD_RETURN_IF_ERROR(delete_matching(kCellCf, "schema_id", schema_id));
  SCD_RETURN_IF_ERROR(delete_matching(kNodeCf, "schema_id", schema_id));
  SCD_RETURN_IF_ERROR(delete_matching(kMetaCf, "cube_id", schema_id));
  return db_->Delete(keyspace_, kSchemaCf, Value::Int(schema_id));
}

Result<std::vector<int64_t>> NoSqlDwarfMapper::ListSchemas() const {
  const nosql::Database* db = db_;
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> schema_cf,
                       db->GetTable(keyspace_, kSchemaCf));
  std::vector<int64_t> ids;
  for (const Row* row : schema_cf->ScanAll()) {
    SCD_ASSIGN_OR_RETURN(int64_t id, (*row)[0].AsInt());
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace scdwarf::mapper
