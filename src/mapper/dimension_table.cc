#include "mapper/dimension_table.h"

#include <cctype>

#include "common/strings.h"

namespace scdwarf::mapper {

Status DimensionTable::AddRow(const std::string& member,
                              std::vector<Value> attributes) {
  if (attributes.size() != attribute_names_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(attributes.size()) + " attributes, table '" +
        name_ + "' has " + std::to_string(attribute_names_.size()));
  }
  for (const std::string& existing : members_) {
    if (existing == member) {
      return Status::AlreadyExists("member '" + member +
                                   "' already in dimension table '" + name_ +
                                   "'");
    }
  }
  members_.push_back(member);
  rows_.push_back(std::move(attributes));
  return Status::OK();
}

Result<std::vector<Value>> DimensionTable::Lookup(
    const std::string& member) const {
  for (size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == member) return rows_[i];
  }
  return Status::NotFound("member '" + member + "' not in dimension table '" +
                          name_ + "'");
}

Result<Value> DimensionTable::LookupAttribute(const std::string& member,
                                              const std::string& attribute) const {
  SCD_ASSIGN_OR_RETURN(std::vector<Value> row, Lookup(member));
  for (size_t i = 0; i < attribute_names_.size(); ++i) {
    if (attribute_names_[i] == attribute) return row[i];
  }
  return Status::NotFound("dimension table '" + name_ + "' has no attribute '" +
                          attribute + "'");
}

std::string DimensionTableStore::ColumnFamilyName(const std::string& table_name) {
  std::string out = "dim_";
  for (char c : table_name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      out.push_back('_');
    }
  }
  return out;
}

namespace {

/// Infers a column's type from the rows; all non-null values must agree.
Result<DataType> InferType(const DimensionTable& table, size_t column) {
  DataType type = DataType::kText;
  bool seen = false;
  for (const std::string& member : table.members()) {
    auto row = table.Lookup(member);
    const Value& value = (*row)[column];
    if (value.is_null()) continue;
    DataType this_type = value.is_int()      ? DataType::kBigint
                         : value.is_bool()   ? DataType::kBool
                         : value.is_text()   ? DataType::kText
                                             : DataType::kIntSet;
    if (seen && this_type != type) {
      return Status::InvalidArgument(
          "attribute '" + table.attribute_names()[column] +
          "' mixes value types");
    }
    type = this_type;
    seen = true;
  }
  return type;
}

}  // namespace

Status DimensionTableStore::Store(const DimensionTable& table) {
  if (!db_->HasKeyspace(keyspace_)) {
    SCD_RETURN_IF_ERROR(db_->CreateKeyspace(keyspace_));
  }
  std::string cf = ColumnFamilyName(table.name());
  std::vector<nosql::ColumnDef> columns = {{"member", DataType::kText}};
  for (size_t i = 0; i < table.attribute_names().size(); ++i) {
    SCD_ASSIGN_OR_RETURN(DataType type, InferType(table, i));
    columns.emplace_back(AsciiToLower(table.attribute_names()[i]), type);
  }
  nosql::TableSchema schema(keyspace_, cf, std::move(columns), "member");
  Status created = db_->CreateTable(schema);
  if (!created.ok() && !created.IsAlreadyExists()) return created;

  std::vector<nosql::Row> rows;
  for (const std::string& member : table.members()) {
    SCD_ASSIGN_OR_RETURN(std::vector<Value> attributes, table.Lookup(member));
    nosql::Row row;
    row.reserve(attributes.size() + 1);
    row.push_back(Value::Text(member));
    for (Value& value : attributes) row.push_back(std::move(value));
    rows.push_back(std::move(row));
  }
  return db_->BulkInsert(keyspace_, cf, std::move(rows));
}

Result<DimensionTable> DimensionTableStore::Load(const std::string& name) const {
  const nosql::Database* db = db_;
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const nosql::Table> table,
                       db->GetTable(keyspace_, ColumnFamilyName(name)));
  const nosql::TableSchema& schema = table->schema();
  std::vector<std::string> attribute_names;
  for (size_t i = 1; i < schema.num_columns(); ++i) {
    attribute_names.push_back(schema.columns()[i].name);
  }
  DimensionTable result(name, std::move(attribute_names));
  for (const nosql::Row* row : table->ScanAll()) {
    SCD_ASSIGN_OR_RETURN(std::string member, (*row)[0].AsText());
    std::vector<Value> attributes(row->begin() + 1, row->end());
    SCD_RETURN_IF_ERROR(result.AddRow(member, std::move(attributes)));
  }
  return result;
}

Status DimensionTableStore::ValidateCoverage(const dwarf::DwarfCube& cube,
                                             size_t dim) const {
  if (dim >= cube.num_dimensions()) {
    return Status::OutOfRange("dimension index out of range");
  }
  const std::string& table_name =
      cube.schema().dimensions()[dim].dimension_table;
  if (table_name.empty()) {
    return Status::FailedPrecondition(
        "dimension '" + cube.schema().dimensions()[dim].name +
        "' declares no dimension table");
  }
  SCD_ASSIGN_OR_RETURN(DimensionTable table, Load(table_name));
  const dwarf::Dictionary& dictionary = cube.dictionary(dim);
  for (dwarf::DimKey id = 0; id < dictionary.size(); ++id) {
    const std::string& member = dictionary.DecodeUnchecked(id);
    if (!table.Lookup(member).ok()) {
      return Status::FailedPrecondition("dimension table '" + table_name +
                                        "' has no row for member '" + member +
                                        "'");
    }
  }
  return Status::OK();
}

}  // namespace scdwarf::mapper
