/// \file nosql_dwarf_mapper.h
/// \brief The paper's contribution: the DWARF <-> NoSQL bidirectional mapper
/// (§3-§4). Stores a cube into the DWARF_Schema / DWARF_Node / DWARF_Cell
/// column families of Table 1 and rebuilds it from them.

#ifndef SCDWARF_MAPPER_NOSQL_DWARF_MAPPER_H_
#define SCDWARF_MAPPER_NOSQL_DWARF_MAPPER_H_

#include <string>

#include "dwarf/dwarf_cube.h"
#include "nosql/database.h"

namespace scdwarf::mapper {

/// \brief Counters reported by a Store() call.
struct NoSqlStoreStats {
  uint64_t node_rows = 0;
  uint64_t cell_rows = 0;
  uint64_t statements = 0;  ///< CQL statements executed (statement mode only)
  double apply_ms = 0;  ///< row generation + application (chunks and lanes)
  double flush_ms = 0;  ///< segment flush barrier at the end of Store()
};

/// \brief Mapper options.
struct NoSqlDwarfMapperOptions {
  /// Marks the stored record as a derived cube rather than a full DWARF
  /// schema — Table 1-A's is_cube flag ("whether or not this particular
  /// record is a full DWARF Schema or a DWARF cube constructed from querying
  /// a DWARF schema"). Store sub-cubes from dwarf::MaterializeSubCube with
  /// this set.
  bool is_derived_cube = false;

  /// When true, the transformation emits textual CQL INSERT statements (as
  /// §4 / Fig. 3 describe) and executes them through the CQL layer one by
  /// one. When false (default), it builds rows directly and applies them in
  /// bulk mutation batches — same data, no per-row parse; the bulk-vs-
  /// statement ablation bench measures the difference.
  bool via_cql_statements = false;

  /// Threads for row serialization: 0 = auto (SCDWARF_THREADS env override,
  /// else hardware_concurrency), 1 = serial. Rows are generated in parallel
  /// but applied in order, so the stored bytes are identical for any value.
  /// Ignored (serial) in statement mode.
  int num_threads = 0;
};

/// \brief DWARF <-> NoSQL-DWARF schema mapping.
class NoSqlDwarfMapper {
 public:
  NoSqlDwarfMapper(nosql::Database* db, std::string keyspace)
      : db_(db), keyspace_(std::move(keyspace)) {}

  /// Creates the keyspace and the column families of Table 1 (plus the
  /// dwarf_metadata extension) if missing. Idempotent.
  Status EnsureSchema();

  /// Stores \p cube; returns its DWARF_Schema id. Follows §4: next-id query,
  /// full traversal with the visited lookup table, bulk insert, then a
  /// size_as_mb update after the store is flushed.
  Result<int64_t> Store(const dwarf::DwarfCube& cube,
                        NoSqlDwarfMapperOptions options = {},
                        NoSqlStoreStats* stats = nullptr);

  /// Rebuilds the cube stored under \p schema_id.
  Result<dwarf::DwarfCube> Load(int64_t schema_id) const;

  /// Removes every row of the cube stored under \p schema_id (cells, nodes,
  /// metadata and the schema row) — replacing a stale version after a cube
  /// update. NotFound when the schema id does not exist.
  Status DeleteCube(int64_t schema_id);

  /// Lists the stored schema ids.
  Result<std::vector<int64_t>> ListSchemas() const;

  /// True when the stored record was written as a derived cube
  /// (Table 1-A's is_cube flag).
  Result<bool> IsDerivedCube(int64_t schema_id) const;

  /// Table-1 column family names.
  static constexpr const char* kSchemaCf = "dwarf_schema";
  static constexpr const char* kNodeCf = "dwarf_node";
  static constexpr const char* kCellCf = "dwarf_cell";
  static constexpr const char* kMetaCf = "dwarf_metadata";

 private:
  Result<int64_t> NextId(const std::string& table, size_t id_column) const;

  nosql::Database* db_;
  std::string keyspace_;
};

}  // namespace scdwarf::mapper

#endif  // SCDWARF_MAPPER_NOSQL_DWARF_MAPPER_H_
