/// \file stored_cube.h
/// \brief Store-independent intermediate form shared by the four mappers'
/// load paths. Every storage schema (NoSQL-DWARF, NoSQL-Min, MySQL-DWARF,
/// MySQL-Min) decodes its rows into a StoredCube; RebuildCube() then
/// reconstructs the in-memory DWARF — the "bi-directional model mapper" of
/// the paper's contribution.
///
/// Also defines the cube-metadata row codec. The paper's column families
/// (Table 1) do not persist the logical schema (dimension names, aggregate
/// function), which a bidirectional mapping needs; every store therefore
/// carries one extra metadata table (documented in DESIGN.md as the single
/// extension to the paper's schemas).

#ifndef SCDWARF_MAPPER_STORED_CUBE_H_
#define SCDWARF_MAPPER_STORED_CUBE_H_

#include <string>
#include <vector>

#include "dwarf/dwarf_cube.h"

namespace scdwarf::mapper {

/// \brief One persisted cell row, in the shape of Table 1-C. ALL cells use
/// key == kAllCellKey (id_map.h).
struct StoredCell {
  int64_t id = 0;
  std::string key;
  dwarf::Measure measure = 0;
  int64_t parent_node = 0;   ///< id of the owning node
  int64_t pointer_node = -1; ///< id of the pointed-to node; -1 for leaf cells
  bool leaf = false;
};

/// \brief Logical-schema metadata persisted next to each cube.
struct CubeMeta {
  std::string cube_name;
  std::vector<std::string> dimension_names;
  std::vector<std::string> dimension_tables;  ///< parallel to names; "" = none
  std::string measure_name;
  dwarf::AggFn agg = dwarf::AggFn::kSum;

  static CubeMeta FromSchema(const dwarf::CubeSchema& schema);
  Result<dwarf::CubeSchema> ToSchema() const;
};

/// \brief Generic metadata rows (kind, idx, value) for the dwarf_metadata
/// table every store carries. Kinds: "name", "dimension", "dimension_table",
/// "measure", "agg".
struct MetaRow {
  std::string kind;
  int64_t idx = 0;
  std::string value;
};

std::vector<MetaRow> MetaToRows(const CubeMeta& meta);
Result<CubeMeta> MetaFromRows(const std::vector<MetaRow>& rows);

/// \brief A fully decoded cube image.
struct StoredCube {
  CubeMeta meta;
  int64_t entry_node_id = -1;
  std::vector<StoredCell> cells;  ///< includes ALL cells; any order
};

/// \brief Reconstructs the in-memory DWARF: groups cells into nodes by
/// parent id, derives levels by BFS from the entry node, re-encodes keys
/// through fresh dictionaries and validates the result. Fails with a
/// descriptive error on dangling references, missing ALL cells, level
/// mismatches or cells past the leaf level.
Result<dwarf::DwarfCube> RebuildCube(const StoredCube& stored);

}  // namespace scdwarf::mapper

#endif  // SCDWARF_MAPPER_STORED_CUBE_H_
