#include "mapper/id_map.h"

namespace scdwarf::mapper {

CubeIdMap AssignIds(const dwarf::DwarfCube& cube, int64_t node_base,
                    int64_t cell_base) {
  CubeIdMap map;
  map.node_ids.assign(cube.num_nodes(), CubeIdMap::kInvalidId);
  map.cell_ids.resize(cube.num_nodes());
  map.all_cell_ids.assign(cube.num_nodes(), CubeIdMap::kInvalidId);
  map.next_node_id = node_base;
  map.next_cell_id = cell_base;

  dwarf::CubeVisitor visitor;
  visitor.on_node = [&](dwarf::NodeId id, const dwarf::NodeView& node) {
    map.node_ids[id] = map.next_node_id++;
    map.visit_order.push_back(id);
    map.cell_ids[id].resize(node.cells.size());
    for (size_t c = 0; c < node.cells.size(); ++c) {
      map.cell_ids[id][c] = map.next_cell_id++;
    }
    map.all_cell_ids[id] = map.next_cell_id++;
    return Status::OK();
  };
  // Traversal over an in-memory cube with an OK-returning visitor never fails.
  (void)dwarf::TraverseCube(cube, dwarf::TraversalOrder::kDepthFirst, visitor);
  return map;
}

Status ValidateNoReservedKeys(const dwarf::DwarfCube& cube) {
  for (size_t dim = 0; dim < cube.num_dimensions(); ++dim) {
    if (cube.dictionary(dim).Lookup(kAllCellKey).ok()) {
      return Status::InvalidArgument(
          "dimension '" + cube.schema().dimensions()[dim].name +
          "' contains the reserved key \"" + std::string(kAllCellKey) +
          "\"; it cannot be stored losslessly");
    }
  }
  return Status::OK();
}

}  // namespace scdwarf::mapper
