#include "mapper/stored_cube.h"

#include <algorithm>
#include <deque>
#include <map>

#include "mapper/id_map.h"

namespace scdwarf::mapper {

CubeMeta CubeMeta::FromSchema(const dwarf::CubeSchema& schema) {
  CubeMeta meta;
  meta.cube_name = schema.name();
  for (const dwarf::DimensionSpec& dim : schema.dimensions()) {
    meta.dimension_names.push_back(dim.name);
    meta.dimension_tables.push_back(dim.dimension_table);
  }
  meta.measure_name = schema.measure_name();
  meta.agg = schema.agg();
  return meta;
}

Result<dwarf::CubeSchema> CubeMeta::ToSchema() const {
  if (dimension_names.size() != dimension_tables.size()) {
    return Status::Internal("dimension metadata arity mismatch");
  }
  std::vector<dwarf::DimensionSpec> dims;
  dims.reserve(dimension_names.size());
  for (size_t i = 0; i < dimension_names.size(); ++i) {
    dims.emplace_back(dimension_names[i], dimension_tables[i]);
  }
  dwarf::CubeSchema schema(cube_name, std::move(dims), measure_name, agg);
  SCD_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

std::vector<MetaRow> MetaToRows(const CubeMeta& meta) {
  std::vector<MetaRow> rows;
  rows.push_back({"name", 0, meta.cube_name});
  rows.push_back({"measure", 0, meta.measure_name});
  rows.push_back({"agg", 0, dwarf::AggFnName(meta.agg)});
  for (size_t i = 0; i < meta.dimension_names.size(); ++i) {
    rows.push_back({"dimension", static_cast<int64_t>(i),
                    meta.dimension_names[i]});
    if (!meta.dimension_tables[i].empty()) {
      rows.push_back({"dimension_table", static_cast<int64_t>(i),
                      meta.dimension_tables[i]});
    }
  }
  return rows;
}

Result<CubeMeta> MetaFromRows(const std::vector<MetaRow>& rows) {
  CubeMeta meta;
  std::map<int64_t, std::string> dims;
  std::map<int64_t, std::string> tables;
  for (const MetaRow& row : rows) {
    if (row.kind == "name") {
      meta.cube_name = row.value;
    } else if (row.kind == "measure") {
      meta.measure_name = row.value;
    } else if (row.kind == "agg") {
      SCD_ASSIGN_OR_RETURN(meta.agg, dwarf::ParseAggFn(row.value));
    } else if (row.kind == "dimension") {
      dims[row.idx] = row.value;
    } else if (row.kind == "dimension_table") {
      tables[row.idx] = row.value;
    } else {
      return Status::ParseError("unknown metadata kind '" + row.kind + "'");
    }
  }
  if (dims.empty()) {
    return Status::NotFound("no dimension metadata found");
  }
  int64_t expected = 0;
  for (const auto& [idx, name] : dims) {
    if (idx != expected++) {
      return Status::ParseError("dimension metadata has gaps");
    }
    meta.dimension_names.push_back(name);
    auto it = tables.find(idx);
    meta.dimension_tables.push_back(it == tables.end() ? "" : it->second);
  }
  return meta;
}

Result<dwarf::DwarfCube> RebuildCube(const StoredCube& stored) {
  SCD_ASSIGN_OR_RETURN(dwarf::CubeSchema schema, stored.meta.ToSchema());
  size_t num_dims = schema.num_dimensions();

  std::vector<dwarf::Dictionary> dictionaries;
  dictionaries.reserve(num_dims);
  for (const dwarf::DimensionSpec& dim : schema.dimensions()) {
    dictionaries.emplace_back(dim.name);
  }

  if (stored.cells.empty()) {
    dwarf::CubeAssembler assembler(schema, std::move(dictionaries));
    return assembler.Finish();
  }

  // Group cells into their nodes. Ordered map => deterministic arena order.
  struct NodeGroup {
    std::vector<const StoredCell*> cells;  // regular cells
    const StoredCell* all_cell = nullptr;
    size_t level = SIZE_MAX;
  };
  std::map<int64_t, NodeGroup> nodes;
  for (const StoredCell& cell : stored.cells) {
    NodeGroup& group = nodes[cell.parent_node];
    if (cell.key == kAllCellKey) {
      if (group.all_cell != nullptr) {
        return Status::ParseError("node " + std::to_string(cell.parent_node) +
                                  " has two ALL cells");
      }
      group.all_cell = &cell;
    } else {
      group.cells.push_back(&cell);
    }
  }

  auto entry = nodes.find(stored.entry_node_id);
  if (entry == nodes.end()) {
    return Status::ParseError("entry node " +
                              std::to_string(stored.entry_node_id) +
                              " has no cells");
  }

  // Derive levels by BFS over pointer edges.
  std::deque<int64_t> queue;
  entry->second.level = 0;
  queue.push_back(stored.entry_node_id);
  while (!queue.empty()) {
    int64_t node_id = queue.front();
    queue.pop_front();
    NodeGroup& group = nodes[node_id];
    std::vector<const StoredCell*> outgoing = group.cells;
    if (group.all_cell != nullptr) outgoing.push_back(group.all_cell);
    for (const StoredCell* cell : outgoing) {
      if (cell->leaf || cell->pointer_node < 0) continue;
      auto child = nodes.find(cell->pointer_node);
      if (child == nodes.end()) {
        return Status::ParseError("cell " + std::to_string(cell->id) +
                                  " points to unknown node " +
                                  std::to_string(cell->pointer_node));
      }
      size_t child_level = group.level + 1;
      if (child_level >= num_dims) {
        return Status::ParseError("node " + std::to_string(cell->pointer_node) +
                                  " sits below the leaf level");
      }
      if (child->second.level == SIZE_MAX) {
        child->second.level = child_level;
        queue.push_back(cell->pointer_node);
      } else if (child->second.level != child_level) {
        return Status::ParseError("node " + std::to_string(cell->pointer_node) +
                                  " is reachable at two levels");
      }
    }
  }

  // Assemble bottom-up so children have arena ids before their parents.
  // Order nodes by descending level; arena ids assigned in that order.
  std::vector<std::pair<int64_t, NodeGroup*>> ordered;
  ordered.reserve(nodes.size());
  for (auto& [id, group] : nodes) {
    if (group.level == SIZE_MAX) {
      return Status::ParseError("node " + std::to_string(id) +
                                " is unreachable from the entry node");
    }
    ordered.emplace_back(id, &group);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& a, const auto& b) {
                     return a.second->level > b.second->level;
                   });

  std::map<int64_t, dwarf::NodeId> arena_ids;
  std::vector<dwarf::DwarfNode> arena_nodes;

  for (auto& [store_id, group] : ordered) {
    bool leaf_level = group->level + 1 == num_dims;
    dwarf::DwarfNode node;
    node.level = static_cast<uint16_t>(group->level);
    if (group->cells.empty()) {
      return Status::ParseError("node " + std::to_string(store_id) +
                                " has no regular cells");
    }
    if (group->all_cell == nullptr) {
      return Status::ParseError("node " + std::to_string(store_id) +
                                " is missing its ALL cell");
    }
    for (const StoredCell* cell : group->cells) {
      dwarf::DwarfCell out;
      out.key = dictionaries[group->level].Encode(cell->key);
      if (leaf_level) {
        if (!cell->leaf) {
          return Status::ParseError("cell " + std::to_string(cell->id) +
                                    " at leaf level lacks the leaf flag");
        }
        out.measure = cell->measure;
      } else {
        if (cell->pointer_node < 0) {
          return Status::ParseError("interior cell " + std::to_string(cell->id) +
                                    " has no pointer node");
        }
        auto it = arena_ids.find(cell->pointer_node);
        if (it == arena_ids.end()) {
          return Status::ParseError("cell " + std::to_string(cell->id) +
                                    " points to unassembled node");
        }
        out.child = it->second;
      }
      node.cells.push_back(out);
    }
    std::sort(node.cells.begin(), node.cells.end(),
              [](const dwarf::DwarfCell& a, const dwarf::DwarfCell& b) {
                return a.key < b.key;
              });
    if (leaf_level) {
      node.all_measure = group->all_cell->measure;
    } else {
      auto it = arena_ids.find(group->all_cell->pointer_node);
      if (it == arena_ids.end()) {
        return Status::ParseError("ALL cell of node " +
                                  std::to_string(store_id) +
                                  " points to unassembled node");
      }
      node.all_child = it->second;
      node.all_coalesced =
          node.cells.size() == 1 && node.cells[0].child == node.all_child;
    }
    dwarf::NodeId arena_id = static_cast<dwarf::NodeId>(arena_nodes.size());
    arena_nodes.push_back(std::move(node));
    arena_ids.emplace(store_id, arena_id);
  }

  dwarf::CubeAssembler final_assembler(schema, std::move(dictionaries));
  for (dwarf::DwarfNode& node : arena_nodes) {
    final_assembler.AddNode(std::move(node));
  }
  final_assembler.SetRoot(arena_ids[stored.entry_node_id]);
  return final_assembler.Finish();
}

}  // namespace scdwarf::mapper
