/// \file nosql_min_mapper.h
/// \brief The NoSQL-Min comparison schema (Table 3): two column families —
/// DWARF_Cube and DWARF_Cell — with no node rows. Cells carry their parent
/// and child node ids, so nodes "can be rebuilt at a later stage"; that
/// rebuild requires secondary indexes on parentNodeId and childNodeId, whose
/// maintenance cost is exactly what Table 5 blames for this schema's slow
/// inserts.

#ifndef SCDWARF_MAPPER_NOSQL_MIN_MAPPER_H_
#define SCDWARF_MAPPER_NOSQL_MIN_MAPPER_H_

#include <string>

#include "dwarf/dwarf_cube.h"
#include "nosql/database.h"

namespace scdwarf::mapper {

struct NoSqlMinMapperOptions {
  /// The two secondary indexes of §5.1. Disabling them is the index-cost
  /// ablation (bench_ablations); loads then fall back to filtering scans.
  bool create_secondary_indexes = true;

  /// Threads for row serialization: 0 = auto (SCDWARF_THREADS env override,
  /// else hardware_concurrency), 1 = serial. Rows are generated in parallel
  /// but applied in order, so the stored bytes are identical for any value.
  int num_threads = 0;
};

/// \brief DWARF <-> NoSQL-Min schema mapping.
class NoSqlMinMapper {
 public:
  NoSqlMinMapper(nosql::Database* db, std::string keyspace,
                 NoSqlMinMapperOptions options = {})
      : db_(db), keyspace_(std::move(keyspace)), options_(options) {}

  /// Creates the two column families (plus metadata) if missing.
  Status EnsureSchema();

  /// Stores \p cube; returns its DWARF_Cube id.
  Result<int64_t> Store(const dwarf::DwarfCube& cube);

  /// Rebuilds the cube stored under \p cube_id, reconstructing nodes from
  /// the parent/child ids on the cells.
  Result<dwarf::DwarfCube> Load(int64_t cube_id) const;

  /// Removes every row of the stored cube.
  Status DeleteCube(int64_t cube_id);

  static constexpr const char* kCubeCf = "dwarf_cube";
  static constexpr const char* kCellCf = "dwarf_cell";
  static constexpr const char* kMetaCf = "dwarf_metadata";

 private:
  Result<int64_t> NextId(const std::string& table) const;

  nosql::Database* db_;
  std::string keyspace_;
  NoSqlMinMapperOptions options_;
};

}  // namespace scdwarf::mapper

#endif  // SCDWARF_MAPPER_NOSQL_MIN_MAPPER_H_
