/// \file dimension_table.h
/// \brief Dimension tables — §4: "if a dimension table is specified in the
/// schema definition, the dimension_table_name is also updated to include
/// the name of the dimension table which contains additional information
/// about the DWARF Cell."
///
/// A dimension table carries descriptive attributes for one dimension's
/// members (for Station: area, capacity, coordinates). This helper stores
/// such tables next to a cube in the NoSQL store and resolves cube query
/// results against them — the star-schema lookup the cell's
/// dimension_table_name enables.

#ifndef SCDWARF_MAPPER_DIMENSION_TABLE_H_
#define SCDWARF_MAPPER_DIMENSION_TABLE_H_

#include <string>
#include <vector>

#include "dwarf/dwarf_cube.h"
#include "nosql/database.h"

namespace scdwarf::mapper {

/// \brief In-memory form of a dimension table: a key column (the dimension's
/// member string) plus named attribute columns.
class DimensionTable {
 public:
  /// \p name must match the DimensionSpec::dimension_table of the cube
  /// dimension it describes.
  DimensionTable(std::string name, std::vector<std::string> attribute_names)
      : name_(std::move(name)), attribute_names_(std::move(attribute_names)) {}

  /// Adds one member row; arity must match the attribute list.
  /// AlreadyExists on duplicate members.
  Status AddRow(const std::string& member, std::vector<Value> attributes);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }
  size_t num_rows() const { return members_.size(); }

  /// Attribute values of \p member, or NotFound.
  Result<std::vector<Value>> Lookup(const std::string& member) const;

  /// One named attribute of \p member.
  Result<Value> LookupAttribute(const std::string& member,
                                const std::string& attribute) const;

  const std::vector<std::string>& members() const { return members_; }

 private:
  friend class DimensionTableStore;

  std::string name_;
  std::vector<std::string> attribute_names_;
  std::vector<std::string> members_;
  std::vector<std::vector<Value>> rows_;
};

/// \brief Persists dimension tables in a keyspace, one column family per
/// table: `dim_<name>` with a text primary key (the member) plus one column
/// per attribute. Bidirectional like the cube mappers.
class DimensionTableStore {
 public:
  DimensionTableStore(nosql::Database* db, std::string keyspace)
      : db_(db), keyspace_(std::move(keyspace)) {}

  /// Creates the column family (if missing) and upserts every row.
  Status Store(const DimensionTable& table);

  /// Loads the named dimension table.
  Result<DimensionTable> Load(const std::string& name) const;

  /// Validates that every member of \p cube's dimension \p dim that names
  /// this store's keyspace has a row in its declared dimension table —
  /// referential integrity between DWARF cells and dimension tables.
  Status ValidateCoverage(const dwarf::DwarfCube& cube, size_t dim) const;

  /// Column-family name for a dimension table.
  static std::string ColumnFamilyName(const std::string& table_name);

 private:
  nosql::Database* db_;
  std::string keyspace_;
};

}  // namespace scdwarf::mapper

#endif  // SCDWARF_MAPPER_DIMENSION_TABLE_H_
