/// \file row_batcher.h
/// \brief Bounded-memory bulk loading. §4 executes the generated inserts "in
/// a bulk process"; for million-tuple cubes a single batch would hold every
/// row twice (staging + store), so the mappers stream rows through capped
/// batches instead — still bulk mutations, bounded staging memory.

#ifndef SCDWARF_MAPPER_ROW_BATCHER_H_
#define SCDWARF_MAPPER_ROW_BATCHER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace scdwarf::mapper {

/// \brief Accumulates rows for one table and applies them through
/// Engine::BulkInsert in batches of at most \p capacity rows.
/// Engine is nosql::Database (scope = keyspace) or sql::SqlEngine
/// (scope = database); both share the BulkInsert signature.
template <typename Engine>
class RowBatcher {
 public:
  RowBatcher(Engine* engine, std::string scope, std::string table,
             size_t capacity = kDefaultCapacity)
      : engine_(engine),
        scope_(std::move(scope)),
        table_(std::move(table)),
        capacity_(capacity) {
    rows_.reserve(capacity_);
  }

  /// Stages one row, flushing when the batch is full.
  Status Add(std::vector<Value> row) {
    rows_.push_back(std::move(row));
    ++total_;
    if (rows_.size() >= capacity_) return Flush();
    return Status::OK();
  }

  /// Applies any staged rows. Must be called once after the last Add.
  Status Flush() {
    if (rows_.empty()) return Status::OK();
    SCD_RETURN_IF_ERROR(engine_->BulkInsert(scope_, table_, std::move(rows_)));
    rows_.clear();
    rows_.reserve(capacity_);
    return Status::OK();
  }

  /// Rows staged through this batcher (flushed or not).
  uint64_t total() const { return total_; }

  static constexpr size_t kDefaultCapacity = 128 * 1024;

 private:
  Engine* engine_;
  std::string scope_;
  std::string table_;
  size_t capacity_;
  std::vector<std::vector<Value>> rows_;
  uint64_t total_ = 0;
};

}  // namespace scdwarf::mapper

#endif  // SCDWARF_MAPPER_ROW_BATCHER_H_
