#include "mapper/sql_dwarf_mapper.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "common/parallel.h"
#include "mapper/id_map.h"
#include "mapper/parallel_apply.h"
#include "mapper/parallel_rows.h"
#include "mapper/row_batcher.h"
#include "mapper/stored_cube.h"

namespace scdwarf::mapper {

using sql::SqlRow;
using sql::SqlTableDef;

Status SqlDwarfMapper::EnsureSchema() {
  if (!engine_->HasDatabase(database_)) {
    SCD_RETURN_IF_ERROR(engine_->CreateDatabase(database_));
  }
  auto create_if_missing = [this](const SqlTableDef& def) -> Status {
    Status status = engine_->CreateTable(def);
    if (status.IsAlreadyExists()) return Status::OK();
    return status;
  };
  SCD_RETURN_IF_ERROR(create_if_missing(SqlTableDef(
      database_, kCubeTable,
      {{"id", DataType::kInt, false},
       {"node_count", DataType::kInt},
       {"cell_count", DataType::kInt},
       {"size_as_mb", DataType::kInt},
       {"entry_node_id", DataType::kInt}},
      "id")));
  SCD_RETURN_IF_ERROR(create_if_missing(SqlTableDef(
      database_, kNodeTable,
      {{"id", DataType::kInt, false},
       {"root", DataType::kBool},
       {"cube_id", DataType::kInt}},
      "id")));
  SCD_RETURN_IF_ERROR(create_if_missing(SqlTableDef(
      database_, kCellTable,
      {{"id", DataType::kInt, false},
       {"key_text", DataType::kText},
       {"measure", DataType::kInt},
       {"leaf", DataType::kBool},
       {"cube_id", DataType::kInt},
       {"dimension_table_name", DataType::kText}},
      "id")));
  // One row per node -> contained cell edge.
  SCD_RETURN_IF_ERROR(create_if_missing(SqlTableDef(
      database_, kNodeChildrenTable,
      {{"id", DataType::kInt, false},
       {"node_id", DataType::kInt},
       {"cell_id", DataType::kInt}},
      "id")));
  // One row per cell -> pointed node edge.
  SCD_RETURN_IF_ERROR(create_if_missing(SqlTableDef(
      database_, kCellChildrenTable,
      {{"id", DataType::kInt, false},
       {"cell_id", DataType::kInt},
       {"node_id", DataType::kInt}},
      "id")));
  SCD_RETURN_IF_ERROR(create_if_missing(SqlTableDef(
      database_, kMetaTable,
      {{"id", DataType::kInt, false},
       {"cube_id", DataType::kInt},
       {"kind", DataType::kText},
       {"idx", DataType::kInt},
       {"value", DataType::kText}},
      "id")));
  return Status::OK();
}

Result<int64_t> SqlDwarfMapper::NextId(const std::string& table) const {
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const sql::HeapTable> t,
                       static_cast<const sql::SqlEngine*>(engine_)->GetTable(
                           database_, table));
  // Rows scan in primary-key order: the last row has the max id.
  auto rows = t->ScanAll();
  if (rows.empty()) return int64_t{0};
  SCD_ASSIGN_OR_RETURN(int64_t max_id, (*rows.back())[0].AsInt());
  return max_id + 1;
}

Result<int64_t> SqlDwarfMapper::Store(const dwarf::DwarfCube& cube,
                                      SqlDwarfStoreStats* stats) {
  SCD_RETURN_IF_ERROR(EnsureSchema());
  SCD_RETURN_IF_ERROR(ValidateNoReservedKeys(cube));
  SCD_ASSIGN_OR_RETURN(int64_t cube_id, NextId(kCubeTable));
  SCD_ASSIGN_OR_RETURN(int64_t node_base, NextId(kNodeTable));
  SCD_ASSIGN_OR_RETURN(int64_t cell_base, NextId(kCellTable));
  SCD_ASSIGN_OR_RETURN(int64_t node_children_base, NextId(kNodeChildrenTable));
  SCD_ASSIGN_OR_RETURN(int64_t cell_children_base, NextId(kCellChildrenTable));

  CubeIdMap ids = AssignIds(cube, node_base, cell_base);

  RowBatcher<sql::SqlEngine> node_batch(engine_, database_, kNodeTable);
  RowBatcher<sql::SqlEngine> cell_batch(engine_, database_, kCellTable);
  RowBatcher<sql::SqlEngine> node_children_batch(engine_, database_,
                                                 kNodeChildrenTable);
  RowBatcher<sql::SqlEngine> cell_children_batch(engine_, database_,
                                                 kCellChildrenTable);

  // The edge tables draw their ids from sequential counters. So chunks can
  // serialize independently, prefix-count the edges each node contributes:
  // every cell (incl. ALL) adds one NODE_CHILDREN row, and non-leaf nodes
  // add one CELL_CHILDREN row per cell. Chunk [b, e) then starts its edge
  // ids at base + prefix[b] — identical ids to the serial counters.
  size_t n = ids.visit_order.size();
  std::vector<uint64_t> nc_prefix(n + 1, 0);
  std::vector<uint64_t> cc_prefix(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    const dwarf::NodeView node = cube.node(ids.visit_order[i]);
    uint64_t cells = node.cells.size() + 1;  // + the ALL cell
    nc_prefix[i + 1] = nc_prefix[i] + cells;
    cc_prefix[i + 1] =
        cc_prefix[i] + (cube.IsLeafLevel(node.level) ? 0 : cells);
  }

  struct SqlDwarfRows {
    std::vector<SqlRow> node_rows;
    std::vector<SqlRow> cell_rows;
    std::vector<SqlRow> node_children_rows;
    std::vector<SqlRow> cell_children_rows;
  };
  auto generate = [&](size_t begin, size_t end) {
    SqlDwarfRows out;
    int64_t nc_id = node_children_base + static_cast<int64_t>(nc_prefix[begin]);
    int64_t cc_id = cell_children_base + static_cast<int64_t>(cc_prefix[begin]);
    auto emit_cell = [&](int64_t cell_id, const std::string& key,
                         dwarf::Measure measure, bool leaf, int64_t node_id,
                         int64_t pointed_node, const std::string& dim_table) {
      out.cell_rows.push_back(
          {Value::Int(cell_id), Value::Text(key), Value::Int(measure),
           Value::Bool(leaf), Value::Int(cube_id), Value::Text(dim_table)});
      out.node_children_rows.push_back(
          {Value::Int(nc_id++), Value::Int(node_id), Value::Int(cell_id)});
      if (pointed_node >= 0) {
        out.cell_children_rows.push_back(
            {Value::Int(cc_id++), Value::Int(cell_id),
             Value::Int(pointed_node)});
      }
    };
    for (size_t i = begin; i < end; ++i) {
      dwarf::NodeId node_id = ids.visit_order[i];
      const dwarf::NodeView node = cube.node(node_id);
      bool leaf = cube.IsLeafLevel(node.level);
      const std::string& dim_table =
          cube.schema().dimensions()[node.level].dimension_table;
      out.node_rows.push_back({Value::Int(ids.node_ids[node_id]),
                               Value::Bool(node_id == cube.root()),
                               Value::Int(cube_id)});
      for (size_t c = 0; c < node.cells.size(); ++c) {
        const dwarf::DwarfCell& cell = node.cells[c];
        const std::string& key =
            cube.dictionary(node.level).DecodeUnchecked(cell.key);
        emit_cell(ids.cell_ids[node_id][c], key, leaf ? cell.measure : 0,
                  leaf, ids.node_ids[node_id],
                  leaf ? -1 : ids.node_ids[cell.child], dim_table);
      }
      emit_cell(ids.all_cell_ids[node_id], kAllCellKey,
                leaf ? node.all_measure : 0, leaf, ids.node_ids[node_id],
                leaf ? -1 : ids.node_ids[node.all_child], dim_table);
    }
    return out;
  };
  // With more than one thread each table's rows go to its own ordered
  // ApplyLane: one worker per table applies chunks in order (byte-identical
  // table contents), and the four tables' inserts overlap behind the
  // engine's per-table shard locks.
  int threads = ResolveThreadCount(num_threads_);
  const bool laned = threads > 1;
  // Lanes (and their worker threads) exist only when the apply actually
  // runs laned; a serial Store spawns no threads.
  std::optional<ApplyLane> node_lane;
  std::optional<ApplyLane> cell_lane;
  std::optional<ApplyLane> node_children_lane;
  std::optional<ApplyLane> cell_children_lane;
  if (laned) {
    node_lane.emplace(kNodeTable);
    cell_lane.emplace(kCellTable);
    node_children_lane.emplace(kNodeChildrenTable);
    cell_children_lane.emplace(kCellChildrenTable);
  }
  auto push_rows = [](ApplyLane& lane, RowBatcher<sql::SqlEngine>& batch,
                      std::vector<SqlRow> rows) -> Status {
    auto shared = std::make_shared<std::vector<SqlRow>>(std::move(rows));
    return lane.Push([&batch, shared]() -> Status {
      for (SqlRow& row : *shared) {
        SCD_RETURN_IF_ERROR(batch.Add(std::move(row)));
      }
      return Status::OK();
    });
  };
  auto apply = [&](SqlDwarfRows rows) -> Status {
    if (laned) {
      SCD_RETURN_IF_ERROR(
          push_rows(*node_lane, node_batch, std::move(rows.node_rows)));
      SCD_RETURN_IF_ERROR(
          push_rows(*cell_lane, cell_batch, std::move(rows.cell_rows)));
      SCD_RETURN_IF_ERROR(push_rows(*node_children_lane, node_children_batch,
                                    std::move(rows.node_children_rows)));
      SCD_RETURN_IF_ERROR(push_rows(*cell_children_lane, cell_children_batch,
                                    std::move(rows.cell_children_rows)));
      return Status::OK();
    }
    for (SqlRow& row : rows.node_rows) {
      SCD_RETURN_IF_ERROR(node_batch.Add(std::move(row)));
    }
    for (SqlRow& row : rows.cell_rows) {
      SCD_RETURN_IF_ERROR(cell_batch.Add(std::move(row)));
    }
    for (SqlRow& row : rows.node_children_rows) {
      SCD_RETURN_IF_ERROR(node_children_batch.Add(std::move(row)));
    }
    for (SqlRow& row : rows.cell_children_rows) {
      SCD_RETURN_IF_ERROR(cell_children_batch.Add(std::move(row)));
    }
    return Status::OK();
  };
  Status chunks_status = GenerateApplyChunks<SqlDwarfRows>(
      threads, n, kDefaultRowChunkItems, generate, apply);
  // Join the lanes before touching the batchers they own, even on error.
  Status lane_status;
  for (std::optional<ApplyLane>* lane :
       {&node_lane, &cell_lane, &node_children_lane, &cell_children_lane}) {
    if (!lane->has_value()) continue;
    if (Status s = (**lane).Finish(); lane_status.ok()) lane_status = s;
  }
  SCD_RETURN_IF_ERROR(chunks_status);
  SCD_RETURN_IF_ERROR(lane_status);
  SCD_RETURN_IF_ERROR(node_batch.Flush());
  SCD_RETURN_IF_ERROR(cell_batch.Flush());
  SCD_RETURN_IF_ERROR(node_children_batch.Flush());
  SCD_RETURN_IF_ERROR(cell_children_batch.Flush());

  if (stats != nullptr) {
    stats->node_rows = node_batch.total();
    stats->cell_rows = cell_batch.total();
    stats->node_children_rows = node_children_batch.total();
    stats->cell_children_rows = cell_children_batch.total();
  }

  SqlRow cube_row = {Value::Int(cube_id),
                     Value::Int(static_cast<int64_t>(node_batch.total())),
                     Value::Int(static_cast<int64_t>(cell_batch.total())),
                     Value::Int(0),
                     cube.empty() ? Value::Null()
                                  : Value::Int(ids.node_ids[cube.root()])};
  SCD_RETURN_IF_ERROR(engine_->BulkInsert(database_, kCubeTable, {cube_row}));

  SCD_ASSIGN_OR_RETURN(int64_t meta_base, NextId(kMetaTable));
  std::vector<SqlRow> meta_rows;
  for (const MetaRow& row : MetaToRows(CubeMeta::FromSchema(cube.schema()))) {
    meta_rows.push_back({Value::Int(meta_base++), Value::Int(cube_id),
                         Value::Text(row.kind), Value::Int(row.idx),
                         Value::Text(row.value)});
  }
  SCD_RETURN_IF_ERROR(
      engine_->BulkInsert(database_, kMetaTable, std::move(meta_rows)));

  SCD_RETURN_IF_ERROR(engine_->Flush());
  SCD_ASSIGN_OR_RETURN(uint64_t disk_bytes, engine_->DiskSizeBytes());
  uint64_t size_bytes =
      engine_->data_dir().empty() ? engine_->EstimateBytes() : disk_bytes;
  // MySQL INSERT has no upsert here: update by delete-free overwrite is not
  // available, so the size row is written through a fresh insert id... the
  // engine rejects duplicate keys, so instead store the measured size in the
  // metadata table alongside the logical schema.
  SCD_ASSIGN_OR_RETURN(int64_t size_meta_id, NextId(kMetaTable));
  SCD_RETURN_IF_ERROR(engine_->BulkInsert(
      database_, kMetaTable,
      {{Value::Int(size_meta_id), Value::Int(cube_id), Value::Text("size_mb"),
        Value::Int(0),
        Value::Text(std::to_string(size_bytes >> 20))}}));
  return cube_id;
}

Status SqlDwarfMapper::DeleteCube(int64_t cube_id) {
  const sql::SqlEngine* engine = engine_;
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const sql::HeapTable> cube_table,
                       engine->GetTable(database_, kCubeTable));
  SCD_RETURN_IF_ERROR(cube_table->GetByPk(Value::Int(cube_id)).status());

  auto delete_matching = [this, engine](const char* table, const char* column,
                                        int64_t id) -> Status {
    SCD_ASSIGN_OR_RETURN(std::shared_ptr<const sql::HeapTable> t,
                         engine->GetTable(database_, table));
    SCD_ASSIGN_OR_RETURN(std::vector<const sql::SqlRow*> rows,
                         t->SelectEq(column, Value::Int(id)));
    std::vector<Value> keys;
    keys.reserve(rows.size());
    for (const sql::SqlRow* row : rows) keys.push_back((*row)[0]);
    return engine_->BulkDelete(database_, table, keys);
  };
  // The join tables carry no cube id; resolve their rows through the cube's
  // cell and node ids.
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const sql::HeapTable> cells,
                       engine->GetTable(database_, kCellTable));
  SCD_ASSIGN_OR_RETURN(std::vector<const sql::SqlRow*> cell_rows,
                       cells->SelectEq("cube_id", Value::Int(cube_id)));
  std::set<int64_t> cell_ids;
  for (const sql::SqlRow* row : cell_rows) {
    SCD_ASSIGN_OR_RETURN(int64_t id, (*row)[0].AsInt());
    cell_ids.insert(id);
  }
  auto delete_edges = [this, engine, &cell_ids](const char* table) -> Status {
    SCD_ASSIGN_OR_RETURN(std::shared_ptr<const sql::HeapTable> t,
                         engine->GetTable(database_, table));
    std::vector<Value> keys;
    for (const sql::SqlRow* row : t->ScanAll()) {
      SCD_ASSIGN_OR_RETURN(int64_t cell_id, (*row)[1].AsInt());
      if (cell_ids.count(cell_id) > 0) keys.push_back((*row)[0]);
    }
    return engine_->BulkDelete(database_, table, keys);
  };
  // NODE_CHILDREN stores (node_id, cell_id): the cell reference is column 2.
  {
    SCD_ASSIGN_OR_RETURN(std::shared_ptr<const sql::HeapTable> t,
                         engine->GetTable(database_, kNodeChildrenTable));
    std::vector<Value> keys;
    for (const sql::SqlRow* row : t->ScanAll()) {
      SCD_ASSIGN_OR_RETURN(int64_t cell_id, (*row)[2].AsInt());
      if (cell_ids.count(cell_id) > 0) keys.push_back((*row)[0]);
    }
    SCD_RETURN_IF_ERROR(engine_->BulkDelete(database_, kNodeChildrenTable, keys));
  }
  SCD_RETURN_IF_ERROR(delete_edges(kCellChildrenTable));
  SCD_RETURN_IF_ERROR(delete_matching(kCellTable, "cube_id", cube_id));
  SCD_RETURN_IF_ERROR(delete_matching(kNodeTable, "cube_id", cube_id));
  SCD_RETURN_IF_ERROR(delete_matching(kMetaTable, "cube_id", cube_id));
  return engine_->Delete(database_, kCubeTable, Value::Int(cube_id));
}

Result<dwarf::DwarfCube> SqlDwarfMapper::Load(int64_t cube_id) const {
  const sql::SqlEngine* engine = engine_;
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const sql::HeapTable> cube_table,
                       engine->GetTable(database_, kCubeTable));
  SCD_ASSIGN_OR_RETURN(const SqlRow* cube_row,
                       cube_table->GetByPk(Value::Int(cube_id)));

  StoredCube stored;
  if ((*cube_row)[4].is_null()) {
    stored.entry_node_id = -1;
  } else {
    SCD_ASSIGN_OR_RETURN(stored.entry_node_id, (*cube_row)[4].AsInt());
  }

  // Metadata (skipping the size_mb row).
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const sql::HeapTable> meta_table,
                       engine->GetTable(database_, kMetaTable));
  std::vector<MetaRow> meta_rows;
  SCD_ASSIGN_OR_RETURN(std::vector<const SqlRow*> meta_matches,
                       meta_table->SelectEq("cube_id", Value::Int(cube_id)));
  for (const SqlRow* row : meta_matches) {
    MetaRow meta;
    SCD_ASSIGN_OR_RETURN(meta.kind, (*row)[2].AsText());
    if (meta.kind == "size_mb") continue;
    SCD_ASSIGN_OR_RETURN(meta.idx, (*row)[3].AsInt());
    SCD_ASSIGN_OR_RETURN(meta.value, (*row)[4].AsText());
    meta_rows.push_back(std::move(meta));
  }
  SCD_ASSIGN_OR_RETURN(stored.meta, MetaFromRows(meta_rows));

  // The relational rebuild stitches three tables: cells joined to their
  // owning node through NODE_CHILDREN and to their pointed node through
  // CELL_CHILDREN.
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const sql::HeapTable> cell_table,
                       engine->GetTable(database_, kCellTable));
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const sql::HeapTable> node_children,
                       engine->GetTable(database_, kNodeChildrenTable));
  SCD_ASSIGN_OR_RETURN(std::shared_ptr<const sql::HeapTable> cell_children,
                       engine->GetTable(database_, kCellChildrenTable));

  std::map<int64_t, int64_t> owner_of_cell;     // cell id -> node id
  for (const SqlRow* row : node_children->ScanAll()) {
    SCD_ASSIGN_OR_RETURN(int64_t node_id, (*row)[1].AsInt());
    SCD_ASSIGN_OR_RETURN(int64_t cell_id, (*row)[2].AsInt());
    owner_of_cell[cell_id] = node_id;
  }
  std::map<int64_t, int64_t> pointed_by_cell;   // cell id -> node id
  for (const SqlRow* row : cell_children->ScanAll()) {
    SCD_ASSIGN_OR_RETURN(int64_t cell_id, (*row)[1].AsInt());
    SCD_ASSIGN_OR_RETURN(int64_t node_id, (*row)[2].AsInt());
    pointed_by_cell[cell_id] = node_id;
  }

  SCD_ASSIGN_OR_RETURN(std::vector<const SqlRow*> cell_matches,
                       cell_table->SelectEq("cube_id", Value::Int(cube_id)));
  for (const SqlRow* row : cell_matches) {
    StoredCell cell;
    SCD_ASSIGN_OR_RETURN(cell.id, (*row)[0].AsInt());
    SCD_ASSIGN_OR_RETURN(cell.key, (*row)[1].AsText());
    SCD_ASSIGN_OR_RETURN(cell.measure, (*row)[2].AsInt());
    SCD_ASSIGN_OR_RETURN(cell.leaf, (*row)[3].AsBool());
    auto owner = owner_of_cell.find(cell.id);
    if (owner == owner_of_cell.end()) {
      return Status::ParseError("cell " + std::to_string(cell.id) +
                                " has no NODE_CHILDREN row");
    }
    cell.parent_node = owner->second;
    auto pointed = pointed_by_cell.find(cell.id);
    cell.pointer_node =
        pointed == pointed_by_cell.end() ? -1 : pointed->second;
    stored.cells.push_back(std::move(cell));
  }
  return RebuildCube(stored);
}

}  // namespace scdwarf::mapper
