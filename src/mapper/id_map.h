/// \file id_map.h
/// \brief The §4 "lookup table": assigns store-unique ids to every node and
/// cell of a cube during one traversal, so that coalesced structures (which
/// are reachable through several parents) are transformed exactly once.
///
/// The ALL cell of each node is materialized as a regular cell row with the
/// reserved key "ALL" (Table 1-C has no is-ALL flag; the reserved key keeps
/// the paper's column families unchanged while making the mapping lossless).

#ifndef SCDWARF_MAPPER_ID_MAP_H_
#define SCDWARF_MAPPER_ID_MAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dwarf/dwarf_cube.h"
#include "dwarf/traversal.h"

namespace scdwarf::mapper {

/// Reserved DWARF_Cell.key spelling for ALL cells.
inline constexpr const char* kAllCellKey = "ALL";

/// \brief Store ids for one cube. Node and cell ids live in separate id
/// spaces (they key different column families / tables).
struct CubeIdMap {
  /// Store id per arena NodeId (index), kInvalidId when unreachable.
  std::vector<int64_t> node_ids;
  /// Store id per (arena NodeId, cell index).
  std::vector<std::vector<int64_t>> cell_ids;
  /// Store id of each node's ALL cell.
  std::vector<int64_t> all_cell_ids;
  /// Nodes in traversal (assignment) order.
  std::vector<dwarf::NodeId> visit_order;

  int64_t next_node_id = 0;  ///< one past the last assigned node id
  int64_t next_cell_id = 0;  ///< one past the last assigned cell id

  static constexpr int64_t kInvalidId = -1;
};

/// \brief Walks the cube in the paper's top-down order and assigns ids
/// starting from \p node_base / \p cell_base (the "next id" values obtained
/// by querying the store, so multiple cubes can share column families).
CubeIdMap AssignIds(const dwarf::DwarfCube& cube, int64_t node_base,
                    int64_t cell_base);

/// \brief Rejects cubes whose dictionaries contain the reserved ALL key —
/// such a cube would be ambiguous after storage. Call before any Store().
Status ValidateNoReservedKeys(const dwarf::DwarfCube& cube);

}  // namespace scdwarf::mapper

#endif  // SCDWARF_MAPPER_ID_MAP_H_
