/// \file parallel_rows.h
/// \brief Parallel row serialization for the Store() transformations: row
/// *generation* (key decoding, Value construction) fans out to worker
/// threads in contiguous node chunks, while row *application* stays on the
/// calling thread in chunk order — the engines and RowBatcher are
/// single-writer, and the emitted row sequence is byte-identical to the
/// serial one for any thread count.
///
/// Memory stays bounded by processing one wave (num_threads chunks) at a
/// time instead of materializing every row of the cube up front.

#ifndef SCDWARF_MAPPER_PARALLEL_ROWS_H_
#define SCDWARF_MAPPER_PARALLEL_ROWS_H_

#include <algorithm>
#include <cstddef>
#include <utility>

#include "common/parallel.h"
#include "common/result.h"

namespace scdwarf::mapper {

/// Default items (nodes) per generation chunk.
inline constexpr size_t kDefaultRowChunkItems = 1024;

/// \brief Runs \p gen over contiguous chunks of [0, n) — concurrently when
/// \p num_threads > 1 — and feeds each chunk's output to \p apply in chunk
/// order.
///
/// \p gen has signature T(size_t begin, size_t end) and must be pure with
/// respect to shared state; \p apply has signature Status(T) and runs only
/// on the calling thread. Because chunk boundaries depend only on
/// (n, chunk_items, num_threads) and application is ordered, the apply
/// sequence is independent of scheduling.
template <typename T, typename Gen, typename Apply>
Status GenerateApplyChunks(int num_threads, size_t n, size_t chunk_items,
                           Gen&& gen, Apply&& apply) {
  if (n == 0) return Status::OK();
  if (chunk_items == 0) chunk_items = 1;
  if (num_threads <= 1) {
    for (size_t begin = 0; begin < n; begin += chunk_items) {
      SCD_RETURN_IF_ERROR(apply(gen(begin, std::min(n, begin + chunk_items))));
    }
    return Status::OK();
  }
  ThreadPool pool(num_threads);
  size_t wave_items = chunk_items * static_cast<size_t>(num_threads);
  for (size_t wave = 0; wave < n; wave += wave_items) {
    size_t wave_n = std::min(n, wave + wave_items) - wave;
    // One near-equal shard per worker ~= chunk_items items each.
    std::vector<T> outputs = ParallelMapShards<T>(
        pool, wave_n, [&](const ShardRange& shard) {
          return gen(wave + shard.begin, wave + shard.end);
        });
    for (T& output : outputs) {
      SCD_RETURN_IF_ERROR(apply(std::move(output)));
    }
  }
  return Status::OK();
}

}  // namespace scdwarf::mapper

#endif  // SCDWARF_MAPPER_PARALLEL_ROWS_H_
