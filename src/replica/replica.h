/// \file replica.h
/// \brief A replica serving process: loads the newest epoch snapshot file
/// from a spool directory, serves it read-only over TCP, and follows later
/// epochs either by publisher notification ("load_snapshot" frames) or by
/// polling the spool.
///
/// Replicas never mutate snapshot files — they mmap them PROT_READ (see
/// snapshot.h) — and never apply updates themselves; the single publisher
/// process owns the write path, replicas fan out the read path. Each replica
/// retains recent epochs (ServerOptions.retain_epochs) so a router can fail
/// a mid-drain cursor over to it at the epoch the cursor started on.

#ifndef SCDWARF_REPLICA_REPLICA_H_
#define SCDWARF_REPLICA_REPLICA_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "common/metrics.h"
#include "common/result.h"
#include "server/query_server.h"
#include "server/tcp_server.h"

namespace scdwarf::replica {

/// \brief Replica knobs.
struct ReplicaOptions {
  std::string snapshot_dir;  ///< spool to bootstrap + follow (required)
  uint16_t port = 0;         ///< 0 = kernel-assigned
  /// Address the TCP listener binds ("0.0.0.0" serves every interface —
  /// required when the spool is a shared filesystem and clients are remote).
  std::string bind_address = server::TcpServer::kLoopback;
  int num_workers = 1;
  size_t cache_capacity = 4096;
  size_t max_sessions = 64;
  size_t retain_epochs = 4;
  /// Spool poll period; 0 relies on publisher load_snapshot notifications.
  int poll_interval_ms = 0;
  /// How long Start() waits for the first loadable snapshot file to appear
  /// before giving up (the publisher may still be starting).
  int bootstrap_wait_ms = 10000;
  size_t max_frame_bytes = 1 << 20;
};

/// \brief One replica process: QueryServer (allow_snapshot_load) + TcpServer
/// + optional spool-poll thread.
class ReplicaServer {
 public:
  explicit ReplicaServer(ReplicaOptions options);
  ~ReplicaServer();

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  /// \brief Waits for a loadable snapshot to appear in the spool (up to
  /// bootstrap_wait_ms), then catches up: the trailing retain_epochs spool
  /// files are loaded oldest-first, so a restarted replica rejoins at the
  /// newest spooled epoch — without waiting for a publisher notification —
  /// with its epoch-retention window already populated for epoch-pinned
  /// router failover. Corrupt or truncated files are skipped (counted by
  /// replica_snapshot_load_failures_total), never fatal, as long as at
  /// least one file loads.
  Status Start();

  /// \brief Stops serving and joins the poll thread. Idempotent.
  void Stop();

  int port() const { return tcp_ != nullptr ? tcp_->port() : 0; }
  uint64_t epoch() const { return server_ != nullptr ? server_->epoch() : 0; }
  server::QueryServer* server() { return server_.get(); }
  server::TcpServer* tcp() { return tcp_.get(); }

  /// \brief Loads every spool snapshot newer than the current epoch, in
  /// epoch order. Returns how many were loaded. A file that fails to load
  /// (truncated, bad magic, mid-rename garbage) is skipped with
  /// replica_snapshot_load_failures_total bumped — the next good file still
  /// loads and serving never stops; a failed path is not re-attempted until
  /// its size changes. The poll thread calls this periodically; tests call
  /// it directly.
  Result<size_t> PollOnce();

 private:
  /// True when \p path already failed at its current size (so one bad file
  /// is counted once, not once per poll).
  bool AlreadyFailed(const std::string& path);
  void RememberFailure(const std::string& path, const Status& status);

  ReplicaOptions options_;
  std::unique_ptr<server::QueryServer> server_;
  std::unique_ptr<server::TcpServer> tcp_;
  metrics::Counter* load_failures_;  ///< replica_snapshot_load_failures_total
  metrics::Counter* catchup_loads_;  ///< replica_catchup_loads_total
  std::mutex failed_mu_;
  std::map<std::string, uint64_t> failed_sizes_;  ///< guarded by failed_mu_
  std::mutex poll_mu_;
  std::condition_variable poll_cv_;
  bool stopping_ = false;  ///< guarded by poll_mu_
  std::thread poll_thread_;
};

/// \brief Publisher-side fan-out notifier: tells every replica to load a
/// freshly spooled snapshot file. Wire each publish through
/// ServerOptions.post_publish.
class SnapshotNotifier {
 public:
  explicit SnapshotNotifier(std::vector<client::Endpoint> replicas,
                            client::ClientOptions options = {});

  /// \brief Sends {"op":"load_snapshot","path":...} to every replica.
  /// Best-effort: a down replica catches up from the spool (or the next
  /// notification) instead of blocking the publisher. Returns how many
  /// replicas acknowledged the load.
  size_t NotifyAll(const std::string& path);

 private:
  std::vector<std::unique_ptr<client::ClientPool>> pools_;
};

}  // namespace scdwarf::replica

#endif  // SCDWARF_REPLICA_REPLICA_H_
