/// \file snapshot.h
/// \brief Epoch cube snapshot files: the publisher serializes each published
/// epoch once to an immutable `.cf` file, and every replica process opens it
/// read-only via mmap — one serialization fans out to N replicas, and the
/// kernel page cache holds a single copy of the file bytes no matter how
/// many replicas on the machine map it.
///
/// File layout, current version v3 (all integers little-endian, strings
/// length-prefixed):
///
///   "SCDWCUBE"  u32 version  u64 epoch
///   schema      (name, dimensions + dimension tables + ordered flags,
///                measure, aggregate)
///   dictionaries (per dimension: id-ordered value list)
///   root id, node count, cell count, CubeStats block (6 × u64)
///   padding to an 8-byte file offset
///   FlatNode[node count]   — raw 24-byte arena records, first_cell
///                            globalized across chunks
///   DwarfCell[cell count]  — raw 16-byte cell records
///   "SCDWEND\0" trailer
///
/// v3 is a direct image of the flat arena (dwarf_cube.h, DESIGN.md §12):
/// loading validates the arrays in place (id bounds, level monotonicity,
/// strict cell sort) and points the cube at the mapping, which stays mapped
/// for the cube's lifetime via the arena's keepalive handle — replica load
/// is validate-and-point, not rebuild. v1 (unordered dims, per-node records)
/// and v2 (ordered flags, per-node records) still load through the
/// CubeAssembler rebuild path.
///
/// Nodes are written in arena-id order *including dead merge slots* (ids an
/// incremental merge left unreachable), so node ids survive the round trip
/// unchanged and the writer never needs a reachability pass. Dead slots are
/// still well-formed nodes, so validation accepts them, and compaction
/// (EpochCubeStore::kCompactionChunkLimit) bounds how many a long-lived
/// publisher accumulates.
///
/// Writes go to a temp file in the same directory followed by an atomic
/// rename: a reader never observes a partially-written snapshot under the
/// final name. Loading maps the file PROT_READ and parses straight out of
/// the mapping (bounds-checked; a truncated or corrupt file is an error,
/// never a crash). The snapshot file itself is never written to by a reader.

#ifndef SCDWARF_REPLICA_SNAPSHOT_H_
#define SCDWARF_REPLICA_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "dwarf/dwarf_cube.h"

namespace scdwarf::replica {

/// \brief One loaded snapshot: the epoch the file was published under plus
/// the reassembled cube.
struct CubeSnapshot {
  uint64_t epoch = 0;
  dwarf::DwarfCube cube;
};

/// \brief A snapshot file discovered in a spool directory.
struct SnapshotFileEntry {
  uint64_t epoch = 0;
  std::string path;
};

/// \brief Serializes \p cube under \p epoch to \p path (temp file + atomic
/// rename). Overwrites an existing file of the same name.
Status WriteCubeSnapshot(const dwarf::DwarfCube& cube, uint64_t epoch,
                         const std::string& path);

/// \brief Maps \p path read-only and reassembles the cube. IoError when the
/// file cannot be opened or mapped; ParseError / InvalidArgument when the
/// bytes are truncated or corrupt.
Result<CubeSnapshot> LoadCubeSnapshot(const std::string& path);

/// \brief Canonical spool file name of \p epoch: "epoch-<20 digits>.cf".
/// Zero-padded so lexicographic directory order is epoch order.
std::string SnapshotFileName(uint64_t epoch);

/// \brief Scans \p dir for snapshot files (by the SnapshotFileName pattern)
/// and returns them sorted by ascending epoch. An empty directory yields an
/// empty list; a missing directory is an IoError.
Result<std::vector<SnapshotFileEntry>> ListSnapshots(const std::string& dir);

}  // namespace scdwarf::replica

#endif  // SCDWARF_REPLICA_SNAPSHOT_H_
