// scdwarf_replica — read-only replica serving process.
//
// Loads the newest epoch snapshot file from a spool directory (written by
// scdwarf_server --snapshot-dir=...), serves it over the wire protocol, and
// follows later epochs via publisher "load_snapshot" notifications and/or
// spool polling:
//
//   scdwarf_replica --snapshot-dir=DIR [--port=N] [--bind=ADDR] [--workers=N]
//                   [--poll-ms=N] [--cache-capacity=N] [--retain-epochs=N]
//                   [--metrics-dump=PATH] [--trace-dump=PATH]
//                   [--prometheus-dump=PATH]
//
//   --snapshot-dir=DIR   spool directory to bootstrap from (required)
//   --port=N             TCP port (default 0 = kernel-assigned)
//   --bind=ADDR          IPv4 address to listen on (default 127.0.0.1;
//                        0.0.0.0 serves every interface — use when the spool
//                        is on a shared filesystem and clients are remote)
//   --workers=N          query worker threads (default 1)
//   --poll-ms=N          poll the spool every N ms for new epochs
//                        (default 0 = rely on load_snapshot notifications)
//   --cache-capacity=N   result-cache entries (default 4096; 0 disables)
//   --retain-epochs=N    epochs kept for epoch-pinned query_open (default 4)
//   --metrics-dump=PATH  on exit, write the metric registry snapshot as JSON
//   --trace-dump=PATH    enable span tracing; write chrome://tracing JSON
//   --prometheus-dump=PATH  on exit, write Prometheus text-format metrics
//
// Prints "replica serving on ADDR:PORT (epoch N, ...)" once ready —
// parent processes (bench_router) parse that line, so it is flushed
// explicitly. Runs until stdin closes or a "quit" line arrives.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/trace.h"
#include "replica/replica.h"

using namespace scdwarf;

namespace {

bool WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  replica::ReplicaOptions options;
  std::string metrics_dump;
  std::string trace_dump;
  std::string prometheus_dump;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--snapshot-dir=", 0) == 0) {
      options.snapshot_dir = arg.substr(15);
    } else if (arg.rfind("--port=", 0) == 0) {
      options.port = static_cast<uint16_t>(std::atoi(arg.c_str() + 7));
    } else if (arg.rfind("--bind=", 0) == 0) {
      options.bind_address = arg.substr(7);
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.num_workers = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--poll-ms=", 0) == 0) {
      options.poll_interval_ms = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--cache-capacity=", 0) == 0) {
      options.cache_capacity =
          static_cast<size_t>(std::atol(arg.c_str() + 17));
    } else if (arg.rfind("--retain-epochs=", 0) == 0) {
      options.retain_epochs = static_cast<size_t>(std::atol(arg.c_str() + 16));
    } else if (arg.rfind("--metrics-dump=", 0) == 0) {
      metrics_dump = arg.substr(15);
    } else if (arg.rfind("--trace-dump=", 0) == 0) {
      trace_dump = arg.substr(13);
    } else if (arg.rfind("--prometheus-dump=", 0) == 0) {
      prometheus_dump = arg.substr(18);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  if (options.snapshot_dir.empty()) {
    std::cerr << "usage: scdwarf_replica --snapshot-dir=DIR [--port=N] "
                 "[--bind=ADDR] [--workers=N] [--poll-ms=N] "
                 "[--cache-capacity=N] [--retain-epochs=N]\n";
    return 2;
  }
  if (!trace_dump.empty()) trace::SetEnabled(true);

  replica::ReplicaServer replica_server(options);
  if (Status status = replica_server.Start(); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  // stdout may be a pipe (bench_router forks replicas and parses this line):
  // flush so the parent is never left blocking on a buffered banner.
  std::cout << "replica serving on " << replica_server.tcp()->bind_address()
            << ":" << replica_server.port()
            << " (epoch " << replica_server.epoch() << ", "
            << replica_server.server()->num_workers() << " worker(s), spool "
            << options.snapshot_dir << ")" << std::endl;

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
  }
  replica_server.Stop();
  if (!metrics_dump.empty() &&
      !WriteTextFile(metrics_dump,
                     replica_server.server()->MetricsJson() + "\n")) {
    std::cerr << "failed to write metrics snapshot to " << metrics_dump
              << "\n";
    return 1;
  }
  if (!prometheus_dump.empty() &&
      !WriteTextFile(prometheus_dump,
                     replica_server.server()->MetricsText())) {
    std::cerr << "failed to write prometheus metrics to " << prometheus_dump
              << "\n";
    return 1;
  }
  if (!trace_dump.empty() &&
      !WriteTextFile(trace_dump, trace::ExportChromeJson())) {
    std::cerr << "failed to write trace to " << trace_dump << "\n";
    return 1;
  }
  return 0;
}
