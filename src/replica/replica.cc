#include "replica/replica.h"

#include <chrono>
#include <utility>

#include "json/json_parser.h"
#include "json/json_value.h"
#include "replica/snapshot.h"

namespace scdwarf::replica {

ReplicaServer::ReplicaServer(ReplicaOptions options)
    : options_(std::move(options)) {}

ReplicaServer::~ReplicaServer() { Stop(); }

Status ReplicaServer::Start() {
  if (server_ != nullptr) {
    return Status::FailedPrecondition("replica already started");
  }
  if (options_.snapshot_dir.empty()) {
    return Status::InvalidArgument("replica requires a snapshot directory");
  }
  // Bootstrap: wait for the publisher to spool its first snapshot. A missing
  // directory counts as "not yet" too — the publisher may create it.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.bootstrap_wait_ms);
  std::vector<SnapshotFileEntry> entries;
  for (;;) {
    Result<std::vector<SnapshotFileEntry>> listed =
        ListSnapshots(options_.snapshot_dir);
    if (listed.ok() && !listed->empty()) {
      entries = std::move(*listed);
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::NotFound("no snapshot appeared in " +
                              options_.snapshot_dir + " within " +
                              std::to_string(options_.bootstrap_wait_ms) +
                              "ms");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const SnapshotFileEntry& newest = entries.back();
  SCD_ASSIGN_OR_RETURN(CubeSnapshot loaded, LoadCubeSnapshot(newest.path));
  server::ServerOptions server_options;
  server_options.num_workers = options_.num_workers;
  server_options.cache_capacity = options_.cache_capacity;
  server_options.max_sessions = options_.max_sessions;
  server_options.retain_epochs = options_.retain_epochs;
  server_options.allow_snapshot_load = true;
  server_options.initial_epoch = loaded.epoch;
  server_ = std::make_unique<server::QueryServer>(std::move(loaded.cube),
                                                  std::move(server_options));
  tcp_ = std::make_unique<server::TcpServer>(server_.get(),
                                             options_.max_frame_bytes);
  Status started = tcp_->Start(options_.port);
  if (!started.ok()) {
    tcp_.reset();
    server_.reset();
    return started;
  }
  if (options_.poll_interval_ms > 0) {
    poll_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(poll_mu_);
      while (!stopping_) {
        poll_cv_.wait_for(
            lock, std::chrono::milliseconds(options_.poll_interval_ms));
        if (stopping_) break;
        lock.unlock();
        (void)PollOnce();  // spool errors are transient; keep polling
        lock.lock();
      }
    });
  }
  return Status::OK();
}

Result<size_t> ReplicaServer::PollOnce() {
  if (server_ == nullptr) {
    return Status::FailedPrecondition("replica not started");
  }
  SCD_ASSIGN_OR_RETURN(std::vector<SnapshotFileEntry> entries,
                       ListSnapshots(options_.snapshot_dir));
  size_t loaded = 0;
  for (const SnapshotFileEntry& entry : entries) {
    if (entry.epoch <= server_->epoch()) continue;
    SCD_RETURN_IF_ERROR(server_->LoadSnapshot(entry.path).status());
    ++loaded;
  }
  return loaded;
}

void ReplicaServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(poll_mu_);
    stopping_ = true;
  }
  poll_cv_.notify_all();
  if (poll_thread_.joinable()) poll_thread_.join();
  if (tcp_ != nullptr) tcp_->Stop();
}

SnapshotNotifier::SnapshotNotifier(std::vector<client::Endpoint> replicas,
                                   client::ClientOptions options) {
  pools_.reserve(replicas.size());
  for (client::Endpoint& endpoint : replicas) {
    pools_.push_back(
        std::make_unique<client::ClientPool>(std::move(endpoint), options));
  }
}

size_t SnapshotNotifier::NotifyAll(const std::string& path) {
  json::JsonObject request;
  request.emplace_back("op", json::JsonValue("load_snapshot"));
  request.emplace_back("path", json::JsonValue(path));
  const std::string frame =
      json::SerializeJson(json::JsonValue(std::move(request)));
  size_t acknowledged = 0;
  for (const std::unique_ptr<client::ClientPool>& pool : pools_) {
    Result<std::string> response = pool->Call(frame);
    if (!response.ok()) continue;
    Result<json::JsonValue> root = json::ParseJson(*response);
    if (!root.ok()) continue;
    Result<json::JsonValue> ok = root->Get("ok");
    if (!ok.ok()) continue;
    Result<bool> flag = ok->AsBool();
    if (flag.ok() && *flag) ++acknowledged;
  }
  return acknowledged;
}

}  // namespace scdwarf::replica
