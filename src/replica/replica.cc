#include "replica/replica.h"

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <utility>

#include "json/json_parser.h"
#include "json/json_value.h"
#include "replica/snapshot.h"

namespace scdwarf::replica {

namespace {

/// Size of \p path, or 0 when it vanished (a failed file that disappears is
/// forgotten and a recreated one re-attempted).
uint64_t FileSize(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

ReplicaServer::ReplicaServer(ReplicaOptions options)
    : options_(std::move(options)),
      load_failures_(metrics::GlobalRegistry().GetCounter(
          "replica_snapshot_load_failures_total", {},
          "spool snapshot files that failed to load (truncated, bad magic, "
          "mid-rename garbage) and were skipped")),
      catchup_loads_(metrics::GlobalRegistry().GetCounter(
          "replica_catchup_loads_total", {},
          "snapshot files loaded by spool catch-up (start-up fast-forward or "
          "poll) rather than by publisher notification")) {}

ReplicaServer::~ReplicaServer() { Stop(); }

Status ReplicaServer::Start() {
  if (server_ != nullptr) {
    return Status::FailedPrecondition("replica already started");
  }
  if (options_.snapshot_dir.empty()) {
    return Status::InvalidArgument("replica requires a snapshot directory");
  }
  // Bootstrap: wait for the publisher to spool its first *loadable* snapshot.
  // A missing directory counts as "not yet" too — the publisher may create
  // it — and so does a spool holding only corrupt files (each counted once
  // via replica_snapshot_load_failures_total): the publisher may still be
  // mid-write. Of the trailing retain_epochs files, the oldest loadable one
  // becomes the bootstrap cube; PollOnce() then fast-forwards through every
  // newer file, so a restarted replica rejoins at the newest spooled epoch
  // with its retention window repopulated for epoch-pinned router failover —
  // no publisher notification needed.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.bootstrap_wait_ms);
  server::ServerOptions server_options;
  server_options.num_workers = options_.num_workers;
  server_options.cache_capacity = options_.cache_capacity;
  server_options.max_sessions = options_.max_sessions;
  server_options.retain_epochs = options_.retain_epochs;
  server_options.allow_snapshot_load = true;
  size_t seen = 0;
  for (;;) {
    Result<std::vector<SnapshotFileEntry>> listed =
        ListSnapshots(options_.snapshot_dir);
    if (listed.ok() && !listed->empty()) {
      seen = listed->size();
      size_t first = 0;
      if (options_.retain_epochs > 0 &&
          listed->size() > options_.retain_epochs) {
        first = listed->size() - options_.retain_epochs;
      }
      for (size_t i = first; i < listed->size() && server_ == nullptr; ++i) {
        const SnapshotFileEntry& entry = (*listed)[i];
        if (AlreadyFailed(entry.path)) continue;
        Result<CubeSnapshot> loaded = LoadCubeSnapshot(entry.path);
        if (!loaded.ok()) {
          RememberFailure(entry.path, loaded.status());
          continue;
        }
        server_options.initial_epoch = loaded->epoch;
        server_ = std::make_unique<server::QueryServer>(
            std::move(loaded->cube), std::move(server_options));
      }
      if (server_ != nullptr) break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::NotFound(
          "no loadable snapshot appeared in " + options_.snapshot_dir +
          " within " + std::to_string(options_.bootstrap_wait_ms) + "ms (" +
          std::to_string(seen) + " files present)");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Fast-forward through the remaining newer files via the same skip-and-count
  // path the poll thread uses (errors here are transient; the poll thread or
  // the next notification retries).
  (void)PollOnce();
  tcp_ = std::make_unique<server::TcpServer>(server_.get(),
                                             options_.max_frame_bytes);
  Status started = tcp_->Start(options_.port, options_.bind_address);
  if (!started.ok()) {
    tcp_.reset();
    server_.reset();
    return started;
  }
  if (options_.poll_interval_ms > 0) {
    poll_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(poll_mu_);
      while (!stopping_) {
        poll_cv_.wait_for(
            lock, std::chrono::milliseconds(options_.poll_interval_ms));
        if (stopping_) break;
        lock.unlock();
        (void)PollOnce();  // spool errors are transient; keep polling
        lock.lock();
      }
    });
  }
  return Status::OK();
}

Result<size_t> ReplicaServer::PollOnce() {
  if (server_ == nullptr) {
    return Status::FailedPrecondition("replica not started");
  }
  SCD_ASSIGN_OR_RETURN(std::vector<SnapshotFileEntry> entries,
                       ListSnapshots(options_.snapshot_dir));
  size_t loaded = 0;
  for (const SnapshotFileEntry& entry : entries) {
    if (entry.epoch <= server_->epoch()) continue;
    if (AlreadyFailed(entry.path)) continue;
    Result<uint64_t> result = server_->LoadSnapshot(entry.path);
    if (result.ok()) {
      ++loaded;
      catchup_loads_->Increment();
      continue;
    }
    // A concurrent load_snapshot notification may have raced us past this
    // epoch — that is not a bad file, and the epoch guard above skips it on
    // the next pass.
    if (result.status().IsFailedPrecondition() &&
        entry.epoch <= server_->epoch()) {
      continue;
    }
    RememberFailure(entry.path, result.status());
  }
  return loaded;
}

bool ReplicaServer::AlreadyFailed(const std::string& path) {
  const uint64_t size = FileSize(path);
  std::lock_guard<std::mutex> lock(failed_mu_);
  auto it = failed_sizes_.find(path);
  return it != failed_sizes_.end() && it->second == size;
}

void ReplicaServer::RememberFailure(const std::string& path,
                                    const Status& status) {
  load_failures_->Increment();
  std::fprintf(stderr, "scdwarf_replica: skipping snapshot %s: %s\n",
               path.c_str(), status.ToString().c_str());
  std::lock_guard<std::mutex> lock(failed_mu_);
  failed_sizes_[path] = FileSize(path);
}

void ReplicaServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(poll_mu_);
    stopping_ = true;
  }
  poll_cv_.notify_all();
  if (poll_thread_.joinable()) poll_thread_.join();
  if (tcp_ != nullptr) tcp_->Stop();
}

SnapshotNotifier::SnapshotNotifier(std::vector<client::Endpoint> replicas,
                                   client::ClientOptions options) {
  pools_.reserve(replicas.size());
  for (client::Endpoint& endpoint : replicas) {
    pools_.push_back(
        std::make_unique<client::ClientPool>(std::move(endpoint), options));
  }
}

size_t SnapshotNotifier::NotifyAll(const std::string& path) {
  json::JsonObject request;
  request.emplace_back("op", json::JsonValue("load_snapshot"));
  request.emplace_back("path", json::JsonValue(path));
  const std::string frame =
      json::SerializeJson(json::JsonValue(std::move(request)));
  size_t acknowledged = 0;
  for (const std::unique_ptr<client::ClientPool>& pool : pools_) {
    Result<std::string> response = pool->Call(frame);
    if (!response.ok()) continue;
    Result<json::JsonValue> root = json::ParseJson(*response);
    if (!root.ok()) continue;
    Result<json::JsonValue> ok = root->Get("ok");
    if (!ok.ok()) continue;
    Result<bool> flag = ok->AsBool();
    if (flag.ok() && *flag) ++acknowledged;
  }
  return acknowledged;
}

}  // namespace scdwarf::replica
