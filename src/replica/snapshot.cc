#include "replica/snapshot.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace scdwarf::replica {

namespace {

constexpr char kMagic[8] = {'S', 'C', 'D', 'W', 'C', 'U', 'B', 'E'};
constexpr char kTrailer[8] = {'S', 'C', 'D', 'W', 'E', 'N', 'D', '\0'};
/// v2 adds one ordered-flag byte per dimension spec (rank views themselves
/// are not serialized — the load path recomputes them from the
/// dictionaries, which are identical to the publisher's, so the views are
/// too). v1 files load as all-unordered.
///
/// v3 replaces the per-node records with a direct image of the flat arena
/// (dwarf_cube.h): after the dictionaries come root/node/cell counts, the
/// CubeStats block, padding to an 8-byte file offset, then the raw FlatNode
/// and DwarfCell arrays (first_cell globalized across chunks). Loading a v3
/// file validates the arrays in place and points the cube at the mapping —
/// no per-node rebuild — with the mapping pinned for the cube's lifetime.
/// v1/v2 files still load through the CubeAssembler path below.
constexpr uint32_t kVersion = 3;
constexpr uint32_t kMinVersion = 1;

// The v3 arrays are memcpy'd native structs; every producer and consumer of
// snapshot files in this codebase is little-endian (x86-64 / aarch64), and
// the scalar fields of v1/v2 were already little-endian on the wire.
static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
              "snapshot v3 writes native little-endian arrays");

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked cursor over the mapped file bytes. Every read either
/// advances or reports the corruption, so a truncated file can never walk
/// past the mapping.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }

  Status Need(size_t n) {
    if (remaining() < n) {
      return Status::ParseError("snapshot truncated: need " +
                                std::to_string(n) + " bytes at offset " +
                                std::to_string(pos_) + ", have " +
                                std::to_string(remaining()));
    }
    return Status::OK();
  }

  Status ReadRaw(void* out, size_t n) {
    SCD_RETURN_IF_ERROR(Need(n));
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Result<uint16_t> ReadU16() {
    SCD_RETURN_IF_ERROR(Need(2));
    uint16_t v = 0;
    for (int i = 1; i >= 0; --i) {
      v = static_cast<uint16_t>(
          (v << 8) | static_cast<unsigned char>(data_[pos_ + i]));
    }
    pos_ += 2;
    return v;
  }

  Result<uint32_t> ReadU32() {
    SCD_RETURN_IF_ERROR(Need(4));
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(data_[pos_ + i]);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> ReadU64() {
    SCD_RETURN_IF_ERROR(Need(8));
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(data_[pos_ + i]);
    }
    pos_ += 8;
    return v;
  }

  Result<std::string> ReadString() {
    SCD_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
    SCD_RETURN_IF_ERROR(Need(n));
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

  /// Current byte pointer (for pointing arrays into the mapping).
  const char* cursor() const { return data_ + pos_; }

  Status Skip(size_t n) {
    SCD_RETURN_IF_ERROR(Need(n));
    pos_ += n;
    return Status::OK();
  }

  /// Skips padding up to the next 8-byte-aligned file offset.
  Status AlignTo8() { return Skip((8 - pos_ % 8) % 8); }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// RAII over the read-only mapping. Held by shared_ptr when a v3 load points
/// the cube's arena straight into the mapped bytes (the keepalive handle of
/// dwarf::NodeArena); released at end of parse for v1/v2 rebuild loads.
struct Mapping {
  void* addr = MAP_FAILED;
  size_t size = 0;
  ~Mapping() {
    if (addr != MAP_FAILED && size > 0) ::munmap(addr, size);
  }
};

Status WriteFileAtomically(const std::string& path,
                           const std::string& contents) {
  std::string tmp = path + ".tmp." + std::to_string(::getpid());
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open " + tmp + ": " +
                           std::string(std::strerror(errno)));
  }
  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::IoError("write " + tmp + ": " +
                                      std::string(std::strerror(errno)));
      ::close(fd);
      ::unlink(tmp.c_str());
      return status;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status status = Status::IoError("fsync " + tmp + ": " +
                                    std::string(std::strerror(errno)));
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status status = Status::IoError("rename " + tmp + " -> " + path + ": " +
                                    std::string(std::strerror(errno)));
    ::unlink(tmp.c_str());
    return status;
  }
  return Status::OK();
}

}  // namespace

Status WriteCubeSnapshot(const dwarf::DwarfCube& cube, uint64_t epoch,
                         const std::string& path) {
  const dwarf::CubeSchema& schema = cube.schema();
  // The image stores cell runs with 32-bit offsets; a cube anywhere near
  // these bounds (> 2^32 cells ≈ 64 GiB of cells) cannot be snapshotted.
  uint64_t total_cells = 0;
  for (dwarf::NodeId id = 0; id < cube.num_nodes(); ++id) {
    total_cells += cube.node(id).cells.size();
  }
  if (cube.num_nodes() >= dwarf::kNullNode ||
      total_cells > static_cast<uint64_t>(UINT32_MAX)) {
    return Status::InvalidArgument("cube too large for a v3 snapshot image");
  }
  std::string out;
  // Exact-ish pre-size: header + dictionaries dominate the slack; the arrays
  // are appended in two block copies per node.
  out.reserve(512 + total_cells * sizeof(dwarf::DwarfCell) +
              cube.num_nodes() * sizeof(dwarf::FlatNode));
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, kVersion);
  PutU64(&out, epoch);
  PutString(&out, schema.name());
  PutU32(&out, static_cast<uint32_t>(schema.num_dimensions()));
  for (const dwarf::DimensionSpec& dim : schema.dimensions()) {
    PutString(&out, dim.name);
    PutString(&out, dim.dimension_table);
    out.push_back(dim.ordered ? 1 : 0);
  }
  PutString(&out, schema.measure_name());
  PutU32(&out, static_cast<uint32_t>(schema.agg()));
  for (size_t d = 0; d < cube.num_dimensions(); ++d) {
    const dwarf::Dictionary& dict = cube.dictionary(d);
    PutU64(&out, dict.size());
    for (dwarf::DimKey id = 0; id < dict.size(); ++id) {
      PutString(&out, dict.DecodeUnchecked(id));
    }
  }
  PutU32(&out, cube.root());
  PutU64(&out, cube.num_nodes());
  PutU64(&out, total_cells);
  const dwarf::CubeStats& stats = cube.stats();
  PutU64(&out, stats.node_count);
  PutU64(&out, stats.cell_count);
  PutU64(&out, stats.coalesced_all_count);
  PutU64(&out, stats.tuple_count);
  PutU64(&out, stats.source_tuple_count);
  PutU64(&out, stats.approx_bytes);
  // Pad to an 8-byte file offset so the mmap'd arrays are pointer-aligned
  // (the mapping itself is page-aligned; FlatNode is 24 bytes, so the cell
  // array after it stays 8-aligned too).
  while (out.size() % 8 != 0) out.push_back(0);
  // The node array, with first_cell globalized: chunks are serialized in id
  // order, so the image is one contiguous arena regardless of how many merge
  // chunks the live cube carried.
  uint32_t next_cell = 0;
  for (dwarf::NodeId id = 0; id < cube.num_nodes(); ++id) {
    const dwarf::NodeView node = cube.node(id);
    dwarf::FlatNode entry;
    entry.first_cell = next_cell;
    entry.num_cells = static_cast<uint32_t>(node.cells.size());
    entry.all_child = node.all_child;
    entry.level = node.level;
    entry.flags = node.all_coalesced ? dwarf::FlatNode::kAllCoalesced : 0;
    entry.all_measure = node.all_measure;
    out.append(reinterpret_cast<const char*>(&entry), sizeof(entry));
    next_cell += entry.num_cells;
  }
  for (dwarf::NodeId id = 0; id < cube.num_nodes(); ++id) {
    const dwarf::NodeView node = cube.node(id);
    out.append(reinterpret_cast<const char*>(node.cells.data()),
               node.cells.size() * sizeof(dwarf::DwarfCell));
  }
  out.append(kTrailer, sizeof(kTrailer));
  return WriteFileAtomically(path, out);
}

Result<CubeSnapshot> LoadCubeSnapshot(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " +
                           std::string(std::strerror(errno)));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    Status status = Status::IoError("fstat " + path + ": " +
                                    std::string(std::strerror(errno)));
    ::close(fd);
    return status;
  }
  auto mapping = std::make_shared<Mapping>();
  mapping->size = static_cast<size_t>(st.st_size);
  if (mapping->size > 0) {
    // PROT_READ + MAP_SHARED: every replica on the machine shares one page
    // cache copy of the file, and any write attempt faults instead of
    // silently corrupting the published artifact.
    mapping->addr =
        ::mmap(nullptr, mapping->size, PROT_READ, MAP_SHARED, fd, 0);
  }
  ::close(fd);
  if (mapping->size == 0 || mapping->addr == MAP_FAILED) {
    return Status::IoError("mmap " + path + ": " +
                           (mapping->size == 0 ? std::string("empty file")
                                               : std::strerror(errno)));
  }
  Reader in(static_cast<const char*>(mapping->addr), mapping->size);
  char magic[8];
  SCD_RETURN_IF_ERROR(in.ReadRaw(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError(path + " is not a cube snapshot (bad magic)");
  }
  SCD_ASSIGN_OR_RETURN(uint32_t version, in.ReadU32());
  if (version < kMinVersion || version > kVersion) {
    return Status::InvalidArgument("snapshot version " +
                                   std::to_string(version) +
                                   " is not supported (want " +
                                   std::to_string(kMinVersion) + ".." +
                                   std::to_string(kVersion) + ")");
  }
  SCD_ASSIGN_OR_RETURN(uint64_t epoch, in.ReadU64());
  SCD_ASSIGN_OR_RETURN(std::string schema_name, in.ReadString());
  SCD_ASSIGN_OR_RETURN(uint32_t num_dims, in.ReadU32());
  if (num_dims == 0 || num_dims > 64) {
    return Status::ParseError("snapshot has implausible dimension count " +
                              std::to_string(num_dims));
  }
  std::vector<dwarf::DimensionSpec> dims;
  dims.reserve(num_dims);
  for (uint32_t d = 0; d < num_dims; ++d) {
    SCD_ASSIGN_OR_RETURN(std::string name, in.ReadString());
    SCD_ASSIGN_OR_RETURN(std::string table, in.ReadString());
    bool ordered = false;  // v1 predates ordered dims
    if (version >= 2) {
      char flag = 0;
      SCD_RETURN_IF_ERROR(in.ReadRaw(&flag, 1));
      ordered = flag != 0;
    }
    dims.emplace_back(std::move(name), std::move(table), ordered);
  }
  SCD_ASSIGN_OR_RETURN(std::string measure_name, in.ReadString());
  SCD_ASSIGN_OR_RETURN(uint32_t agg_raw, in.ReadU32());
  if (agg_raw > static_cast<uint32_t>(dwarf::AggFn::kMax)) {
    return Status::ParseError("snapshot has unknown aggregate id " +
                              std::to_string(agg_raw));
  }
  dwarf::CubeSchema schema(std::move(schema_name), std::move(dims),
                           std::move(measure_name),
                           static_cast<dwarf::AggFn>(agg_raw));
  std::vector<dwarf::Dictionary> dictionaries;
  dictionaries.reserve(num_dims);
  for (uint32_t d = 0; d < num_dims; ++d) {
    SCD_ASSIGN_OR_RETURN(uint64_t count, in.ReadU64());
    // Each value needs at least its 4-byte length prefix.
    if (count * 4 > in.remaining()) {
      return Status::ParseError("snapshot dictionary " + std::to_string(d) +
                                " claims " + std::to_string(count) +
                                " values past end of file");
    }
    dwarf::Dictionary dict(schema.dimensions()[d].name);
    for (uint64_t i = 0; i < count; ++i) {
      SCD_ASSIGN_OR_RETURN(std::string value, in.ReadString());
      dict.Encode(value);
    }
    if (dict.size() != count) {
      return Status::ParseError("snapshot dictionary " + std::to_string(d) +
                                " holds duplicate values");
    }
    dictionaries.push_back(std::move(dict));
  }
  SCD_ASSIGN_OR_RETURN(uint32_t root, in.ReadU32());
  SCD_ASSIGN_OR_RETURN(uint64_t num_nodes, in.ReadU64());
  if (version >= 3) {
    // Direct arena image: validate the raw arrays in place and point the
    // cube at the mapping (pinned by the arena's keepalive handle). No
    // per-node rebuild, no stats walk — load cost is the validation scan.
    SCD_ASSIGN_OR_RETURN(uint64_t num_cells, in.ReadU64());
    if (num_nodes >= dwarf::kNullNode ||
        num_cells > static_cast<uint64_t>(UINT32_MAX)) {
      return Status::ParseError("snapshot arena counts exceed 32-bit ids");
    }
    dwarf::CubeStats stats;
    SCD_ASSIGN_OR_RETURN(stats.node_count, in.ReadU64());
    SCD_ASSIGN_OR_RETURN(stats.cell_count, in.ReadU64());
    SCD_ASSIGN_OR_RETURN(stats.coalesced_all_count, in.ReadU64());
    SCD_ASSIGN_OR_RETURN(stats.tuple_count, in.ReadU64());
    SCD_ASSIGN_OR_RETURN(stats.source_tuple_count, in.ReadU64());
    SCD_ASSIGN_OR_RETURN(stats.approx_bytes, in.ReadU64());
    SCD_RETURN_IF_ERROR(in.AlignTo8());
    const auto* nodes = reinterpret_cast<const dwarf::FlatNode*>(in.cursor());
    SCD_RETURN_IF_ERROR(in.Skip(num_nodes * sizeof(dwarf::FlatNode)));
    const auto* cells = reinterpret_cast<const dwarf::DwarfCell*>(in.cursor());
    SCD_RETURN_IF_ERROR(in.Skip(num_cells * sizeof(dwarf::DwarfCell)));
    char trailer[8];
    SCD_RETURN_IF_ERROR(in.ReadRaw(trailer, sizeof(trailer)));
    if (std::memcmp(trailer, kTrailer, sizeof(kTrailer)) != 0) {
      return Status::ParseError(path + " has a corrupt snapshot trailer");
    }
    auto arena = std::make_shared<const dwarf::NodeArena>(
        nodes, num_nodes, cells, num_cells, mapping);
    Result<dwarf::DwarfCube> cube = dwarf::DwarfCube::FromFlatArena(
        std::move(schema), std::move(dictionaries), std::move(arena), root,
        stats);
    if (!cube.ok()) return cube.status().WithContext("loading " + path);
    return CubeSnapshot{epoch, std::move(*cube)};
  }
  // Each node needs at least its 19-byte fixed header.
  if (num_nodes * 19 > in.remaining()) {
    return Status::ParseError("snapshot claims " + std::to_string(num_nodes) +
                              " nodes past end of file");
  }
  dwarf::CubeAssembler assembler(std::move(schema), std::move(dictionaries));
  for (uint64_t i = 0; i < num_nodes; ++i) {
    dwarf::DwarfNode node;
    SCD_ASSIGN_OR_RETURN(node.level, in.ReadU16());
    char flags = 0;
    SCD_RETURN_IF_ERROR(in.ReadRaw(&flags, 1));
    node.all_coalesced = (flags & 1) != 0;
    SCD_ASSIGN_OR_RETURN(node.all_child, in.ReadU32());
    SCD_ASSIGN_OR_RETURN(uint64_t all_measure, in.ReadU64());
    node.all_measure = static_cast<dwarf::Measure>(all_measure);
    SCD_ASSIGN_OR_RETURN(uint32_t num_cells, in.ReadU32());
    if (static_cast<uint64_t>(num_cells) * 16 > in.remaining()) {
      return Status::ParseError("snapshot node " + std::to_string(i) +
                                " claims " + std::to_string(num_cells) +
                                " cells past end of file");
    }
    node.cells.reserve(num_cells);
    for (uint32_t c = 0; c < num_cells; ++c) {
      dwarf::DwarfCell cell;
      SCD_ASSIGN_OR_RETURN(cell.key, in.ReadU32());
      SCD_ASSIGN_OR_RETURN(cell.child, in.ReadU32());
      SCD_ASSIGN_OR_RETURN(uint64_t measure, in.ReadU64());
      cell.measure = static_cast<dwarf::Measure>(measure);
      node.cells.push_back(cell);
    }
    assembler.AddNode(std::move(node));
  }
  SCD_ASSIGN_OR_RETURN(uint64_t tuple_count, in.ReadU64());
  SCD_ASSIGN_OR_RETURN(uint64_t source_tuple_count, in.ReadU64());
  char trailer[8];
  SCD_RETURN_IF_ERROR(in.ReadRaw(trailer, sizeof(trailer)));
  if (std::memcmp(trailer, kTrailer, sizeof(kTrailer)) != 0) {
    return Status::ParseError(path + " has a corrupt snapshot trailer");
  }
  assembler.SetRoot(root);
  assembler.SetTupleCounts(tuple_count, source_tuple_count);
  Result<dwarf::DwarfCube> cube = assembler.Finish();
  if (!cube.ok()) return cube.status().WithContext("loading " + path);
  return CubeSnapshot{epoch, std::move(*cube)};
}

std::string SnapshotFileName(uint64_t epoch) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "epoch-%020llu.cf",
                static_cast<unsigned long long>(epoch));
  return buf;
}

Result<std::vector<SnapshotFileEntry>> ListSnapshots(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return Status::IoError("opendir " + dir + ": " +
                           std::string(std::strerror(errno)));
  }
  std::vector<SnapshotFileEntry> entries;
  while (dirent* entry = ::readdir(handle)) {
    unsigned long long epoch = 0;
    int consumed = 0;
    // Exactly the SnapshotFileName pattern: "epoch-<digits>.cf".
    if (std::sscanf(entry->d_name, "epoch-%20llu.cf%n", &epoch, &consumed) ==
            1 &&
        consumed > 0 && entry->d_name[consumed] == '\0') {
      entries.push_back(
          {epoch, dir + "/" + entry->d_name});
    }
  }
  ::closedir(handle);
  std::sort(entries.begin(), entries.end(),
            [](const SnapshotFileEntry& a, const SnapshotFileEntry& b) {
              return a.epoch < b.epoch;
            });
  return entries;
}

}  // namespace scdwarf::replica
