// scdwarf_router — shard router over a replica fleet.
//
// Speaks the same wire protocol as the servers it fronts: one-shot queries
// hash across healthy replicas, cursor sessions stick to one replica (with
// epoch-pinned failover mid-drain), and health checks evict dead replicas
// until they answer pings again. See src/replica/router.h.
//
//   scdwarf_router --replicas=HOST:PORT,HOST:PORT,... [--port=N]
//                  [--bind=ADDR] [--health-ms=N] [--metrics-dump=PATH]
//                  [--prometheus-dump=PATH]
//
//   --replicas=LIST      comma-separated replica endpoints (required)
//   --port=N             TCP port (default 0 = kernel-assigned)
//   --bind=ADDR          IPv4 address to listen on (default 127.0.0.1;
//                        0.0.0.0 serves every interface)
//   --health-ms=N        health-check period (default 500; 0 disables)
//   --metrics-dump=PATH  on exit, write the router metric registry as JSON
//   --prometheus-dump=PATH  on exit, write Prometheus text-format metrics
//
// Runs until stdin closes or a "quit" line arrives.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "client/client.h"
#include "replica/router.h"
#include "server/tcp_server.h"

using namespace scdwarf;

namespace {

bool WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string replica_list;
  std::string metrics_dump;
  std::string prometheus_dump;
  int port = 0;
  std::string bind_address = server::TcpServer::kLoopback;
  replica::RouterOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--replicas=", 0) == 0) {
      replica_list = arg.substr(11);
    } else if (arg.rfind("--port=", 0) == 0) {
      port = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--bind=", 0) == 0) {
      bind_address = arg.substr(7);
    } else if (arg.rfind("--health-ms=", 0) == 0) {
      options.health_interval_ms = std::atoi(arg.c_str() + 12);
    } else if (arg.rfind("--metrics-dump=", 0) == 0) {
      metrics_dump = arg.substr(15);
    } else if (arg.rfind("--prometheus-dump=", 0) == 0) {
      prometheus_dump = arg.substr(18);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  if (replica_list.empty()) {
    std::cerr << "usage: scdwarf_router --replicas=HOST:PORT,... [--port=N] "
                 "[--bind=ADDR] [--health-ms=N]\n";
    return 2;
  }
  auto endpoints = client::ParseEndpointList(replica_list);
  if (!endpoints.ok()) {
    std::cerr << endpoints.status() << "\n";
    return 1;
  }

  replica::Router router(*endpoints, options);
  router.CheckReplicasOnce();  // populate health + epochs before serving
  server::TcpServer tcp(&router);
  if (Status status = tcp.Start(static_cast<uint16_t>(port), bind_address);
      !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  // Flushed for the same reason as the replica banner: parents parse it.
  std::cout << "router serving on " << tcp.bind_address() << ":" << tcp.port()
            << " over "
            << router.num_replicas() << " replica(s), "
            << router.healthy_replicas() << " healthy (epoch "
            << router.BestEpoch() << ")" << std::endl;

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
  }
  tcp.Stop();
  if (!metrics_dump.empty() &&
      !WriteTextFile(metrics_dump, router.MetricsJson() + "\n")) {
    std::cerr << "failed to write metrics snapshot to " << metrics_dump
              << "\n";
    return 1;
  }
  if (!prometheus_dump.empty() &&
      !WriteTextFile(prometheus_dump, router.MetricsText())) {
    std::cerr << "failed to write prometheus metrics to " << prometheus_dump
              << "\n";
    return 1;
  }
  return 0;
}
