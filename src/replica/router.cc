#include "replica/router.h"

#include <chrono>
#include <functional>
#include <iterator>
#include <utility>

#include "json/json_parser.h"
#include "json/json_value.h"

namespace scdwarf::replica {

namespace {

using json::JsonObject;
using json::JsonValue;
using server::MakeErrorPayload;
using server::MakeResponse;
using server::QueryRequest;
using server::RequestOp;

/// Envelope fields the router needs from a replica response. Parsed for
/// routing decisions only — the bytes forwarded to the client stay raw.
struct Envelope {
  bool valid = false;  ///< the response parsed and carried an "ok" field
  bool ok = false;
  std::string code;    ///< error code on ok:false responses
  bool has_cursor = false;
  uint64_t cursor = 0;
  uint64_t epoch = 0;
  bool done = false;
};

Envelope ParseEnvelope(const std::string& raw) {
  Envelope env;
  Result<JsonValue> root = json::ParseJson(raw);
  if (!root.ok()) return env;
  Result<JsonValue> ok = root->Get("ok");
  if (!ok.ok()) return env;
  Result<bool> ok_value = ok->AsBool();
  if (!ok_value.ok()) return env;
  env.valid = true;
  env.ok = *ok_value;
  if (Result<JsonValue> code = root->Get("code"); code.ok()) {
    if (Result<std::string> text = code->AsString(); text.ok()) {
      env.code = *text;
    }
  }
  if (Result<JsonValue> cursor = root->Get("cursor"); cursor.ok()) {
    if (Result<double> num = cursor->AsNumber(); num.ok() && *num >= 0) {
      env.cursor = static_cast<uint64_t>(*num);
      env.has_cursor = true;
    }
  }
  if (Result<JsonValue> epoch = root->Get("epoch"); epoch.ok()) {
    if (Result<double> num = epoch->AsNumber(); num.ok() && *num >= 0) {
      env.epoch = static_cast<uint64_t>(*num);
    }
  }
  if (Result<JsonValue> done = root->Get("done"); done.ok()) {
    if (Result<bool> flag = done->AsBool(); flag.ok()) env.done = *flag;
  }
  return env;
}

/// Rewrites the first "cursor":<digits> to carry \p id. Replica responses
/// are forwarded as raw bytes; re-serializing through the JSON model would
/// route int64 measures through doubles, so string surgery is what keeps the
/// row payloads byte-identical to the replica's. The cursor field precedes
/// the rows array in every payload that has one, so the first match is
/// always the envelope's.
std::string ReplaceCursorField(const std::string& raw, uint64_t id) {
  static constexpr std::string_view kField = "\"cursor\":";
  size_t pos = raw.find(kField);
  if (pos == std::string::npos) return raw;
  size_t digits = pos + kField.size();
  size_t end = digits;
  while (end < raw.size() && raw[end] >= '0' && raw[end] <= '9') ++end;
  if (end == digits) return raw;
  return raw.substr(0, pos) + std::string(kField) + std::to_string(id) +
         raw.substr(end);
}

std::string MakeNoHealthyReplicaPayload(const Status& last) {
  JsonObject payload;
  payload.emplace_back("code", JsonValue("no_healthy_replica"));
  std::string message = "no healthy replica available";
  if (!last.ok()) message += "; last error: " + last.message();
  payload.emplace_back("error", JsonValue(std::move(message)));
  return json::SerializeJson(JsonValue(std::move(payload)));
}

std::string MakeTooManySessionsPayload(size_t max_sessions) {
  JsonObject payload;
  payload.emplace_back("code", JsonValue("too_many_sessions"));
  payload.emplace_back(
      "error",
      JsonValue("router session table full (max " +
                std::to_string(max_sessions) +
                "); close or drain a session and retry"));
  return json::SerializeJson(JsonValue(std::move(payload)));
}

void ForgetCursor(server::ClientContext* client, uint64_t cursor_id) {
  if (client == nullptr) return;
  auto& cursors = client->cursors;
  for (auto it = cursors.begin(); it != cursors.end(); ++it) {
    if (*it == cursor_id) {
      cursors.erase(it);
      return;
    }
  }
}

std::string NextRequestFrame(uint64_t replica_cursor) {
  return "{\"op\":\"query_next\",\"cursor\":" + std::to_string(replica_cursor) +
         "}";
}

std::string CloseRequestFrame(uint64_t replica_cursor) {
  return "{\"op\":\"query_close\",\"cursor\":" +
         std::to_string(replica_cursor) + "}";
}

}  // namespace

Router::Router(std::vector<client::Endpoint> replicas, RouterOptions options)
    : options_(options),
      requests_total_(registry_.GetCounter(
          "router_requests_total", {},
          "requests handled by the router, including errors")),
      retries_total_(registry_.GetCounter(
          "router_retries_total", {},
          "forwards retried on an alternate replica")),
      failovers_total_(registry_.GetCounter(
          "router_failovers_total", {},
          "cursor sessions re-opened on another replica mid-drain")),
      sessions_opened_(registry_.GetCounter(
          "router_sessions_opened_total", {},
          "successful query_open calls through the router")),
      sessions_open_(registry_.GetGauge(
          "router_sessions_open", {},
          "router-side cursor sessions currently held open")),
      health_checks_total_(registry_.GetCounter(
          "router_health_checks_total", {},
          "ping probes sent to replicas")),
      replica_unhealthy_(registry_.GetCounter(
          "router_replica_unhealthy_total", {},
          "healthy->unhealthy transitions across all replicas")),
      binary_connections_(registry_.GetCounter(
          "router_binary_connections_total", {},
          "client connections that negotiated the bin1 wire format")) {
  backends_.reserve(replicas.size());
  for (client::Endpoint& endpoint : replicas) {
    auto backend = std::make_unique<Backend>();
    backend->endpoint = endpoint;
    backend->pool =
        std::make_unique<client::ClientPool>(endpoint, options_.client);
    const std::string name = endpoint.ToString();
    backend->forwarded = registry_.GetCounter(
        "router_forwarded_total", {{"replica", name}},
        "requests forwarded to this replica");
    backend->healthy_gauge = registry_.GetGauge(
        "router_replica_healthy", {{"replica", name}},
        "1 while this replica passes health checks");
    backend->epoch_gauge = registry_.GetGauge(
        "router_replica_epoch", {{"replica", name}},
        "last current epoch this replica reported");
    backend->healthy_gauge->Set(1);
    backends_.push_back(std::move(backend));
  }
  if (options_.health_interval_ms > 0) {
    health_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(health_mu_);
      while (!stopping_) {
        health_cv_.wait_for(
            lock, std::chrono::milliseconds(options_.health_interval_ms));
        if (stopping_) break;
        lock.unlock();
        CheckReplicasOnce();
        lock.lock();
      }
    });
  }
}

Router::~Router() {
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    stopping_ = true;
  }
  health_cv_.notify_all();
  if (health_thread_.joinable()) health_thread_.join();
}

std::string Router::HandleFrame(std::string_view request_json,
                                server::ClientContext* client) {
  requests_total_->Increment();
  Result<QueryRequest> request = server::ParseRequest(request_json);
  if (!request.ok()) {
    return MakeResponse(false, BestEpoch(), false,
                        MakeErrorPayload(request.status()));
  }
  switch (request->op) {
    case RequestOp::kStats:
      return MakeResponse(true, BestEpoch(), false, BuildStatsPayload());
    case RequestOp::kMetrics:
      return MakeResponse(true, BestEpoch(), false, MetricsJson());
    case RequestOp::kMetricsText: {
      JsonObject payload;
      payload.emplace_back("text", JsonValue(MetricsText()));
      return MakeResponse(true, BestEpoch(), false,
                          json::SerializeJson(JsonValue(std::move(payload))));
    }
    case RequestOp::kPing: {
      JsonObject payload;
      payload.emplace_back("epoch",
                           JsonValue(static_cast<int64_t>(BestEpoch())));
      payload.emplace_back("uptime_s", JsonValue(uptime_.ElapsedSeconds()));
      payload.emplace_back("sessions",
                           JsonValue(static_cast<int64_t>(open_sessions())));
      return MakeResponse(true, BestEpoch(), false,
                          json::SerializeJson(JsonValue(std::move(payload))));
    }
    case RequestOp::kLoadSnapshot:
      return MakeResponse(
          false, BestEpoch(), false,
          MakeErrorPayload(Status::FailedPrecondition(
              "load_snapshot must be sent to a replica, not the router")));
    case RequestOp::kHello: {
      // The router negotiates with ITS client; replica-facing connections
      // stay JSON (responses are forwarded as raw bytes, and the cursor
      // rewrite is string surgery on JSON).
      bool offers_binary = false;
      for (const std::string& format : request->hello_formats) {
        if (format == "bin1") offers_binary = true;
      }
      bool accept = offers_binary && client != nullptr;
      if (accept && !client->binary) {
        client->binary = true;
        binary_connections_->Increment();
      }
      JsonObject payload;
      payload.emplace_back("format", JsonValue(accept ? "bin1" : "json"));
      return MakeResponse(true, BestEpoch(), false,
                          json::SerializeJson(JsonValue(std::move(payload))));
    }
    case RequestOp::kQueryOpen:
      return HandleOpen(*request, request_json, client);
    case RequestOp::kQueryNext:
      return HandleNext(*request, client);
    case RequestOp::kQueryClose:
      return HandleClose(*request, client);
    default:
      return ForwardOneShot(*request, request_json);
  }
}

std::string Router::ForwardOneShot(const QueryRequest& request,
                                   std::string_view request_json) {
  std::vector<size_t> candidates = HealthyIndices();
  if (candidates.empty()) {
    // Everyone is marked down. Health state is advisory, not authoritative:
    // try the whole fleet rather than failing a query a replica might still
    // answer (and let a success mark it back up).
    for (size_t i = 0; i < backends_.size(); ++i) candidates.push_back(i);
  }
  // Hashing the normalized key keeps each logical query on one replica
  // while the fleet is stable, so per-replica result caches stay hot.
  size_t start = std::hash<std::string>{}(server::NormalizedCacheKey(request)) %
                 candidates.size();
  Status last = Status::OK();
  for (size_t i = 0; i < candidates.size(); ++i) {
    Backend* backend =
        backends_[candidates[(start + i) % candidates.size()]].get();
    if (i > 0) retries_total_->Increment();
    Result<std::string> response = backend->pool->Call(request_json);
    if (!response.ok()) {
      last = response.status();
      MarkFailure(backend);
      continue;
    }
    backend->forwarded->Increment();
    Envelope env = ParseEnvelope(*response);
    if (env.valid) {
      MarkHealthy(backend);
      ObserveEpoch(backend, env.epoch);
    }
    return *response;
  }
  return MakeResponse(false, BestEpoch(), false,
                      MakeNoHealthyReplicaPayload(last));
}

std::string Router::HandleOpen(const QueryRequest& request,
                               std::string_view request_json,
                               server::ClientContext* client) {
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (sessions_.size() >= options_.max_sessions) {
      return MakeResponse(false, BestEpoch(), false,
                          MakeTooManySessionsPayload(options_.max_sessions));
    }
  }
  std::vector<size_t> candidates = HealthyIndices();
  if (candidates.empty()) {
    for (size_t i = 0; i < backends_.size(); ++i) candidates.push_back(i);
  }
  size_t start = round_robin_.fetch_add(1, std::memory_order_relaxed) %
                 candidates.size();
  Status last = Status::OK();
  for (size_t i = 0; i < candidates.size(); ++i) {
    size_t index = candidates[(start + i) % candidates.size()];
    Backend* backend = backends_[index].get();
    if (i > 0) retries_total_->Increment();
    Result<std::string> response = backend->pool->Call(request_json);
    if (!response.ok()) {
      last = response.status();
      MarkFailure(backend);
      continue;
    }
    backend->forwarded->Increment();
    Envelope env = ParseEnvelope(*response);
    if (!env.valid) return *response;
    MarkHealthy(backend);
    if (!env.ok || !env.has_cursor) {
      // Deterministic rejection (bad query, replica session table full):
      // forward it — another replica would answer the same way.
      return *response;
    }
    auto session = std::make_shared<RouterSession>();
    session->epoch = env.epoch;
    session->backend = index;
    session->replica_cursor = env.cursor;
    // The reopen frame pins the session's epoch so a failover lands on the
    // exact snapshot this drain started on.
    QueryRequest pinned = request;
    pinned.open_epoch = env.epoch;
    session->open_request = server::NormalizedCacheKey(pinned);
    uint64_t id = 0;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      id = next_cursor_id_++;
      session->id = id;
      sessions_.emplace(id, session);
      sessions_open_->Set(static_cast<int64_t>(sessions_.size()));
    }
    sessions_opened_->Increment();
    if (client != nullptr) client->cursors.push_back(id);
    return ReplaceCursorField(*response, id);
  }
  return MakeResponse(false, BestEpoch(), false,
                      MakeNoHealthyReplicaPayload(last));
}

std::string Router::HandleNext(const QueryRequest& request,
                               server::ClientContext* client) {
  std::shared_ptr<RouterSession> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(request.cursor_id);
    if (it != sessions_.end()) session = it->second;
  }
  if (session == nullptr) {
    // Same wording as the server's unknown-cursor error, so clients see one
    // behavior whether they talk to a replica or the router.
    return MakeResponse(
        false, BestEpoch(), false,
        MakeErrorPayload(Status::NotFound(
            "unknown cursor " + std::to_string(request.cursor_id) +
            " (closed, drained, or expired)")));
  }
  std::lock_guard<std::mutex> lock(session->mu);
  Backend* backend = backends_[session->backend].get();
  Result<std::string> response =
      backend->pool->Call(NextRequestFrame(session->replica_cursor));
  if (response.ok()) {
    Envelope env = ParseEnvelope(*response);
    if (env.valid && env.ok) {
      MarkHealthy(backend);
      return DeliverPage(session.get(), *response, env.done, client);
    }
    if (env.valid && env.code != "not_found") {
      return *response;  // deterministic error; the session stays pinned
    }
    // not_found: the replica lost the session (restart, TTL) — fail over.
  } else {
    MarkFailure(backend);
  }
  return FailOverSession(session.get(), session->backend, client);
}

std::string Router::FailOverSession(RouterSession* session,
                                    size_t failed_backend,
                                    server::ClientContext* client) {
  failovers_total_->Increment();
  std::string last_error_response;
  Status last = Status::OK();
  for (size_t index = 0; index < backends_.size(); ++index) {
    if (index == failed_backend) continue;
    Backend* backend = backends_[index].get();
    if (!backend->healthy.load(std::memory_order_acquire)) continue;
    Result<std::string> opened = backend->pool->Call(session->open_request);
    if (!opened.ok()) {
      last = opened.status();
      MarkFailure(backend);
      continue;
    }
    Envelope open_env = ParseEnvelope(*opened);
    if (!open_env.valid) continue;
    MarkHealthy(backend);
    if (!open_env.ok || !open_env.has_cursor) {
      // epoch_gone here, or the replica's session table is full; remember
      // the response and try the rest of the fleet.
      last_error_response = *opened;
      continue;
    }
    uint64_t replica_cursor = open_env.cursor;
    std::string next_frame = NextRequestFrame(replica_cursor);
    // Replay the pages the client already consumed, discarding them. The
    // replicas serve bit-identical snapshot files and row order is
    // deterministic, so page k on this replica is page k on the dead one.
    bool candidate_failed = false;
    for (uint64_t page = 0; page < session->pages_delivered; ++page) {
      Result<std::string> replayed = backend->pool->Call(next_frame);
      if (!replayed.ok()) {
        last = replayed.status();
        MarkFailure(backend);
        candidate_failed = true;
        break;
      }
      Envelope env = ParseEnvelope(*replayed);
      if (!env.valid || !env.ok || env.done) {
        // The cursor ran out before reaching the client's position: the
        // replicas disagree about the snapshot. Surface it, don't guess.
        return MakeResponse(
            false, session->epoch, false,
            MakeErrorPayload(Status::Internal(
                "cursor replay diverged on replica " +
                backend->endpoint.ToString() + " (page " +
                std::to_string(page + 1) + " of " +
                std::to_string(session->pages_delivered) + ")")));
      }
    }
    if (candidate_failed) continue;
    Result<std::string> next = backend->pool->Call(next_frame);
    if (!next.ok()) {
      last = next.status();
      MarkFailure(backend);
      continue;
    }
    Envelope env = ParseEnvelope(*next);
    if (!env.valid || !env.ok) {
      last_error_response = *next;
      continue;
    }
    session->backend = index;
    session->replica_cursor = replica_cursor;
    return DeliverPage(session, *next, env.done, client);
  }
  if (!last_error_response.empty()) return last_error_response;
  return MakeResponse(false, session->epoch, false,
                      MakeNoHealthyReplicaPayload(last));
}

std::string Router::DeliverPage(RouterSession* session, const std::string& raw,
                                bool done, server::ClientContext* client) {
  ++session->pages_delivered;
  if (done) {
    EraseSession(session->id);
    ForgetCursor(client, session->id);
  }
  return ReplaceCursorField(raw, session->id);
}

std::string Router::HandleClose(const QueryRequest& request,
                                server::ClientContext* client) {
  std::shared_ptr<RouterSession> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(request.cursor_id);
    if (it != sessions_.end()) {
      session = it->second;
      sessions_.erase(it);
      sessions_open_->Set(static_cast<int64_t>(sessions_.size()));
    }
  }
  ForgetCursor(client, request.cursor_id);
  if (session == nullptr) {
    return MakeResponse(true, BestEpoch(), false, "{\"closed\":false}");
  }
  std::lock_guard<std::mutex> lock(session->mu);
  Backend* backend = backends_[session->backend].get();
  Result<std::string> response =
      backend->pool->Call(CloseRequestFrame(session->replica_cursor));
  if (!response.ok()) {
    MarkFailure(backend);
    // The replica-side session dies with its process or its idle TTL; the
    // router-side one is gone either way, which is what "closed" promises.
    return MakeResponse(true, session->epoch, false, "{\"closed\":true}");
  }
  return *response;
}

void Router::CloseClientSessions(server::ClientContext& client) {
  std::vector<uint64_t> cursors;
  cursors.swap(client.cursors);
  for (uint64_t id : cursors) {
    std::shared_ptr<RouterSession> session;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      auto it = sessions_.find(id);
      if (it == sessions_.end()) continue;
      session = it->second;
      sessions_.erase(it);
      sessions_open_->Set(static_cast<int64_t>(sessions_.size()));
    }
    std::lock_guard<std::mutex> lock(session->mu);
    Backend* backend = backends_[session->backend].get();
    // Best effort: an unreachable replica reaps the session by TTL.
    (void)backend->pool->Call(CloseRequestFrame(session->replica_cursor));
  }
}

size_t Router::CheckReplicasOnce() {
  size_t answered = 0;
  for (const std::unique_ptr<Backend>& backend : backends_) {
    health_checks_total_->Increment();
    Result<std::string> response = backend->pool->Call("{\"op\":\"ping\"}");
    if (response.ok()) {
      Envelope env = ParseEnvelope(*response);
      if (env.valid && env.ok) {
        MarkHealthy(backend.get());
        ObserveEpoch(backend.get(), env.epoch);
        ++answered;
        continue;
      }
    }
    MarkFailure(backend.get());
  }
  return answered;
}

std::vector<size_t> Router::HealthyIndices() const {
  std::vector<size_t> healthy;
  healthy.reserve(backends_.size());
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i]->healthy.load(std::memory_order_acquire)) {
      healthy.push_back(i);
    }
  }
  return healthy;
}

void Router::MarkFailure(Backend* backend) {
  int failures = backend->failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (failures >= options_.unhealthy_after &&
      backend->healthy.exchange(false, std::memory_order_acq_rel)) {
    replica_unhealthy_->Increment();
    backend->healthy_gauge->Set(0);
    // Drop pooled sockets to the dead process so recovery starts clean.
    backend->pool->DropIdle();
  }
}

void Router::MarkHealthy(Backend* backend) {
  backend->failures.store(0, std::memory_order_release);
  if (!backend->healthy.exchange(true, std::memory_order_acq_rel)) {
    backend->healthy_gauge->Set(1);
  }
}

void Router::ObserveEpoch(Backend* backend, uint64_t epoch) {
  backend->epoch.store(epoch, std::memory_order_release);
  backend->epoch_gauge->Set(static_cast<int64_t>(epoch));
}

void Router::EraseSession(uint64_t id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.erase(id);
  sessions_open_->Set(static_cast<int64_t>(sessions_.size()));
}

size_t Router::healthy_replicas() const {
  size_t count = 0;
  for (const std::unique_ptr<Backend>& backend : backends_) {
    if (backend->healthy.load(std::memory_order_acquire)) ++count;
  }
  return count;
}

size_t Router::open_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

uint64_t Router::BestEpoch() const {
  uint64_t best = 0;
  for (const std::unique_ptr<Backend>& backend : backends_) {
    uint64_t epoch = backend->epoch.load(std::memory_order_acquire);
    if (epoch > best) best = epoch;
  }
  return best;
}

std::string Router::BuildStatsPayload() const {
  JsonObject router;
  router.emplace_back("replicas",
                      JsonValue(static_cast<int64_t>(backends_.size())));
  router.emplace_back("healthy",
                      JsonValue(static_cast<int64_t>(healthy_replicas())));
  router.emplace_back("epoch", JsonValue(static_cast<int64_t>(BestEpoch())));
  router.emplace_back("sessions_open",
                      JsonValue(static_cast<int64_t>(open_sessions())));
  router.emplace_back(
      "requests_total",
      JsonValue(static_cast<int64_t>(requests_total_->value())));
  router.emplace_back(
      "retries_total",
      JsonValue(static_cast<int64_t>(retries_total_->value())));
  router.emplace_back(
      "failovers_total",
      JsonValue(static_cast<int64_t>(failovers_total_->value())));
  router.emplace_back(
      "health_checks_total",
      JsonValue(static_cast<int64_t>(health_checks_total_->value())));
  router.emplace_back("uptime_seconds", JsonValue(uptime_.ElapsedSeconds()));
  json::JsonArray replicas;
  for (const std::unique_ptr<Backend>& backend : backends_) {
    JsonObject entry;
    entry.emplace_back("endpoint", JsonValue(backend->endpoint.ToString()));
    entry.emplace_back(
        "healthy",
        JsonValue(backend->healthy.load(std::memory_order_acquire)));
    entry.emplace_back(
        "epoch", JsonValue(static_cast<int64_t>(
                     backend->epoch.load(std::memory_order_acquire))));
    replicas.emplace_back(JsonValue(std::move(entry)));
  }
  router.emplace_back("backends", JsonValue(std::move(replicas)));
  JsonObject inner;
  inner.emplace_back("router", JsonValue(std::move(router)));
  JsonObject payload;
  payload.emplace_back("stats", JsonValue(std::move(inner)));
  return json::SerializeJson(JsonValue(std::move(payload)));
}

std::string Router::MetricsJson() const {
  std::vector<metrics::MetricSnapshot> all = registry_.Snapshot();
  std::vector<metrics::MetricSnapshot> global =
      metrics::GlobalRegistry().Snapshot();
  all.insert(all.end(), std::make_move_iterator(global.begin()),
             std::make_move_iterator(global.end()));
  return "{\"metrics\":" + metrics::SnapshotToJson(all) + "}";
}

std::string Router::MetricsText() const {
  std::vector<metrics::MetricSnapshot> all = registry_.Snapshot();
  std::vector<metrics::MetricSnapshot> global =
      metrics::GlobalRegistry().Snapshot();
  all.insert(all.end(), std::make_move_iterator(global.begin()),
             std::make_move_iterator(global.end()));
  return metrics::SnapshotToPrometheusText(all);
}

}  // namespace scdwarf::replica
