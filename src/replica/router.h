/// \file router.h
/// \brief The shard router: a FrameHandler that fans the wire protocol out
/// over a fleet of replica servers, so N processes serve one published cube
/// behind a single endpoint.
///
/// Routing rules:
///  - One-shot queries (point/aggregate/slice/rollup) hash their normalized
///    cache key over the currently-healthy replicas — the same logical query
///    always lands on the same replica while the fleet is stable, which
///    keeps per-replica result caches hot. A transport failure marks the
///    replica and retries the next healthy one.
///  - Cursor sessions are sticky: query_open picks a replica round-robin and
///    every query_next of that session goes back to it. The router records
///    the epoch the session was pinned to; when the replica dies mid-drain,
///    the session is re-opened on another replica *at that exact epoch*
///    (replicas retain recent epochs — see ServerOptions.retain_epochs),
///    already-delivered pages are replayed and discarded, and the drain
///    continues byte-identically. Sessions whose epoch has aged out
///    everywhere surface code "epoch_gone".
///  - stats / metrics / metrics_text / ping answer about the router itself;
///    load_snapshot is rejected (the publisher notifies replicas directly).
///  - Responses are forwarded as raw bytes; only the "cursor" field is
///    rewritten (replica cursor id -> router cursor id) by string surgery,
///    so row payloads stay byte-identical to what the replica produced.
///
/// Health: a background thread pings every replica each health_interval_ms;
/// unhealthy_after consecutive failures mark a replica down (its idle
/// connections are dropped) until a later ping succeeds. Interval 0 disables
/// the thread — tests drive CheckReplicasOnce() manually.

#ifndef SCDWARF_REPLICA_ROUTER_H_
#define SCDWARF_REPLICA_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "client/client.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "server/frame_handler.h"
#include "server/wire.h"

namespace scdwarf::replica {

/// \brief Router knobs.
struct RouterOptions {
  /// Per-replica connection options (timeouts, pool size, retries).
  client::ClientOptions client;

  /// Health-check period; 0 disables the background thread.
  int health_interval_ms = 500;

  /// Consecutive failures before a replica is marked unhealthy.
  int unhealthy_after = 2;

  /// Router-side cursor sessions held open at once.
  size_t max_sessions = 1024;
};

/// \brief Fans requests out over replica servers. Thread-safe; typically
/// fronted by a server::TcpServer.
class Router : public server::FrameHandler {
 public:
  Router(std::vector<client::Endpoint> replicas, RouterOptions options = {});
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  std::string HandleFrame(std::string_view request_json,
                          server::ClientContext* client = nullptr) override;
  void CloseClientSessions(server::ClientContext& client) override;

  /// \brief Pings every replica once, updating health state and the known
  /// epochs. The health thread calls this periodically; tests call it
  /// directly. Returns how many replicas answered.
  size_t CheckReplicasOnce();

  size_t num_replicas() const { return backends_.size(); }
  size_t healthy_replicas() const;
  size_t open_sessions() const;

  /// Highest epoch any replica has reported (the router's own envelope
  /// epoch for requests it answers itself).
  uint64_t BestEpoch() const;

  /// {"metrics":[...]} over the router registry + the process-global one.
  std::string MetricsJson() const;
  /// The same series in Prometheus text exposition format.
  std::string MetricsText() const;

 private:
  /// One replica: its endpoint, connection pool and health state.
  struct Backend {
    client::Endpoint endpoint;
    std::unique_ptr<client::ClientPool> pool;
    std::atomic<bool> healthy{true};  ///< optimistic until proven otherwise
    std::atomic<int> failures{0};
    std::atomic<uint64_t> epoch{0};   ///< last epoch seen in a response
    metrics::Counter* forwarded = nullptr;  ///< router_forwarded_total{replica}
    metrics::Gauge* healthy_gauge = nullptr;  ///< router_replica_healthy{replica}
    metrics::Gauge* epoch_gauge = nullptr;    ///< router_replica_epoch{replica}
  };

  /// One sticky cursor session. backend/replica_cursor/pages_delivered are
  /// guarded by mu (sessions_mu_ only guards the id map).
  struct RouterSession {
    uint64_t id = 0;
    uint64_t epoch = 0;          ///< pinned epoch, fixed at open
    size_t backend = 0;          ///< index into backends_
    uint64_t replica_cursor = 0;
    std::string open_request;    ///< epoch-pinned reopen frame payload
    uint64_t pages_delivered = 0;
    std::mutex mu;
  };

  std::string ForwardOneShot(const server::QueryRequest& request,
                             std::string_view request_json);
  std::string HandleOpen(const server::QueryRequest& request,
                         std::string_view request_json,
                         server::ClientContext* client);
  std::string HandleNext(const server::QueryRequest& request,
                         server::ClientContext* client);
  std::string HandleClose(const server::QueryRequest& request,
                          server::ClientContext* client);
  /// Re-opens \p session on another healthy replica at its pinned epoch and
  /// replays the already-delivered pages. Returns the next page's raw
  /// replica response on success; an error response payload otherwise.
  std::string FailOverSession(RouterSession* session, size_t failed_backend,
                              server::ClientContext* client);
  /// Delivers one raw query_next replica response: bumps page accounting,
  /// reaps the session when done, rewrites the cursor id.
  std::string DeliverPage(RouterSession* session, const std::string& raw,
                          bool done, server::ClientContext* client);

  /// Healthy backend indices, in order.
  std::vector<size_t> HealthyIndices() const;
  void MarkFailure(Backend* backend);
  void MarkHealthy(Backend* backend);
  /// Records \p epoch as the replica's current epoch. Only called where the
  /// response reports the replica's *current* epoch (ping, one-shots) — a
  /// pinned query_open reports the pinned epoch, which must not clobber it.
  void ObserveEpoch(Backend* backend, uint64_t epoch);
  void EraseSession(uint64_t id);
  std::string BuildStatsPayload() const;

  RouterOptions options_;
  std::vector<std::unique_ptr<Backend>> backends_;  ///< fixed at construction
  metrics::MetricRegistry registry_;
  Stopwatch uptime_;
  metrics::Counter* requests_total_;         ///< router_requests_total
  metrics::Counter* retries_total_;          ///< router_retries_total
  metrics::Counter* failovers_total_;        ///< router_failovers_total
  metrics::Counter* sessions_opened_;        ///< router_sessions_opened_total
  metrics::Gauge* sessions_open_;            ///< router_sessions_open
  metrics::Counter* health_checks_total_;    ///< router_health_checks_total
  metrics::Counter* replica_unhealthy_;      ///< router_replica_unhealthy_total
  metrics::Counter* binary_connections_;     ///< router_binary_connections_total

  mutable std::mutex sessions_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<RouterSession>> sessions_;
  uint64_t next_cursor_id_ = 1;      ///< guarded by sessions_mu_
  std::atomic<size_t> round_robin_{0};

  std::mutex health_mu_;
  std::condition_variable health_cv_;
  bool stopping_ = false;  ///< guarded by health_mu_
  std::thread health_thread_;
};

}  // namespace scdwarf::replica

#endif  // SCDWARF_REPLICA_ROUTER_H_
