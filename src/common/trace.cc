#include "common/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace scdwarf::trace {

namespace {

using Clock = std::chrono::steady_clock;

/// One process-wide anchor so span timestamps are comparable across threads.
Clock::time_point Anchor() {
  static const Clock::time_point anchor = Clock::now();
  return anchor;
}

double NowMicros() {
  return std::chrono::duration<double, std::micro>(Clock::now() - Anchor())
      .count();
}

bool EnvEnabled() {
  const char* value = std::getenv("SCDWARF_TRACE");
  if (value == nullptr) return false;
  return std::strcmp(value, "") != 0 && std::strcmp(value, "0") != 0 &&
         std::strcmp(value, "off") != 0 && std::strcmp(value, "false") != 0;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{EnvEnabled()};
  return enabled;
}

struct Ring {
  std::mutex mu;
  std::vector<Span> spans;  ///< ring storage, lazily sized to capacity
  size_t next = 0;          ///< write position
  uint64_t total = 0;       ///< spans ever recorded since Clear()
};

Ring& GlobalRing() {
  static Ring* ring = new Ring();
  return *ring;
}

std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint64_t> g_next_thread_id{1};

uint64_t ThisThreadId() {
  thread_local const uint64_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Innermost open span of this thread (parent for the next ScopedSpan).
thread_local uint64_t t_current_span = 0;

void AppendJsonDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out->append(buf);
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

uint64_t CurrentSpanId() { return t_current_span; }

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  if (!Enabled()) return;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_current_span;
  prev_ = t_current_span;
  t_current_span = id_;
  start_us_ = NowMicros();
}

ScopedSpan::ScopedSpan(const char* name, uint64_t parent) : name_(name) {
  if (!Enabled()) return;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = parent;
  prev_ = t_current_span;  // restore this thread's own stack on exit
  t_current_span = id_;
  start_us_ = NowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (id_ == 0) return;
  double dur_us = NowMicros() - start_us_;
  t_current_span = prev_;
  Span span;
  span.name = name_;
  span.start_us = start_us_;
  span.dur_us = dur_us;
  span.thread = ThisThreadId();
  span.id = id_;
  span.parent = parent_;
  Ring& ring = GlobalRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  if (ring.spans.size() < kTraceCapacity) {
    ring.spans.push_back(std::move(span));
  } else {
    ring.spans[ring.next] = std::move(span);
  }
  ring.next = (ring.next + 1) % kTraceCapacity;
  ++ring.total;
}

std::vector<Span> Snapshot() {
  Ring& ring = GlobalRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  std::vector<Span> out;
  out.reserve(ring.spans.size());
  if (ring.total > ring.spans.size()) {
    // The ring wrapped: oldest span sits at the write position.
    for (size_t i = 0; i < ring.spans.size(); ++i) {
      out.push_back(ring.spans[(ring.next + i) % ring.spans.size()]);
    }
  } else {
    out = ring.spans;
  }
  return out;
}

uint64_t dropped_spans() {
  Ring& ring = GlobalRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  return ring.total > ring.spans.size() ? ring.total - ring.spans.size() : 0;
}

void Clear() {
  Ring& ring = GlobalRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.spans.clear();
  ring.next = 0;
  ring.total = 0;
}

std::string ExportChromeJson() {
  std::vector<Span> spans = Snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Span& span : spans) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"");
    // Span names are instrumentation-site literals; escape the two
    // characters that could break the JSON anyway.
    for (char c : span.name) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    out.append("\",\"ph\":\"X\",\"ts\":");
    AppendJsonDouble(&out, span.start_us);
    out.append(",\"dur\":");
    AppendJsonDouble(&out, span.dur_us);
    out.append(",\"pid\":1,\"tid\":");
    out.append(std::to_string(span.thread));
    out.append(",\"args\":{\"id\":");
    out.append(std::to_string(span.id));
    out.append(",\"parent\":");
    out.append(std::to_string(span.parent));
    out.append("}}");
  }
  out.append("]}");
  return out;
}

}  // namespace scdwarf::trace
