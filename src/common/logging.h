/// \file logging.h
/// \brief Minimal leveled logging plus CHECK macros for invariant violations
/// (programming errors that should abort, as opposed to Status failures).

#ifndef SCDWARF_COMMON_LOGGING_H_
#define SCDWARF_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace scdwarf {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Global minimum level; messages below it are dropped.
/// Defaults to kInfo; benchmarks raise it to kWarning to keep output clean.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// \brief Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

/// \brief Like LogMessage but aborts the process on destruction.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace scdwarf

#define SCD_LOG(level)                                          \
  ::scdwarf::internal::LogMessage(::scdwarf::LogLevel::level,   \
                                  __FILE__, __LINE__)

/// Aborts with a diagnostic when \p condition is false. Use only for
/// programming errors; recoverable failures return Status.
#define SCD_CHECK(condition)                                              \
  if (!(condition))                                                       \
  ::scdwarf::internal::FatalLogMessage(__FILE__, __LINE__, #condition)

#define SCD_CHECK_EQ(a, b) SCD_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define SCD_CHECK_NE(a, b) SCD_CHECK((a) != (b))
#define SCD_CHECK_LT(a, b) SCD_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define SCD_CHECK_LE(a, b) SCD_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define SCD_CHECK_GT(a, b) SCD_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define SCD_CHECK_GE(a, b) SCD_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#endif  // SCDWARF_COMMON_LOGGING_H_
