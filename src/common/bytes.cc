#include "common/bytes.h"

namespace scdwarf {

void ByteWriter::PutVarint(uint64_t value) {
  while (value >= 0x80) {
    buffer_.push_back(static_cast<uint8_t>(value | 0x80));
    value >>= 7;
  }
  buffer_.push_back(static_cast<uint8_t>(value));
}

void ByteWriter::PutSignedVarint(int64_t value) { PutVarint(ZigZagEncode(value)); }

void ByteWriter::PutString(std::string_view value) {
  PutVarint(value.size());
  PutRaw(value.data(), value.size());
}

void ByteWriter::PutRaw(const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

Status ByteReader::ReadFixed(void* out, size_t size) {
  if (remaining() < size) {
    return Status::OutOfRange("byte reader exhausted: need " +
                              std::to_string(size) + " bytes, have " +
                              std::to_string(remaining()));
  }
  std::memcpy(out, data_ + offset_, size);
  offset_ += size;
  return Status::OK();
}

Result<uint8_t> ByteReader::ReadU8() {
  uint8_t value = 0;
  SCD_RETURN_IF_ERROR(ReadFixed(&value, sizeof(value)));
  return value;
}

Result<uint32_t> ByteReader::ReadU32() {
  uint32_t value = 0;
  SCD_RETURN_IF_ERROR(ReadFixed(&value, sizeof(value)));
  return value;
}

Result<uint64_t> ByteReader::ReadU64() {
  uint64_t value = 0;
  SCD_RETURN_IF_ERROR(ReadFixed(&value, sizeof(value)));
  return value;
}

Result<uint64_t> ByteReader::ReadVarint() {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (offset_ >= size_) {
      return Status::OutOfRange("truncated varint");
    }
    uint8_t byte = data_[offset_++];
    if (shift >= 64) {
      return Status::ParseError("varint too long");
    }
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return value;
}

Result<int64_t> ByteReader::ReadSignedVarint() {
  SCD_ASSIGN_OR_RETURN(uint64_t raw, ReadVarint());
  return ZigZagDecode(raw);
}

Result<double> ByteReader::ReadDouble() {
  double value = 0;
  SCD_RETURN_IF_ERROR(ReadFixed(&value, sizeof(value)));
  return value;
}

Result<std::string> ByteReader::ReadString() {
  SCD_ASSIGN_OR_RETURN(uint64_t length, ReadVarint());
  if (remaining() < length) {
    return Status::OutOfRange("truncated string: need " +
                              std::to_string(length) + " bytes, have " +
                              std::to_string(remaining()));
  }
  std::string value(reinterpret_cast<const char*>(data_ + offset_),
                    static_cast<size_t>(length));
  offset_ += static_cast<size_t>(length);
  return value;
}

size_t VarintLength(uint64_t value) {
  size_t length = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++length;
  }
  return length;
}

}  // namespace scdwarf
