#include "common/histogram.h"

#include <algorithm>
#include <limits>

namespace scdwarf {

FixedBucketHistogram::FixedBucketHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

FixedBucketHistogram FixedBucketHistogram::ForLatencyMicros() {
  return FixedBucketHistogram(LatencyMicrosBounds());
}

std::vector<double> FixedBucketHistogram::LatencyMicrosBounds() {
  std::vector<double> bounds;
  for (double decade = 1; decade <= 1e6; decade *= 10) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2);
    bounds.push_back(decade * 5);
  }
  bounds.push_back(1e7);  // 10 s
  return bounds;
}

void FixedBucketHistogram::Record(double value) {
  size_t index = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                 bounds_.begin();
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  double observed = min_.load(std::memory_order_relaxed);
  while (value < observed &&
         !min_.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
  observed = max_.load(std::memory_order_relaxed);
  while (value > observed &&
         !max_.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
  count_.fetch_add(1, std::memory_order_relaxed);
}

double FixedBucketHistogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

double FixedBucketHistogram::max() const {
  return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

double FixedBucketHistogram::Quantile(double q) const {
  uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  double lo = min();
  double hi = max();
  if (q == 0.0) return lo;
  if (q == 1.0) return hi;
  // Rank of the requested quantile, 1-based.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    // cumulative < rank <= cumulative + in_bucket, so in_bucket > 0: empty
    // buckets are always skipped above.
    if (i >= bounds_.size()) return hi;  // overflow: no finite upper bound
    // The tightest edges the recorded samples allow: the first bucket starts
    // at the smallest sample (not 0), and no bucket extends past the largest.
    double lower = i == 0 ? lo : bounds_[i - 1];
    double upper = std::min(bounds_[i], hi);
    double fraction = static_cast<double>(rank - cumulative) /
                      static_cast<double>(in_bucket);
    return lower + (upper - lower) * fraction;
  }
  // Counters moved under a racing writer (count_ read before buckets_).
  return hi;
}

std::vector<FixedBucketHistogram::Bucket> FixedBucketHistogram::Snapshot()
    const {
  std::vector<Bucket> snapshot(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    snapshot[i].upper_bound = i < bounds_.size()
                                  ? bounds_[i]
                                  : std::numeric_limits<double>::infinity();
    snapshot[i].count = buckets_[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

}  // namespace scdwarf
