/// \file thread_pool.h
/// \brief Small fixed-size worker pool for the parallel construction
/// pipeline. Tasks are plain closures drained FIFO; completion is
/// coordinated by the helpers in parallel.h, which shard work
/// deterministically and join before returning.

#ifndef SCDWARF_COMMON_THREAD_POOL_H_
#define SCDWARF_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace scdwarf {

/// \brief Fixed set of worker threads draining a FIFO task queue.
///
/// The destructor drains every queued task before joining, so submitting
/// and immediately destroying the pool is a valid (if blunt) barrier; the
/// parallel-for helpers wait explicitly instead.
class ThreadPool {
 public:
  /// Spawns \p num_threads workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues \p task. Never blocks; the queue is unbounded.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace scdwarf

#endif  // SCDWARF_COMMON_THREAD_POOL_H_
