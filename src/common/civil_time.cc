#include "common/civil_time.h"

#include <cstdio>

#include "common/strings.h"

namespace scdwarf {

int64_t DaysFromCivil(int year, int month, int day) {
  year -= month <= 2;
  const int64_t era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);           // [0, 399]
  const unsigned doy =
      (153u * static_cast<unsigned>(month + (month > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(day) - 1;                                     // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;             // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

CivilTime CivilFromDays(int64_t days) {
  days += 719468;
  const int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;        // [0, 399]
  const int64_t year = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);     // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                          // [0, 11]
  const unsigned day = doy - (153 * mp + 2) / 5 + 1;                // [1, 31]
  const unsigned month = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  CivilTime time;
  time.year = static_cast<int>(year + (month <= 2));
  time.month = static_cast<int>(month);
  time.day = static_cast<int>(day);
  return time;
}

int64_t SecondsFromCivil(const CivilTime& time) {
  return DaysFromCivil(time.year, time.month, time.day) * 86400 +
         time.hour * 3600 + time.minute * 60 + time.second;
}

CivilTime CivilFromSeconds(int64_t seconds) {
  int64_t days = seconds / 86400;
  int64_t rem = seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  CivilTime time = CivilFromDays(days);
  time.hour = static_cast<int>(rem / 3600);
  time.minute = static_cast<int>((rem % 3600) / 60);
  time.second = static_cast<int>(rem % 60);
  return time;
}

int WeekdayIndex(int year, int month, int day) {
  // 1970-01-01 was a Thursday (index 3 with Monday = 0).
  int64_t days = DaysFromCivil(year, month, day);
  return static_cast<int>(((days % 7) + 7 + 3) % 7);
}

const char* WeekdayName(int weekday_index) {
  static constexpr const char* kNames[] = {
      "Monday", "Tuesday", "Wednesday", "Thursday",
      "Friday", "Saturday", "Sunday"};
  if (weekday_index < 0 || weekday_index > 6) return "?";
  return kNames[weekday_index];
}

const char* MonthName(int month) {
  static constexpr const char* kNames[] = {
      "January", "February", "March",     "April",   "May",      "June",
      "July",    "August",   "September", "October", "November", "December"};
  if (month < 1 || month > 12) return "?";
  return kNames[month - 1];
}

int DaysInMonth(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2) {
    bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    return leap ? 29 : 28;
  }
  return kDays[month - 1];
}

std::string FormatIso(const CivilTime& time) {
  return StrFormat("%04d-%02d-%02dT%02d:%02d:%02d", time.year, time.month,
                   time.day, time.hour, time.minute, time.second);
}

std::string FormatIsoDate(const CivilTime& time) {
  return StrFormat("%04d-%02d-%02d", time.year, time.month, time.day);
}

Result<CivilTime> ParseIso(std::string_view text) {
  text = StrTrim(text);
  CivilTime time;
  int matched = std::sscanf(std::string(text).c_str(),
                            "%d-%d-%d%*1[T ]%d:%d:%d", &time.year, &time.month,
                            &time.day, &time.hour, &time.minute, &time.second);
  if (matched != 3 && matched != 5 && matched != 6) {
    return Status::ParseError("invalid ISO timestamp '" + std::string(text) +
                              "'");
  }
  if (time.month < 1 || time.month > 12 || time.day < 1 ||
      time.day > DaysInMonth(time.year, time.month) || time.hour < 0 ||
      time.hour > 23 || time.minute < 0 || time.minute > 59 ||
      time.second < 0 || time.second > 59) {
    return Status::ParseError("out-of-range field in ISO timestamp '" +
                              std::string(text) + "'");
  }
  return time;
}

}  // namespace scdwarf
