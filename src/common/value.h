/// \file value.h
/// \brief Typed cell values for the columnar NoSQL store. The type system is
/// the subset of Cassandra's that the paper's schemas use: int, bigint, text,
/// boolean and set<int> (Table 1-B stores parentIds/childrenIds as sets).

#ifndef SCDWARF_COMMON_VALUE_H_
#define SCDWARF_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace scdwarf {

/// \brief Column data types (CQL names in comments).
enum class DataType : uint8_t {
  kInt = 0,     // int     (stored as int64)
  kBigint = 1,  // bigint
  kText = 2,    // text
  kBool = 3,    // boolean
  kIntSet = 4,  // set<int>
};

/// \brief Returns the CQL spelling ("set<int>", "text", ...).
const char* DataTypeName(DataType type);

/// \brief Parses a CQL type name; case-insensitive.
Result<DataType> ParseDataType(std::string_view name);

/// \brief A single typed value or NULL.
///
/// Set values are kept sorted and deduplicated so that comparison and
/// serialization are canonical.
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Storage(v)); }
  static Value Text(std::string v) { return Value(Storage(std::move(v))); }
  static Value Bool(bool v) { return Value(Storage(v)); }
  /// Sorts and deduplicates \p v.
  static Value IntSet(std::vector<int64_t> v);

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_text() const { return std::holds_alternative<std::string>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int_set() const {
    return std::holds_alternative<std::vector<int64_t>>(data_);
  }

  Result<int64_t> AsInt() const;
  Result<std::string> AsText() const;
  Result<bool> AsBool() const;
  Result<std::vector<int64_t>> AsIntSet() const;

  /// True when this value is assignable to a column of \p type
  /// (NULL is assignable to anything; int covers int and bigint).
  bool MatchesType(DataType type) const;

  /// Total ordering across values of the same kind (NULL sorts first); used
  /// by ordered indexes. Comparing values of different kinds orders by kind.
  bool operator<(const Value& other) const { return data_ < other.data_; }
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Renders as a CQL literal: 7, 'text' (quotes doubled), true, {1,2}.
  std::string ToCqlLiteral() const;

  /// Renders for result display (no quotes on text).
  std::string ToDisplayString() const;

  /// Binary encoding: 1 tag byte + payload. Inverse of DecodeValue.
  void EncodeTo(ByteWriter* writer) const;
  static Result<Value> DecodeFrom(ByteReader* reader);

  /// Serialized size in bytes (matches EncodeTo output length).
  size_t EncodedSize() const;

  /// Hash for hash-index buckets.
  uint64_t Hash() const;

 private:
  using Storage = std::variant<std::monostate, bool, int64_t, std::string,
                               std::vector<int64_t>>;
  explicit Value(Storage data) : data_(std::move(data)) {}

  Storage data_;
};

/// \brief Hash functor routing Values into unordered containers.
struct ValueHash {
  size_t operator()(const Value& value) const {
    return static_cast<size_t>(value.Hash());
  }
};

}  // namespace scdwarf

#endif  // SCDWARF_COMMON_VALUE_H_
