#include "common/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace scdwarf::metrics {

namespace {

/// Composes the series identity: name and sorted labels, joined with bytes
/// that cannot appear in metric names or sane label values.
std::string ComposeKey(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key.push_back('\x1f');
    key.append(k);
    key.push_back('\x1e');
    key.append(v);
  }
  return key;
}

Labels SortedLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// Minimal JSON string escaping; metric names and labels are controlled
/// identifiers, but help strings may hold arbitrary prose.
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

}  // namespace

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

MetricRegistry::Series* MetricRegistry::GetSeries(std::string_view name,
                                                  Labels labels,
                                                  std::string_view help,
                                                  MetricType type,
                                                  std::vector<double> bounds) {
  labels = SortedLabels(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = ComposeKey(name, labels);
  auto it = index_.find(key);
  if (it == index_.end()) {
    size_t& cardinality = series_per_name_[std::string(name)];
    if (cardinality >= kMaxSeriesPerName && !labels.empty()) {
      // Over the cap: collapse into the overflow series (registered outside
      // the cap so it always exists once needed).
      Labels overflow{{"overflow", "true"}};
      key = ComposeKey(name, overflow);
      it = index_.find(key);
      if (it == index_.end()) {
        labels = std::move(overflow);
      } else if (series_[it->second]->type != type) {
        return nullptr;
      } else {
        return series_[it->second].get();
      }
    } else {
      ++cardinality;
    }
    auto series = std::make_unique<Series>();
    series->name = std::string(name);
    series->type = type;
    series->labels = std::move(labels);
    series->help = std::string(help);
    switch (type) {
      case MetricType::kCounter:
        series->counter = std::make_unique<Counter>();
        break;
      case MetricType::kGauge:
        series->gauge = std::make_unique<Gauge>();
        break;
      case MetricType::kHistogram:
        series->histogram = std::make_unique<FixedBucketHistogram>(
            bounds.empty() ? FixedBucketHistogram::LatencyMicrosBounds()
                           : std::move(bounds));
        break;
    }
    index_.emplace(std::move(key), series_.size());
    series_.push_back(std::move(series));
    return series_.back().get();
  }
  if (series_[it->second]->type != type) return nullptr;
  return series_[it->second].get();
}

Counter* MetricRegistry::GetCounter(std::string_view name, Labels labels,
                                    std::string_view help) {
  Series* series = GetSeries(name, std::move(labels), help,
                             MetricType::kCounter, {});
  if (series == nullptr) {
    SCD_LOG(kWarning) << "metric '" << name
                     << "' re-registered with conflicting type counter";
    static Counter dummy;
    return &dummy;
  }
  return series->counter.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name, Labels labels,
                                std::string_view help) {
  Series* series =
      GetSeries(name, std::move(labels), help, MetricType::kGauge, {});
  if (series == nullptr) {
    SCD_LOG(kWarning) << "metric '" << name
                     << "' re-registered with conflicting type gauge";
    static Gauge dummy;
    return &dummy;
  }
  return series->gauge.get();
}

FixedBucketHistogram* MetricRegistry::GetHistogram(std::string_view name,
                                                   Labels labels,
                                                   std::string_view help,
                                                   std::vector<double> bounds) {
  Series* series = GetSeries(name, std::move(labels), help,
                             MetricType::kHistogram, std::move(bounds));
  if (series == nullptr) {
    SCD_LOG(kWarning) << "metric '" << name
                     << "' re-registered with conflicting type histogram";
    static FixedBucketHistogram dummy(
        FixedBucketHistogram::LatencyMicrosBounds());
    return &dummy;
  }
  return series->histogram.get();
}

std::vector<MetricSnapshot> MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(series_.size());
  for (const auto& series : series_) {
    MetricSnapshot snap;
    snap.name = series->name;
    snap.type = series->type;
    snap.labels = series->labels;
    snap.help = series->help;
    switch (series->type) {
      case MetricType::kCounter:
        snap.counter_value = series->counter->value();
        break;
      case MetricType::kGauge:
        snap.gauge_value = series->gauge->value();
        break;
      case MetricType::kHistogram: {
        const FixedBucketHistogram& h = *series->histogram;
        snap.hist_count = h.count();
        snap.hist_min = h.min();
        snap.hist_max = h.max();
        snap.hist_p50 = h.Quantile(0.50);
        snap.hist_p90 = h.Quantile(0.90);
        snap.hist_p99 = h.Quantile(0.99);
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

size_t MetricRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

MetricRegistry& GlobalRegistry() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

std::string SnapshotToJson(const std::vector<MetricSnapshot>& snapshot) {
  std::string out = "[";
  bool first = true;
  for (const MetricSnapshot& m : snapshot) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, m.name);
    out.append(",\"type\":\"");
    out.append(MetricTypeName(m.type));
    out.append("\",\"labels\":{");
    bool first_label = true;
    for (const auto& [k, v] : m.labels) {
      if (!first_label) out.push_back(',');
      first_label = false;
      AppendJsonString(&out, k);
      out.push_back(':');
      AppendJsonString(&out, v);
    }
    out.push_back('}');
    if (!m.help.empty()) {
      out.append(",\"help\":");
      AppendJsonString(&out, m.help);
    }
    switch (m.type) {
      case MetricType::kCounter:
        out.append(",\"value\":");
        out.append(std::to_string(m.counter_value));
        break;
      case MetricType::kGauge:
        out.append(",\"value\":");
        out.append(std::to_string(m.gauge_value));
        break;
      case MetricType::kHistogram:
        out.append(",\"count\":");
        out.append(std::to_string(m.hist_count));
        out.append(",\"min\":");
        AppendJsonDouble(&out, m.hist_min);
        out.append(",\"max\":");
        AppendJsonDouble(&out, m.hist_max);
        out.append(",\"p50\":");
        AppendJsonDouble(&out, m.hist_p50);
        out.append(",\"p90\":");
        AppendJsonDouble(&out, m.hist_p90);
        out.append(",\"p99\":");
        AppendJsonDouble(&out, m.hist_p99);
        break;
    }
    out.push_back('}');
  }
  out.push_back(']');
  return out;
}

namespace {

/// Prometheus escaping for HELP text: backslash and newline.
void AppendPromHelp(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '\\') out->append("\\\\");
    else if (c == '\n') out->append("\\n");
    else out->push_back(c);
  }
}

/// Prometheus escaping for label values: backslash, quote, newline.
void AppendPromLabelValue(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '\\') out->append("\\\\");
    else if (c == '"') out->append("\\\"");
    else if (c == '\n') out->append("\\n");
    else out->push_back(c);
  }
}

/// One label block: {k1="v1",k2="v2"} with \p extra appended last (used for
/// the quantile label). Empty when there is nothing to emit.
void AppendPromLabels(std::string* out, const Labels& labels,
                      std::string_view extra = {}) {
  if (labels.empty() && extra.empty()) return;
  out->push_back('{');
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out->push_back(',');
    first = false;
    out->append(k);
    out->append("=\"");
    AppendPromLabelValue(out, v);
    out->push_back('"');
  }
  if (!extra.empty()) {
    if (!first) out->push_back(',');
    out->append(extra);
  }
  out->push_back('}');
}

void AppendPromDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out->append(buf);
}

void AppendPromHeader(std::string* out, std::string_view name,
                      std::string_view help, std::string_view type) {
  if (!help.empty()) {
    out->append("# HELP ");
    out->append(name);
    out->push_back(' ');
    AppendPromHelp(out, help);
    out->push_back('\n');
  }
  out->append("# TYPE ");
  out->append(name);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

}  // namespace

std::string SnapshotToPrometheusText(
    const std::vector<MetricSnapshot>& snapshot) {
  // Group by name (first-appearance order) so every family is contiguous
  // under one HELP/TYPE header, as the exposition format requires.
  std::vector<std::string> order;
  std::unordered_map<std::string, std::vector<const MetricSnapshot*>> families;
  for (const MetricSnapshot& m : snapshot) {
    auto [it, inserted] = families.try_emplace(m.name);
    if (inserted) order.push_back(m.name);
    it->second.push_back(&m);
  }
  std::string out;
  for (const std::string& name : order) {
    const std::vector<const MetricSnapshot*>& family = families[name];
    const MetricSnapshot& head = *family.front();
    switch (head.type) {
      case MetricType::kCounter:
        AppendPromHeader(&out, name, head.help, "counter");
        for (const MetricSnapshot* m : family) {
          out.append(name);
          AppendPromLabels(&out, m->labels);
          out.push_back(' ');
          out.append(std::to_string(m->counter_value));
          out.push_back('\n');
        }
        break;
      case MetricType::kGauge:
        AppendPromHeader(&out, name, head.help, "gauge");
        for (const MetricSnapshot* m : family) {
          out.append(name);
          AppendPromLabels(&out, m->labels);
          out.push_back(' ');
          out.append(std::to_string(m->gauge_value));
          out.push_back('\n');
        }
        break;
      case MetricType::kHistogram: {
        // Quantiles + count as a summary family; min/max as gauge families
        // (FixedBucketHistogram tracks no sum, so _sum is omitted).
        AppendPromHeader(&out, name, head.help, "summary");
        constexpr const char* kQuantileLabels[] = {
            "quantile=\"0.5\"", "quantile=\"0.9\"", "quantile=\"0.99\""};
        for (const MetricSnapshot* m : family) {
          const double quantiles[] = {m->hist_p50, m->hist_p90, m->hist_p99};
          for (size_t q = 0; q < 3; ++q) {
            out.append(name);
            AppendPromLabels(&out, m->labels, kQuantileLabels[q]);
            out.push_back(' ');
            AppendPromDouble(&out, quantiles[q]);
            out.push_back('\n');
          }
          out.append(name);
          out.append("_count");
          AppendPromLabels(&out, m->labels);
          out.push_back(' ');
          out.append(std::to_string(m->hist_count));
          out.push_back('\n');
        }
        AppendPromHeader(&out, name + "_min", "", "gauge");
        for (const MetricSnapshot* m : family) {
          out.append(name);
          out.append("_min");
          AppendPromLabels(&out, m->labels);
          out.push_back(' ');
          AppendPromDouble(&out, m->hist_min);
          out.push_back('\n');
        }
        AppendPromHeader(&out, name + "_max", "", "gauge");
        for (const MetricSnapshot* m : family) {
          out.append(name);
          out.append("_max");
          AppendPromLabels(&out, m->labels);
          out.push_back(' ');
          AppendPromDouble(&out, m->hist_max);
          out.push_back('\n');
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace scdwarf::metrics
