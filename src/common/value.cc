#include "common/value.h"

#include <algorithm>

#include "common/hash.h"
#include "common/strings.h"

namespace scdwarf {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt: return "int";
    case DataType::kBigint: return "bigint";
    case DataType::kText: return "text";
    case DataType::kBool: return "boolean";
    case DataType::kIntSet: return "set<int>";
  }
  return "?";
}

Result<DataType> ParseDataType(std::string_view name) {
  std::string lower = AsciiToLower(name);
  // Normalize internal whitespace for "set < int >".
  lower.erase(std::remove_if(lower.begin(), lower.end(),
                             [](char c) { return c == ' ' || c == '\t'; }),
              lower.end());
  if (lower == "int") return DataType::kInt;
  if (lower == "bigint") return DataType::kBigint;
  if (lower == "text" || lower == "varchar") return DataType::kText;
  if (lower == "boolean" || lower == "bool") return DataType::kBool;
  if (lower == "set<int>" || lower == "set<bigint>") return DataType::kIntSet;
  return Status::ParseError("unknown data type '" + std::string(name) + "'");
}

Value Value::IntSet(std::vector<int64_t> v) {
  if (!std::is_sorted(v.begin(), v.end())) {
    std::sort(v.begin(), v.end());
  }
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return Value(Storage(std::move(v)));
}

Result<int64_t> Value::AsInt() const {
  if (const int64_t* v = std::get_if<int64_t>(&data_)) return *v;
  return Status::InvalidArgument("value is not an int");
}

Result<std::string> Value::AsText() const {
  if (const std::string* v = std::get_if<std::string>(&data_)) return *v;
  return Status::InvalidArgument("value is not text");
}

Result<bool> Value::AsBool() const {
  if (const bool* v = std::get_if<bool>(&data_)) return *v;
  return Status::InvalidArgument("value is not a boolean");
}

Result<std::vector<int64_t>> Value::AsIntSet() const {
  if (const auto* v = std::get_if<std::vector<int64_t>>(&data_)) return *v;
  return Status::InvalidArgument("value is not a set<int>");
}

bool Value::MatchesType(DataType type) const {
  if (is_null()) return true;
  switch (type) {
    case DataType::kInt:
    case DataType::kBigint:
      return is_int();
    case DataType::kText:
      return is_text();
    case DataType::kBool:
      return is_bool();
    case DataType::kIntSet:
      return is_int_set();
  }
  return false;
}

std::string Value::ToCqlLiteral() const {
  if (is_null()) return "null";
  if (is_bool()) return std::get<bool>(data_) ? "true" : "false";
  if (is_int()) return std::to_string(std::get<int64_t>(data_));
  if (is_text()) return QuoteSqlString(std::get<std::string>(data_));
  const auto& set = std::get<std::vector<int64_t>>(data_);
  std::string out = "{";
  for (size_t i = 0; i < set.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(set[i]);
  }
  out += "}";
  return out;
}

std::string Value::ToDisplayString() const {
  if (is_text()) return std::get<std::string>(data_);
  return ToCqlLiteral();
}

namespace {
enum Tag : uint8_t {
  kTagNull = 0,
  kTagBool = 1,
  kTagInt = 2,
  kTagText = 3,
  kTagIntSet = 4,
};
}  // namespace

void Value::EncodeTo(ByteWriter* writer) const {
  if (is_null()) {
    writer->PutU8(kTagNull);
  } else if (is_bool()) {
    writer->PutU8(kTagBool);
    writer->PutU8(std::get<bool>(data_) ? 1 : 0);
  } else if (is_int()) {
    writer->PutU8(kTagInt);
    writer->PutSignedVarint(std::get<int64_t>(data_));
  } else if (is_text()) {
    writer->PutU8(kTagText);
    writer->PutString(std::get<std::string>(data_));
  } else {
    const auto& set = std::get<std::vector<int64_t>>(data_);
    writer->PutU8(kTagIntSet);
    writer->PutVarint(set.size());
    // Delta-encode the sorted members: ids of sibling cells cluster tightly,
    // which keeps child sets to ~1-2 bytes per member.
    int64_t previous = 0;
    for (int64_t member : set) {
      writer->PutSignedVarint(member - previous);
      previous = member;
    }
  }
}

// GCC 12 emits a spurious -Wfree-nonheap-object when the variant destructor
// is inlined into the Result return path below.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
Result<Value> Value::DecodeFrom(ByteReader* reader) {
  SCD_ASSIGN_OR_RETURN(uint8_t tag, reader->ReadU8());
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagBool: {
      SCD_ASSIGN_OR_RETURN(uint8_t v, reader->ReadU8());
      return Value::Bool(v != 0);
    }
    case kTagInt: {
      SCD_ASSIGN_OR_RETURN(int64_t v, reader->ReadSignedVarint());
      return Value::Int(v);
    }
    case kTagText: {
      SCD_ASSIGN_OR_RETURN(std::string v, reader->ReadString());
      return Value::Text(std::move(v));
    }
    case kTagIntSet: {
      SCD_ASSIGN_OR_RETURN(uint64_t count, reader->ReadVarint());
      std::vector<int64_t> members;
      members.reserve(count);
      int64_t previous = 0;
      for (uint64_t i = 0; i < count; ++i) {
        SCD_ASSIGN_OR_RETURN(int64_t delta, reader->ReadSignedVarint());
        previous += delta;
        members.push_back(previous);
      }
      return Value::IntSet(std::move(members));
    }
    default:
      return Status::ParseError("unknown value tag " + std::to_string(tag));
  }
}
#pragma GCC diagnostic pop

size_t Value::EncodedSize() const {
  ByteWriter writer;
  EncodeTo(&writer);
  return writer.size();
}

uint64_t Value::Hash() const {
  if (is_null()) return 0x6e756c6cULL;
  if (is_bool()) return std::get<bool>(data_) ? 0x74727565ULL : 0x66616c73ULL;
  if (is_int()) return MixBits(static_cast<uint64_t>(std::get<int64_t>(data_)));
  if (is_text()) return HashString(std::get<std::string>(data_));
  uint64_t h = 0x736574ULL;
  for (int64_t member : std::get<std::vector<int64_t>>(data_)) {
    h = HashCombine(h, static_cast<uint64_t>(member));
  }
  return h;
}

}  // namespace scdwarf
