#include "common/status.h"

namespace scdwarf {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal error";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : state_(std::make_unique<State>(State{code, std::move(message)})) {}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code());
  result += ": ";
  result += message();
  return result;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace scdwarf
