/// \file civil_time.h
/// \brief Minimal proleptic-Gregorian civil time for the ETL layer: parsing
/// ISO-8601 timestamps from feeds and deriving the calendar dimensions
/// (month, date, weekday, hour) the cube schemas group by.

#ifndef SCDWARF_COMMON_CIVIL_TIME_H_
#define SCDWARF_COMMON_CIVIL_TIME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace scdwarf {

/// \brief A wall-clock timestamp with no timezone (feeds are city-local).
struct CivilTime {
  int year = 1970;
  int month = 1;  // 1-12
  int day = 1;    // 1-31
  int hour = 0;   // 0-23
  int minute = 0;
  int second = 0;

  bool operator==(const CivilTime& other) const = default;
};

/// \brief Days since 1970-01-01 for a civil date (negative before epoch).
/// Uses the days-from-civil algorithm (H. Hinnant), valid across the full
/// int range of years.
int64_t DaysFromCivil(int year, int month, int day);

/// \brief Inverse of DaysFromCivil.
CivilTime CivilFromDays(int64_t days);

/// \brief Seconds since 1970-01-01T00:00:00 for a civil timestamp.
int64_t SecondsFromCivil(const CivilTime& time);

/// \brief Inverse of SecondsFromCivil.
CivilTime CivilFromSeconds(int64_t seconds);

/// \brief Day of week, 0 = Monday ... 6 = Sunday.
int WeekdayIndex(int year, int month, int day);

/// \brief "Monday" ... "Sunday".
const char* WeekdayName(int weekday_index);

/// \brief "January" ... "December"; \p month is 1-12.
const char* MonthName(int month);

/// \brief Number of days in \p month of \p year (handles leap years).
int DaysInMonth(int year, int month);

/// \brief Formats "YYYY-MM-DDTHH:MM:SS".
std::string FormatIso(const CivilTime& time);

/// \brief Formats "YYYY-MM-DD".
std::string FormatIsoDate(const CivilTime& time);

/// \brief Parses "YYYY-MM-DD" or "YYYY-MM-DD[T ]HH:MM[:SS]". Rejects
/// out-of-range fields (month 13, Feb 30, hour 25, ...).
Result<CivilTime> ParseIso(std::string_view text);

}  // namespace scdwarf

#endif  // SCDWARF_COMMON_CIVIL_TIME_H_
