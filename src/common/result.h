/// \file result.h
/// \brief Result<T>: a value or a Status, in the style of arrow::Result.

#ifndef SCDWARF_COMMON_RESULT_H_
#define SCDWARF_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "common/status.h"

namespace scdwarf {

/// \brief Holds either a successfully computed T or the Status explaining why
/// the computation failed.
///
/// Usage:
/// \code
///   Result<int> ParsePort(std::string_view s);
///   SCD_ASSIGN_OR_RETURN(int port, ParsePort(arg));
/// \endcode
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a failed result. Aborts (in debug) if \p status is OK, since
  /// an OK result must carry a value.
  Result(Status status) : storage_(std::move(status)) {  // NOLINT implicit
    if (std::get<Status>(storage_).ok()) {
      std::cerr << "Result<T> constructed from OK status\n";
      std::abort();
    }
  }

  /// Constructs a successful result holding \p value.
  Result(T value) : storage_(std::move(value)) {}  // NOLINT implicit

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(storage_); }

  /// The status: OK when a value is present, the error otherwise.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(storage_);
  }

  /// Returns the value; aborts if this result holds an error.
  const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(storage_);
  }
  T& ValueOrDie() & {
    DieIfError();
    return std::get<T>(storage_);
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(storage_));
  }

  /// Returns the value or \p fallback when this result holds an error.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(storage_);
    return fallback;
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::cerr << "Result<T>::ValueOrDie on error: "
                << std::get<Status>(storage_).ToString() << "\n";
      std::abort();
    }
  }

  std::variant<Status, T> storage_;
};

}  // namespace scdwarf

#endif  // SCDWARF_COMMON_RESULT_H_
