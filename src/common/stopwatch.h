/// \file stopwatch.h
/// \brief Wall-clock stopwatch used by the benchmark harnesses to report the
/// same units as the paper (milliseconds, Table 5).

#ifndef SCDWARF_COMMON_STOPWATCH_H_
#define SCDWARF_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace scdwarf {

/// \brief Measures elapsed wall-clock time from construction or Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace scdwarf

#endif  // SCDWARF_COMMON_STOPWATCH_H_
