/// \file strings.h
/// \brief Small string utilities shared by the parsers, query languages and
/// report formatters.

#ifndef SCDWARF_COMMON_STRINGS_H_
#define SCDWARF_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace scdwarf {

/// \brief Splits \p input on \p delimiter. Adjacent delimiters produce empty
/// fields; an empty input produces a single empty field.
std::vector<std::string> StrSplit(std::string_view input, char delimiter);

/// \brief Joins \p parts with \p separator.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view input);

/// \brief ASCII lower-casing (locale independent).
std::string AsciiToLower(std::string_view input);

/// \brief ASCII upper-casing (locale independent).
std::string AsciiToUpper(std::string_view input);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// \brief Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// \brief Parses a base-10 signed integer; rejects trailing garbage.
Result<int64_t> ParseInt64(std::string_view text);

/// \brief Parses a floating-point number; rejects trailing garbage.
Result<double> ParseDouble(std::string_view text);

/// \brief Quotes a string for embedding in a CQL/SQL literal: wraps in single
/// quotes and doubles any embedded single quote.
std::string QuoteSqlString(std::string_view text);

/// \brief Formats a byte count as a human-readable string ("1.2 MB").
std::string FormatBytes(uint64_t bytes);

/// \brief Formats \p value with thousands separators ("1,181,344").
std::string FormatWithCommas(int64_t value);

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace scdwarf

#endif  // SCDWARF_COMMON_STRINGS_H_
