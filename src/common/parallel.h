/// \file parallel.h
/// \brief Deterministic data-parallel helpers over ThreadPool: contiguous
/// sharding, parallel-for, and sharded map whose results are combined in
/// shard order — so any reduction over them is reproducible regardless of
/// scheduling.
///
/// Thread-count policy lives here in one place: a knob value of 0 means
/// "auto", which honours the SCDWARF_THREADS environment variable and falls
/// back to std::thread::hardware_concurrency(). A resolved count of 1 always
/// means "run inline on the calling thread, no pool".

#ifndef SCDWARF_COMMON_PARALLEL_H_
#define SCDWARF_COMMON_PARALLEL_H_

#include <cstddef>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"

namespace scdwarf {

/// \brief The process-wide default thread count: SCDWARF_THREADS when set to
/// a positive integer, otherwise hardware_concurrency() (at least 1).
int DefaultThreadCount();

/// \brief Resolves a user-facing thread knob: values >= 1 pass through,
/// anything else (0, negative) means DefaultThreadCount().
int ResolveThreadCount(int requested);

/// \brief One contiguous shard of [0, n).
struct ShardRange {
  size_t shard = 0;  ///< shard index, dense from 0
  size_t begin = 0;
  size_t end = 0;
};

/// \brief Splits [0, n) into at most \p num_shards contiguous, near-equal
/// ranges (fewer when n < num_shards; empty when n == 0). The split depends
/// only on (n, num_shards), never on scheduling.
std::vector<ShardRange> SplitShards(size_t n, int num_shards);

/// \brief Runs \p fn(shard) for every shard of [0, n) on \p pool and blocks
/// until all complete. With a single shard the call runs inline.
template <typename Fn>
void ParallelForShards(ThreadPool& pool, size_t n, Fn&& fn) {
  std::vector<ShardRange> shards = SplitShards(n, pool.num_threads());
  if (shards.empty()) return;
  if (shards.size() == 1) {
    fn(shards[0]);
    return;
  }
  std::mutex mu;
  std::condition_variable done;
  size_t pending = shards.size();
  for (const ShardRange& shard : shards) {
    pool.Submit([&, shard] {
      fn(shard);
      std::lock_guard<std::mutex> lock(mu);
      if (--pending == 0) done.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return pending == 0; });
}

/// \brief Sharded map with deterministic reduction order: computes
/// \p fn(shard) -> T per shard concurrently and returns the results indexed
/// by shard (i.e. in input order), so folding over the returned vector is
/// reproducible for any scheduling.
template <typename T, typename Fn>
std::vector<T> ParallelMapShards(ThreadPool& pool, size_t n, Fn&& fn) {
  std::vector<ShardRange> shards = SplitShards(n, pool.num_threads());
  std::vector<T> results(shards.size());
  ParallelForShards(pool, n, [&](const ShardRange& shard) {
    results[shard.shard] = fn(shard);
  });
  return results;
}

}  // namespace scdwarf

#endif  // SCDWARF_COMMON_PARALLEL_H_
