/// \file bytes.h
/// \brief Binary encoding primitives used by the storage engines' on-disk
/// formats: little-endian fixed-width codecs, LEB128 varints and
/// length-prefixed strings over a growable byte buffer.

#ifndef SCDWARF_COMMON_BYTES_H_
#define SCDWARF_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace scdwarf {

/// \brief Append-only binary writer. All multi-byte integers are
/// little-endian; varints use unsigned LEB128 with zig-zag for signed values.
class ByteWriter {
 public:
  /// Appends a single byte.
  void PutU8(uint8_t value) { buffer_.push_back(value); }

  /// Appends a little-endian 32-bit unsigned integer.
  void PutU32(uint32_t value) { PutFixed(&value, sizeof(value)); }

  /// Appends a little-endian 64-bit unsigned integer.
  void PutU64(uint64_t value) { PutFixed(&value, sizeof(value)); }

  /// Appends an unsigned LEB128 varint (1-10 bytes).
  void PutVarint(uint64_t value);

  /// Appends a zig-zag encoded signed varint.
  void PutSignedVarint(int64_t value);

  /// Appends an IEEE-754 double in little-endian byte order.
  void PutDouble(double value) { PutFixed(&value, sizeof(value)); }

  /// Appends a varint length prefix followed by the raw bytes of \p value.
  void PutString(std::string_view value);

  /// Appends raw bytes with no length prefix.
  void PutRaw(const void* data, size_t size);

  /// Number of bytes written so far.
  size_t size() const { return buffer_.size(); }

  const std::vector<uint8_t>& data() const { return buffer_; }

  /// Moves the accumulated bytes out of the writer.
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }

  void Clear() { buffer_.clear(); }

 private:
  void PutFixed(const void* value, size_t size) {
    const auto* bytes = static_cast<const uint8_t*>(value);
    buffer_.insert(buffer_.end(), bytes, bytes + size);
  }

  std::vector<uint8_t> buffer_;
};

/// \brief Sequential binary reader over a borrowed byte span. The reader does
/// not own the bytes; the caller must keep them alive.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<uint64_t> ReadVarint();
  Result<int64_t> ReadSignedVarint();
  Result<double> ReadDouble();
  /// Reads a varint length prefix then that many bytes.
  Result<std::string> ReadString();

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - offset_; }

  /// Current read offset from the start of the span.
  size_t offset() const { return offset_; }

  bool AtEnd() const { return offset_ == size_; }

 private:
  Status ReadFixed(void* out, size_t size);

  const uint8_t* data_;
  size_t size_;
  size_t offset_ = 0;
};

/// \brief Zig-zag encodes a signed integer into an unsigned one.
inline uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

/// \brief Inverse of ZigZagEncode.
inline int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

/// \brief Number of bytes PutVarint would use for \p value.
size_t VarintLength(uint64_t value);

}  // namespace scdwarf

#endif  // SCDWARF_COMMON_BYTES_H_
