/// \file histogram.h
/// \brief Fixed-bucket concurrent histogram for latency-style measurements.
///
/// The bucket layout is fixed at construction, so recording is a single
/// binary search plus one relaxed atomic increment — safe to call from any
/// number of threads with no locking. Quantiles are estimated by linear
/// interpolation inside the bucket containing the requested rank, which is
/// the usual trade: bounded memory and wait-free writes for a bounded
/// relative error set by the bucket spacing.

#ifndef SCDWARF_COMMON_HISTOGRAM_H_
#define SCDWARF_COMMON_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

namespace scdwarf {

/// \brief Wait-free multi-writer histogram over fixed bucket bounds.
class FixedBucketHistogram {
 public:
  /// Buckets are (prev_bound, bounds[i]] plus a final overflow bucket.
  /// \p bounds must be strictly ascending and non-empty.
  explicit FixedBucketHistogram(std::vector<double> bounds);

  /// Default layout for request latencies in microseconds: a 1-2-5 ladder
  /// from 1us to 10s.
  static FixedBucketHistogram ForLatencyMicros();

  /// The bucket bounds of ForLatencyMicros(), for callers that construct the
  /// histogram elsewhere (the metrics registry allocates its histograms on
  /// the heap, and the atomic members make the type immovable).
  static std::vector<double> LatencyMicrosBounds();

  /// Records one sample. Thread-safe, lock-free (bucket counts are single
  /// increments; min/max tracking is a CAS loop).
  void Record(double value);

  /// Total samples recorded.
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Smallest recorded sample; 0 when empty.
  double min() const;

  /// Largest recorded sample; 0 when empty.
  double max() const;

  /// \brief Estimates the \p q quantile (0 <= q <= 1) by interpolating within
  /// the bucket holding the rank. Returns 0 when empty. q=0 and q=1 report
  /// the exact recorded min/max; ranks landing in the overflow bucket report
  /// the largest recorded sample (never a bound below it); interpolation in
  /// the first bucket starts at the recorded min rather than 0, so values
  /// below the first bound (including negatives) stay inside the observed
  /// range.
  double Quantile(double q) const;

  /// One bucket of a Snapshot(): inclusive upper bound plus its count.
  struct Bucket {
    double upper_bound = 0;  ///< +inf for the overflow bucket
    uint64_t count = 0;
  };

  /// Consistent-enough copy of the counters (buckets are read individually,
  /// so a snapshot taken during writes may be mid-update; totals still add
  /// up for monitoring purposes).
  std::vector<Bucket> Snapshot() const;

 private:
  std::vector<double> bounds_;                  ///< ascending upper bounds
  std::vector<std::atomic<uint64_t>> buckets_;  ///< bounds_.size() + overflow
  std::atomic<uint64_t> count_{0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

}  // namespace scdwarf

#endif  // SCDWARF_COMMON_HISTOGRAM_H_
