#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace scdwarf {

std::vector<std::string> StrSplit(std::string_view input, char delimiter) {
  std::vector<std::string> result;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      result.emplace_back(input.substr(start));
      break;
    }
    result.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return result;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(separator);
    result.append(parts[i]);
  }
  return result;
}

std::string_view StrTrim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string AsciiToLower(std::string_view input) {
  std::string result(input);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string AsciiToUpper(std::string_view input) {
  std::string result(input);
  for (char& c : result) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return result;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<int64_t> ParseInt64(std::string_view text) {
  text = StrTrim(text);
  if (text.empty()) return Status::ParseError("empty integer literal");
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer literal out of range: " + buffer);
  }
  if (end != buffer.c_str() + buffer.size()) {
    return Status::ParseError("invalid integer literal: " + buffer);
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view text) {
  text = StrTrim(text);
  if (text.empty()) return Status::ParseError("empty float literal");
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("float literal out of range: " + buffer);
  }
  if (end != buffer.c_str() + buffer.size()) {
    return Status::ParseError("invalid float literal: " + buffer);
  }
  return value;
}

std::string QuoteSqlString(std::string_view text) {
  std::string result;
  result.reserve(text.size() + 2);
  result.push_back('\'');
  for (char c : text) {
    if (c == '\'') result.push_back('\'');
    result.push_back(c);
  }
  result.push_back('\'');
  return result;
}

std::string FormatBytes(uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buffer[64];
  if (unit == 0) {
    std::snprintf(buffer, sizeof(buffer), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f %s", value, kUnits[unit]);
  }
  return buffer;
}

std::string FormatWithCommas(int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string result;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) result.push_back(',');
    result.push_back(*it);
    ++count;
  }
  if (value < 0) result.push_back('-');
  return {result.rbegin(), result.rend()};
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return result;
}

}  // namespace scdwarf
