/// \file metrics.h
/// \brief Process-wide named-metric registry: counters, gauges and
/// fixed-bucket histograms behind one uniform (name, labels) API.
///
/// Design: registration is the slow path (one mutex acquisition, done once
/// per call site — typically into a function-local static pointer); the hot
/// path is a relaxed atomic increment on a pointer the registry handed out.
/// Metric objects are never deleted or moved while the registry is alive, so
/// cached pointers stay valid for the registry's lifetime.
///
/// Label sets are bounded: at most kMaxSeriesPerName distinct label
/// combinations are materialized per metric name. Requests beyond the cap
/// collapse into a single overflow series labeled {"overflow":"true"}, so a
/// bug that interpolates unbounded values into labels degrades metric
/// resolution instead of memory.
///
/// Two registries matter in practice: GlobalRegistry() collects the
/// build-side instrumentation (ETL, DWARF construction, mappers, storage
/// engines), and each server::QueryServer owns a private registry for its
/// serving counters so concurrent server instances (tests, benches) don't
/// bleed into each other. The "metrics" wire op returns both.

#ifndef SCDWARF_COMMON_METRICS_H_
#define SCDWARF_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace scdwarf::metrics {

/// \brief Label set of one series: (key, value) pairs. Order-insensitive —
/// the registry sorts by key before composing the series identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Distinct label sets materialized per metric name before the overflow
/// series absorbs further combinations.
constexpr size_t kMaxSeriesPerName = 64;

/// \brief Monotonic event counter. Wait-free increments, relaxed reads.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Instantaneous level (queue depths, open sessions). Signed so
/// transient Add/Sub imbalances stay representable instead of wrapping.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// Lowercase wire/doc name of \p type: "counter", "gauge", "histogram".
const char* MetricTypeName(MetricType type);

/// \brief Point-in-time view of one series (see MetricRegistry::Snapshot).
struct MetricSnapshot {
  std::string name;
  MetricType type = MetricType::kCounter;
  Labels labels;  ///< sorted by key
  std::string help;
  uint64_t counter_value = 0;  ///< kCounter
  int64_t gauge_value = 0;     ///< kGauge
  /// kHistogram: count/min/max plus interpolated quantiles.
  uint64_t hist_count = 0;
  double hist_min = 0;
  double hist_max = 0;
  double hist_p50 = 0;
  double hist_p90 = 0;
  double hist_p99 = 0;
};

/// \brief A set of named metric series. Thread-safe; see the file comment
/// for the locking model.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// \brief Returns the counter series (\p name, \p labels), registering it
  /// on first use. \p help is recorded on first registration and ignored
  /// afterwards. Never returns null; on a type conflict (the name is already
  /// registered with a different type under the same labels) a process-wide
  /// dummy that is not part of any snapshot is returned and the conflict is
  /// logged once.
  Counter* GetCounter(std::string_view name, Labels labels = {},
                      std::string_view help = "");

  /// Gauge analogue of GetCounter.
  Gauge* GetGauge(std::string_view name, Labels labels = {},
                  std::string_view help = "");

  /// Histogram analogue of GetCounter. \p bounds empty selects the standard
  /// latency-microseconds ladder (FixedBucketHistogram::LatencyMicrosBounds);
  /// bounds are fixed by the first registration.
  FixedBucketHistogram* GetHistogram(std::string_view name, Labels labels = {},
                                     std::string_view help = "",
                                     std::vector<double> bounds = {});

  /// \brief Copies every registered series. Values are relaxed atomic reads
  /// taken while writers may be active: each individual value is exact at
  /// some instant, cross-metric consistency is not promised (the usual
  /// monitoring contract). Series appear in registration order.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Number of registered series (all names, all label sets).
  size_t size() const;

 private:
  struct Series {
    std::string name;
    MetricType type;
    Labels labels;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<FixedBucketHistogram> histogram;
  };

  /// Finds-or-creates the series, applying the cardinality cap. Returns the
  /// series when its type matches \p type, null on conflict.
  Series* GetSeries(std::string_view name, Labels labels, std::string_view help,
                    MetricType type, std::vector<double> bounds);

  mutable std::mutex mu_;
  /// Composed "name\x1f(k\x1ev)*" -> index into series_. The deque-like
  /// unique_ptr indirection keeps handed-out metric pointers stable.
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::unique_ptr<Series>> series_;
  std::unordered_map<std::string, size_t> series_per_name_;
};

/// \brief The process-wide registry used by build-side instrumentation.
MetricRegistry& GlobalRegistry();

/// \brief Renders snapshots as a JSON array (self-contained serializer so
/// common/ stays dependency-free):
///   [{"name":..., "type":"counter", "labels":{...}, "help":...,
///     "value":N}, ...,
///    {"name":..., "type":"histogram", ..., "count":N, "min":..,
///     "max":.., "p50":.., "p90":.., "p99":..}, ...]
std::string SnapshotToJson(const std::vector<MetricSnapshot>& snapshot);

/// \brief Renders snapshots in the Prometheus text exposition format (the
/// "metrics_text" wire op and the --prometheus-dump flags):
///
///   # HELP server_requests_total completed requests, including errors
///   # TYPE server_requests_total counter
///   server_requests_total 42
///
/// Counters and gauges map directly. Histograms are rendered as summaries
/// (quantile-labeled samples plus _count) followed by <name>_min / <name>_max
/// gauge families; FixedBucketHistogram tracks no sum, so no _sum sample is
/// emitted. Series of one name are grouped under a single HELP/TYPE header
/// regardless of their order in \p snapshot.
std::string SnapshotToPrometheusText(
    const std::vector<MetricSnapshot>& snapshot);

}  // namespace scdwarf::metrics

#endif  // SCDWARF_COMMON_METRICS_H_
