/// \file status.h
/// \brief Arrow-style Status error model used across the library.
///
/// Library code never throws on expected failure paths; every fallible
/// operation returns a Status (or a Result<T>, see result.h). The
/// SCD_RETURN_IF_ERROR / SCD_ASSIGN_OR_RETURN macros keep call sites terse.

#ifndef SCDWARF_COMMON_STATUS_H_
#define SCDWARF_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace scdwarf {

/// \brief Machine-readable error category carried by a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIoError = 4,
  kParseError = 5,
  kOutOfRange = 6,
  kFailedPrecondition = 7,
  kUnimplemented = 8,
  kInternal = 9,
};

/// \brief Returns the canonical lower-case name of a status code
/// (e.g. "invalid argument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: either OK or a code plus message.
///
/// The OK state is represented by a null internal pointer, so returning and
/// testing an OK status is a single pointer move/compare — cheap enough for
/// hot loops such as per-row inserts.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs a status with \p code and a human-readable \p message.
  Status(StatusCode code, std::string message);

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// \brief Factory helpers, one per error category.
  /// \{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// \}

  /// True iff the status carries no error.
  bool ok() const { return state_ == nullptr; }

  /// The status code; kOk when ok().
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }

  /// The error message; empty when ok().
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// \brief Returns "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// \brief Returns a copy of this status with \p context prepended to the
  /// message; useful when propagating errors up through layers.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace scdwarf

/// Propagates a non-OK Status to the caller.
#define SCD_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::scdwarf::Status _scd_status = (expr);       \
    if (!_scd_status.ok()) return _scd_status;    \
  } while (false)

#define SCD_CONCAT_IMPL(a, b) a##b
#define SCD_CONCAT(a, b) SCD_CONCAT_IMPL(a, b)

/// Evaluates an expression returning Result<T>; on success binds the value to
/// `lhs`, on failure returns the error status.
#define SCD_ASSIGN_OR_RETURN(lhs, expr)                                \
  auto SCD_CONCAT(_scd_result_, __LINE__) = (expr);                    \
  if (!SCD_CONCAT(_scd_result_, __LINE__).ok())                        \
    return SCD_CONCAT(_scd_result_, __LINE__).status();                \
  lhs = std::move(SCD_CONCAT(_scd_result_, __LINE__)).ValueOrDie()

#endif  // SCDWARF_COMMON_STATUS_H_
