/// \file trace.h
/// \brief Scoped-span tracer: a thread-safe ring buffer of
/// {name, start, dur, thread, parent} spans with a chrome://tracing export.
///
/// Tracing is **off by default** and enabled by the SCDWARF_TRACE
/// environment variable (any value except "", "0", "off", "false"). When
/// disabled a ScopedSpan is a single relaxed atomic-bool load — no clock
/// reads, no allocation, no locking — so instrumentation can stay compiled
/// into every hot path (ETL parse, construction sweep, apply lanes, flushes,
/// server ops) without perturbing production timings or the bit-identical
/// build guarantee (spans only observe, they never alter control flow).
///
/// When enabled, each ScopedSpan destructor appends one span to a fixed
/// ring buffer (kTraceCapacity spans; the oldest are overwritten and counted
/// as dropped). Parent linkage is a thread-local span stack, so nested
/// scopes form a tree per thread. Export with ExportChromeJson() and load
/// the file in chrome://tracing or https://ui.perfetto.dev.

#ifndef SCDWARF_COMMON_TRACE_H_
#define SCDWARF_COMMON_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace scdwarf::trace {

/// Spans retained before the ring overwrites the oldest.
constexpr size_t kTraceCapacity = 1 << 16;

/// \brief One completed scope.
struct Span {
  std::string name;
  double start_us = 0;  ///< since process trace-clock anchor
  double dur_us = 0;
  uint64_t thread = 0;  ///< small sequential per-thread id
  uint64_t id = 0;      ///< 1-based span id, unique per process
  uint64_t parent = 0;  ///< enclosing span's id, 0 for roots
};

/// True when span recording is active (env-initialized, see file comment).
bool Enabled();

/// Overrides the environment setting (used by --trace-dump and tests).
void SetEnabled(bool enabled);

/// Id of the innermost open span on this thread (0 when none or tracing is
/// off). Capture it before handing work to another thread and pass it to the
/// explicit-parent ScopedSpan constructor to link cross-thread spans into
/// one trace tree.
uint64_t CurrentSpanId();

/// \brief RAII span: records [construction, destruction) when tracing is
/// enabled, does nothing otherwise. \p name must outlive the scope (string
/// literals in practice).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  /// Parents the span on \p parent (a CurrentSpanId() captured on another
  /// thread) instead of this thread's innermost open span. Nested spans on
  /// this thread still stack beneath it, and the previous innermost span is
  /// restored on destruction.
  ScopedSpan(const char* name, uint64_t parent);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  double start_us_ = 0;
  uint64_t id_ = 0;      ///< 0 = tracing was disabled at construction
  uint64_t parent_ = 0;  ///< recorded parent linkage
  uint64_t prev_ = 0;    ///< this thread's innermost span to restore
};

/// Copies the buffered spans, oldest first. Thread-safe.
std::vector<Span> Snapshot();

/// Spans overwritten by the ring since the last Clear().
uint64_t dropped_spans();

/// Empties the buffer and resets the dropped counter (tests, dump-on-exit).
void Clear();

/// \brief Renders the buffer in the chrome://tracing "trace event" format:
/// {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,"pid":1,
/// "tid":...,"args":{"id":...,"parent":...}}, ...]}.
std::string ExportChromeJson();

}  // namespace scdwarf::trace

#endif  // SCDWARF_COMMON_TRACE_H_
