#include "common/parallel.h"

#include <cstdlib>
#include <thread>

#include "common/strings.h"

namespace scdwarf {

int DefaultThreadCount() {
  const char* env = std::getenv("SCDWARF_THREADS");
  if (env != nullptr && *env != '\0') {
    Result<int64_t> parsed = ParseInt64(env);
    if (parsed.ok() && *parsed >= 1) {
      // Cap at something sane; SCDWARF_THREADS=100000 is a typo, not a plan.
      return static_cast<int>(*parsed > 1024 ? 1024 : *parsed);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ResolveThreadCount(int requested) {
  return requested >= 1 ? requested : DefaultThreadCount();
}

std::vector<ShardRange> SplitShards(size_t n, int num_shards) {
  std::vector<ShardRange> shards;
  if (n == 0) return shards;
  size_t count = num_shards < 1 ? 1 : static_cast<size_t>(num_shards);
  if (count > n) count = n;
  shards.reserve(count);
  size_t base = n / count;
  size_t remainder = n % count;
  size_t begin = 0;
  for (size_t i = 0; i < count; ++i) {
    size_t size = base + (i < remainder ? 1 : 0);
    shards.push_back({i, begin, begin + size});
    begin += size;
  }
  return shards;
}

}  // namespace scdwarf
