/// \file rng.h
/// \brief Deterministic pseudo-random number generation for the synthetic
/// feed generators. Every dataset in the evaluation must be reproducible
/// bit-for-bit from its seed, so we avoid std::mt19937's platform quirks by
/// using a self-contained xoshiro256** implementation.

#ifndef SCDWARF_COMMON_RNG_H_
#define SCDWARF_COMMON_RNG_H_

#include <cstdint>

#include "common/hash.h"

namespace scdwarf {

/// \brief xoshiro256** PRNG seeded through splitmix64.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      word = MixBits(x);
    }
  }

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). \p bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    while (true) {
      uint64_t value = NextU64();
      if (value >= threshold) return value % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability \p p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace scdwarf

#endif  // SCDWARF_COMMON_RNG_H_
