/// \file hash.h
/// \brief 64-bit non-cryptographic hashing (FNV-1a with an avalanche
/// finalizer) used by the suffix-coalescing tables and the storage engines.

#ifndef SCDWARF_COMMON_HASH_H_
#define SCDWARF_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace scdwarf {

/// \brief Mixes the bits of \p x so that small input deltas flip roughly half
/// of the output bits (the splitmix64 finalizer).
inline uint64_t MixBits(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// \brief Hashes a byte span with FNV-1a then finalizes with MixBits.
inline uint64_t HashBytes(const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return MixBits(hash);
}

inline uint64_t HashString(std::string_view text) {
  return HashBytes(text.data(), text.size());
}

/// \brief Combines an existing hash with another value, order-sensitively.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return MixBits(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                         (seed >> 2)));
}

}  // namespace scdwarf

#endif  // SCDWARF_COMMON_HASH_H_
