#include "common/thread_pool.h"

#include <algorithm>

namespace scdwarf {

ThreadPool::ThreadPool(int num_threads) {
  int count = std::max(1, num_threads);
  workers_.reserve(count);
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace scdwarf
