# Empty dependencies file for scdwarf_mapper.
# This may be replaced when dependencies are built.
