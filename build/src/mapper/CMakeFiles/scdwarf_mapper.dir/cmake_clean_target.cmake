file(REMOVE_RECURSE
  "libscdwarf_mapper.a"
)
