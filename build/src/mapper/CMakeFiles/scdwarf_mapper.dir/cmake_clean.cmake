file(REMOVE_RECURSE
  "CMakeFiles/scdwarf_mapper.dir/dimension_table.cc.o"
  "CMakeFiles/scdwarf_mapper.dir/dimension_table.cc.o.d"
  "CMakeFiles/scdwarf_mapper.dir/id_map.cc.o"
  "CMakeFiles/scdwarf_mapper.dir/id_map.cc.o.d"
  "CMakeFiles/scdwarf_mapper.dir/nosql_dwarf_mapper.cc.o"
  "CMakeFiles/scdwarf_mapper.dir/nosql_dwarf_mapper.cc.o.d"
  "CMakeFiles/scdwarf_mapper.dir/nosql_min_mapper.cc.o"
  "CMakeFiles/scdwarf_mapper.dir/nosql_min_mapper.cc.o.d"
  "CMakeFiles/scdwarf_mapper.dir/sql_dwarf_mapper.cc.o"
  "CMakeFiles/scdwarf_mapper.dir/sql_dwarf_mapper.cc.o.d"
  "CMakeFiles/scdwarf_mapper.dir/sql_min_mapper.cc.o"
  "CMakeFiles/scdwarf_mapper.dir/sql_min_mapper.cc.o.d"
  "CMakeFiles/scdwarf_mapper.dir/stored_cube.cc.o"
  "CMakeFiles/scdwarf_mapper.dir/stored_cube.cc.o.d"
  "libscdwarf_mapper.a"
  "libscdwarf_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scdwarf_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
