
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapper/dimension_table.cc" "src/mapper/CMakeFiles/scdwarf_mapper.dir/dimension_table.cc.o" "gcc" "src/mapper/CMakeFiles/scdwarf_mapper.dir/dimension_table.cc.o.d"
  "/root/repo/src/mapper/id_map.cc" "src/mapper/CMakeFiles/scdwarf_mapper.dir/id_map.cc.o" "gcc" "src/mapper/CMakeFiles/scdwarf_mapper.dir/id_map.cc.o.d"
  "/root/repo/src/mapper/nosql_dwarf_mapper.cc" "src/mapper/CMakeFiles/scdwarf_mapper.dir/nosql_dwarf_mapper.cc.o" "gcc" "src/mapper/CMakeFiles/scdwarf_mapper.dir/nosql_dwarf_mapper.cc.o.d"
  "/root/repo/src/mapper/nosql_min_mapper.cc" "src/mapper/CMakeFiles/scdwarf_mapper.dir/nosql_min_mapper.cc.o" "gcc" "src/mapper/CMakeFiles/scdwarf_mapper.dir/nosql_min_mapper.cc.o.d"
  "/root/repo/src/mapper/sql_dwarf_mapper.cc" "src/mapper/CMakeFiles/scdwarf_mapper.dir/sql_dwarf_mapper.cc.o" "gcc" "src/mapper/CMakeFiles/scdwarf_mapper.dir/sql_dwarf_mapper.cc.o.d"
  "/root/repo/src/mapper/sql_min_mapper.cc" "src/mapper/CMakeFiles/scdwarf_mapper.dir/sql_min_mapper.cc.o" "gcc" "src/mapper/CMakeFiles/scdwarf_mapper.dir/sql_min_mapper.cc.o.d"
  "/root/repo/src/mapper/stored_cube.cc" "src/mapper/CMakeFiles/scdwarf_mapper.dir/stored_cube.cc.o" "gcc" "src/mapper/CMakeFiles/scdwarf_mapper.dir/stored_cube.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scdwarf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dwarf/CMakeFiles/scdwarf_dwarf.dir/DependInfo.cmake"
  "/root/repo/build/src/nosql/CMakeFiles/scdwarf_nosql.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/scdwarf_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
