file(REMOVE_RECURSE
  "libscdwarf_dwarf.a"
)
