file(REMOVE_RECURSE
  "CMakeFiles/scdwarf_dwarf.dir/builder.cc.o"
  "CMakeFiles/scdwarf_dwarf.dir/builder.cc.o.d"
  "CMakeFiles/scdwarf_dwarf.dir/dwarf_cube.cc.o"
  "CMakeFiles/scdwarf_dwarf.dir/dwarf_cube.cc.o.d"
  "CMakeFiles/scdwarf_dwarf.dir/hierarchy.cc.o"
  "CMakeFiles/scdwarf_dwarf.dir/hierarchy.cc.o.d"
  "CMakeFiles/scdwarf_dwarf.dir/query.cc.o"
  "CMakeFiles/scdwarf_dwarf.dir/query.cc.o.d"
  "CMakeFiles/scdwarf_dwarf.dir/traversal.cc.o"
  "CMakeFiles/scdwarf_dwarf.dir/traversal.cc.o.d"
  "CMakeFiles/scdwarf_dwarf.dir/update.cc.o"
  "CMakeFiles/scdwarf_dwarf.dir/update.cc.o.d"
  "libscdwarf_dwarf.a"
  "libscdwarf_dwarf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scdwarf_dwarf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
