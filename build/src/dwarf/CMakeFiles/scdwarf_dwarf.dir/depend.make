# Empty dependencies file for scdwarf_dwarf.
# This may be replaced when dependencies are built.
