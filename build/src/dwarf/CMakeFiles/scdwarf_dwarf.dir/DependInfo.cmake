
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dwarf/builder.cc" "src/dwarf/CMakeFiles/scdwarf_dwarf.dir/builder.cc.o" "gcc" "src/dwarf/CMakeFiles/scdwarf_dwarf.dir/builder.cc.o.d"
  "/root/repo/src/dwarf/dwarf_cube.cc" "src/dwarf/CMakeFiles/scdwarf_dwarf.dir/dwarf_cube.cc.o" "gcc" "src/dwarf/CMakeFiles/scdwarf_dwarf.dir/dwarf_cube.cc.o.d"
  "/root/repo/src/dwarf/hierarchy.cc" "src/dwarf/CMakeFiles/scdwarf_dwarf.dir/hierarchy.cc.o" "gcc" "src/dwarf/CMakeFiles/scdwarf_dwarf.dir/hierarchy.cc.o.d"
  "/root/repo/src/dwarf/query.cc" "src/dwarf/CMakeFiles/scdwarf_dwarf.dir/query.cc.o" "gcc" "src/dwarf/CMakeFiles/scdwarf_dwarf.dir/query.cc.o.d"
  "/root/repo/src/dwarf/traversal.cc" "src/dwarf/CMakeFiles/scdwarf_dwarf.dir/traversal.cc.o" "gcc" "src/dwarf/CMakeFiles/scdwarf_dwarf.dir/traversal.cc.o.d"
  "/root/repo/src/dwarf/update.cc" "src/dwarf/CMakeFiles/scdwarf_dwarf.dir/update.cc.o" "gcc" "src/dwarf/CMakeFiles/scdwarf_dwarf.dir/update.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scdwarf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
