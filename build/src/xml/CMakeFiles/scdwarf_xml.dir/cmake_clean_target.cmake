file(REMOVE_RECURSE
  "libscdwarf_xml.a"
)
