# Empty dependencies file for scdwarf_xml.
# This may be replaced when dependencies are built.
