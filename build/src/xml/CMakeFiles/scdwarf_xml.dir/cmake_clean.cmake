file(REMOVE_RECURSE
  "CMakeFiles/scdwarf_xml.dir/xml_node.cc.o"
  "CMakeFiles/scdwarf_xml.dir/xml_node.cc.o.d"
  "CMakeFiles/scdwarf_xml.dir/xml_parser.cc.o"
  "CMakeFiles/scdwarf_xml.dir/xml_parser.cc.o.d"
  "CMakeFiles/scdwarf_xml.dir/xml_path.cc.o"
  "CMakeFiles/scdwarf_xml.dir/xml_path.cc.o.d"
  "libscdwarf_xml.a"
  "libscdwarf_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scdwarf_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
