
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nosql/cql.cc" "src/nosql/CMakeFiles/scdwarf_nosql.dir/cql.cc.o" "gcc" "src/nosql/CMakeFiles/scdwarf_nosql.dir/cql.cc.o.d"
  "/root/repo/src/nosql/database.cc" "src/nosql/CMakeFiles/scdwarf_nosql.dir/database.cc.o" "gcc" "src/nosql/CMakeFiles/scdwarf_nosql.dir/database.cc.o.d"
  "/root/repo/src/nosql/schema.cc" "src/nosql/CMakeFiles/scdwarf_nosql.dir/schema.cc.o" "gcc" "src/nosql/CMakeFiles/scdwarf_nosql.dir/schema.cc.o.d"
  "/root/repo/src/nosql/table.cc" "src/nosql/CMakeFiles/scdwarf_nosql.dir/table.cc.o" "gcc" "src/nosql/CMakeFiles/scdwarf_nosql.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scdwarf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
