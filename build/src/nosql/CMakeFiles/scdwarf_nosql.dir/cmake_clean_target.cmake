file(REMOVE_RECURSE
  "libscdwarf_nosql.a"
)
