file(REMOVE_RECURSE
  "CMakeFiles/scdwarf_nosql.dir/cql.cc.o"
  "CMakeFiles/scdwarf_nosql.dir/cql.cc.o.d"
  "CMakeFiles/scdwarf_nosql.dir/database.cc.o"
  "CMakeFiles/scdwarf_nosql.dir/database.cc.o.d"
  "CMakeFiles/scdwarf_nosql.dir/schema.cc.o"
  "CMakeFiles/scdwarf_nosql.dir/schema.cc.o.d"
  "CMakeFiles/scdwarf_nosql.dir/table.cc.o"
  "CMakeFiles/scdwarf_nosql.dir/table.cc.o.d"
  "libscdwarf_nosql.a"
  "libscdwarf_nosql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scdwarf_nosql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
