# Empty compiler generated dependencies file for scdwarf_nosql.
# This may be replaced when dependencies are built.
