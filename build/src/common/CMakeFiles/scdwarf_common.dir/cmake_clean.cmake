file(REMOVE_RECURSE
  "CMakeFiles/scdwarf_common.dir/bytes.cc.o"
  "CMakeFiles/scdwarf_common.dir/bytes.cc.o.d"
  "CMakeFiles/scdwarf_common.dir/civil_time.cc.o"
  "CMakeFiles/scdwarf_common.dir/civil_time.cc.o.d"
  "CMakeFiles/scdwarf_common.dir/logging.cc.o"
  "CMakeFiles/scdwarf_common.dir/logging.cc.o.d"
  "CMakeFiles/scdwarf_common.dir/parallel.cc.o"
  "CMakeFiles/scdwarf_common.dir/parallel.cc.o.d"
  "CMakeFiles/scdwarf_common.dir/status.cc.o"
  "CMakeFiles/scdwarf_common.dir/status.cc.o.d"
  "CMakeFiles/scdwarf_common.dir/strings.cc.o"
  "CMakeFiles/scdwarf_common.dir/strings.cc.o.d"
  "CMakeFiles/scdwarf_common.dir/thread_pool.cc.o"
  "CMakeFiles/scdwarf_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/scdwarf_common.dir/value.cc.o"
  "CMakeFiles/scdwarf_common.dir/value.cc.o.d"
  "libscdwarf_common.a"
  "libscdwarf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scdwarf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
