# Empty dependencies file for scdwarf_common.
# This may be replaced when dependencies are built.
