file(REMOVE_RECURSE
  "libscdwarf_common.a"
)
