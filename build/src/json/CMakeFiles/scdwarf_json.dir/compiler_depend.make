# Empty compiler generated dependencies file for scdwarf_json.
# This may be replaced when dependencies are built.
