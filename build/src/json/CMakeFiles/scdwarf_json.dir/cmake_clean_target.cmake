file(REMOVE_RECURSE
  "libscdwarf_json.a"
)
