file(REMOVE_RECURSE
  "CMakeFiles/scdwarf_json.dir/json_parser.cc.o"
  "CMakeFiles/scdwarf_json.dir/json_parser.cc.o.d"
  "CMakeFiles/scdwarf_json.dir/json_value.cc.o"
  "CMakeFiles/scdwarf_json.dir/json_value.cc.o.d"
  "libscdwarf_json.a"
  "libscdwarf_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scdwarf_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
