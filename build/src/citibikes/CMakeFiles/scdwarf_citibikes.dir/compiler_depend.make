# Empty compiler generated dependencies file for scdwarf_citibikes.
# This may be replaced when dependencies are built.
