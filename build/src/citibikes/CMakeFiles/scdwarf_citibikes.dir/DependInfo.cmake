
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/citibikes/bike_feed.cc" "src/citibikes/CMakeFiles/scdwarf_citibikes.dir/bike_feed.cc.o" "gcc" "src/citibikes/CMakeFiles/scdwarf_citibikes.dir/bike_feed.cc.o.d"
  "/root/repo/src/citibikes/datasets.cc" "src/citibikes/CMakeFiles/scdwarf_citibikes.dir/datasets.cc.o" "gcc" "src/citibikes/CMakeFiles/scdwarf_citibikes.dir/datasets.cc.o.d"
  "/root/repo/src/citibikes/other_feeds.cc" "src/citibikes/CMakeFiles/scdwarf_citibikes.dir/other_feeds.cc.o" "gcc" "src/citibikes/CMakeFiles/scdwarf_citibikes.dir/other_feeds.cc.o.d"
  "/root/repo/src/citibikes/stations.cc" "src/citibikes/CMakeFiles/scdwarf_citibikes.dir/stations.cc.o" "gcc" "src/citibikes/CMakeFiles/scdwarf_citibikes.dir/stations.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scdwarf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/scdwarf_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/scdwarf_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
