file(REMOVE_RECURSE
  "CMakeFiles/scdwarf_citibikes.dir/bike_feed.cc.o"
  "CMakeFiles/scdwarf_citibikes.dir/bike_feed.cc.o.d"
  "CMakeFiles/scdwarf_citibikes.dir/datasets.cc.o"
  "CMakeFiles/scdwarf_citibikes.dir/datasets.cc.o.d"
  "CMakeFiles/scdwarf_citibikes.dir/other_feeds.cc.o"
  "CMakeFiles/scdwarf_citibikes.dir/other_feeds.cc.o.d"
  "CMakeFiles/scdwarf_citibikes.dir/stations.cc.o"
  "CMakeFiles/scdwarf_citibikes.dir/stations.cc.o.d"
  "libscdwarf_citibikes.a"
  "libscdwarf_citibikes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scdwarf_citibikes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
