file(REMOVE_RECURSE
  "libscdwarf_citibikes.a"
)
