file(REMOVE_RECURSE
  "libscdwarf_clustered.a"
)
