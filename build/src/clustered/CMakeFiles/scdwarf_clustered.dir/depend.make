# Empty dependencies file for scdwarf_clustered.
# This may be replaced when dependencies are built.
