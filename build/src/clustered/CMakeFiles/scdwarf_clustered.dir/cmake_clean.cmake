file(REMOVE_RECURSE
  "CMakeFiles/scdwarf_clustered.dir/flat_file.cc.o"
  "CMakeFiles/scdwarf_clustered.dir/flat_file.cc.o.d"
  "libscdwarf_clustered.a"
  "libscdwarf_clustered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scdwarf_clustered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
