file(REMOVE_RECURSE
  "libscdwarf_sql.a"
)
