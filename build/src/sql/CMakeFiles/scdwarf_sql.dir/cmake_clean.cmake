file(REMOVE_RECURSE
  "CMakeFiles/scdwarf_sql.dir/catalog.cc.o"
  "CMakeFiles/scdwarf_sql.dir/catalog.cc.o.d"
  "CMakeFiles/scdwarf_sql.dir/engine.cc.o"
  "CMakeFiles/scdwarf_sql.dir/engine.cc.o.d"
  "CMakeFiles/scdwarf_sql.dir/heap_table.cc.o"
  "CMakeFiles/scdwarf_sql.dir/heap_table.cc.o.d"
  "CMakeFiles/scdwarf_sql.dir/sql.cc.o"
  "CMakeFiles/scdwarf_sql.dir/sql.cc.o.d"
  "libscdwarf_sql.a"
  "libscdwarf_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scdwarf_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
