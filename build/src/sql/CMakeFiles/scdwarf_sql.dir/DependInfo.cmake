
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/catalog.cc" "src/sql/CMakeFiles/scdwarf_sql.dir/catalog.cc.o" "gcc" "src/sql/CMakeFiles/scdwarf_sql.dir/catalog.cc.o.d"
  "/root/repo/src/sql/engine.cc" "src/sql/CMakeFiles/scdwarf_sql.dir/engine.cc.o" "gcc" "src/sql/CMakeFiles/scdwarf_sql.dir/engine.cc.o.d"
  "/root/repo/src/sql/heap_table.cc" "src/sql/CMakeFiles/scdwarf_sql.dir/heap_table.cc.o" "gcc" "src/sql/CMakeFiles/scdwarf_sql.dir/heap_table.cc.o.d"
  "/root/repo/src/sql/sql.cc" "src/sql/CMakeFiles/scdwarf_sql.dir/sql.cc.o" "gcc" "src/sql/CMakeFiles/scdwarf_sql.dir/sql.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scdwarf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
