# Empty compiler generated dependencies file for scdwarf_sql.
# This may be replaced when dependencies are built.
