# Empty dependencies file for scdwarf_etl.
# This may be replaced when dependencies are built.
