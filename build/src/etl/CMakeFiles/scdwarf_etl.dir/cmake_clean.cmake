file(REMOVE_RECURSE
  "CMakeFiles/scdwarf_etl.dir/extractor.cc.o"
  "CMakeFiles/scdwarf_etl.dir/extractor.cc.o.d"
  "CMakeFiles/scdwarf_etl.dir/parallel_pipeline.cc.o"
  "CMakeFiles/scdwarf_etl.dir/parallel_pipeline.cc.o.d"
  "CMakeFiles/scdwarf_etl.dir/pipeline.cc.o"
  "CMakeFiles/scdwarf_etl.dir/pipeline.cc.o.d"
  "CMakeFiles/scdwarf_etl.dir/tuple_mapper.cc.o"
  "CMakeFiles/scdwarf_etl.dir/tuple_mapper.cc.o.d"
  "libscdwarf_etl.a"
  "libscdwarf_etl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scdwarf_etl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
