
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/etl/extractor.cc" "src/etl/CMakeFiles/scdwarf_etl.dir/extractor.cc.o" "gcc" "src/etl/CMakeFiles/scdwarf_etl.dir/extractor.cc.o.d"
  "/root/repo/src/etl/parallel_pipeline.cc" "src/etl/CMakeFiles/scdwarf_etl.dir/parallel_pipeline.cc.o" "gcc" "src/etl/CMakeFiles/scdwarf_etl.dir/parallel_pipeline.cc.o.d"
  "/root/repo/src/etl/pipeline.cc" "src/etl/CMakeFiles/scdwarf_etl.dir/pipeline.cc.o" "gcc" "src/etl/CMakeFiles/scdwarf_etl.dir/pipeline.cc.o.d"
  "/root/repo/src/etl/tuple_mapper.cc" "src/etl/CMakeFiles/scdwarf_etl.dir/tuple_mapper.cc.o" "gcc" "src/etl/CMakeFiles/scdwarf_etl.dir/tuple_mapper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scdwarf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/scdwarf_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/scdwarf_json.dir/DependInfo.cmake"
  "/root/repo/build/src/dwarf/CMakeFiles/scdwarf_dwarf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
