file(REMOVE_RECURSE
  "libscdwarf_etl.a"
)
