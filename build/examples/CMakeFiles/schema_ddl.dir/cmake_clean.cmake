file(REMOVE_RECURSE
  "CMakeFiles/schema_ddl.dir/schema_ddl.cpp.o"
  "CMakeFiles/schema_ddl.dir/schema_ddl.cpp.o.d"
  "schema_ddl"
  "schema_ddl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_ddl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
