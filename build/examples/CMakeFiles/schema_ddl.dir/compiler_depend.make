# Empty compiler generated dependencies file for schema_ddl.
# This may be replaced when dependencies are built.
