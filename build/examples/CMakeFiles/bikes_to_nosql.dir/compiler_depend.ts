# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bikes_to_nosql.
