file(REMOVE_RECURSE
  "CMakeFiles/bikes_to_nosql.dir/bikes_to_nosql.cpp.o"
  "CMakeFiles/bikes_to_nosql.dir/bikes_to_nosql.cpp.o.d"
  "bikes_to_nosql"
  "bikes_to_nosql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bikes_to_nosql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
