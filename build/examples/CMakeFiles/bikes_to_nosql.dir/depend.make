# Empty dependencies file for bikes_to_nosql.
# This may be replaced when dependencies are built.
