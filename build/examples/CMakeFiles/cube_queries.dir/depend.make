# Empty dependencies file for cube_queries.
# This may be replaced when dependencies are built.
