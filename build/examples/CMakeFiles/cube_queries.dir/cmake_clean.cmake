file(REMOVE_RECURSE
  "CMakeFiles/cube_queries.dir/cube_queries.cpp.o"
  "CMakeFiles/cube_queries.dir/cube_queries.cpp.o.d"
  "cube_queries"
  "cube_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cube_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
