file(REMOVE_RECURSE
  "CMakeFiles/bench_dwarf_construction.dir/bench_dwarf_construction.cc.o"
  "CMakeFiles/bench_dwarf_construction.dir/bench_dwarf_construction.cc.o.d"
  "bench_dwarf_construction"
  "bench_dwarf_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dwarf_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
