# Empty dependencies file for bench_dwarf_construction.
# This may be replaced when dependencies are built.
