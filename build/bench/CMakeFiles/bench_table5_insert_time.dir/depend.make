# Empty dependencies file for bench_table5_insert_time.
# This may be replaced when dependencies are built.
