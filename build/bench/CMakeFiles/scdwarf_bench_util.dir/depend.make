# Empty dependencies file for scdwarf_bench_util.
# This may be replaced when dependencies are built.
