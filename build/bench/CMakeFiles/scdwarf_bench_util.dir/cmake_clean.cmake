file(REMOVE_RECURSE
  "CMakeFiles/scdwarf_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/scdwarf_bench_util.dir/bench_util.cc.o.d"
  "libscdwarf_bench_util.a"
  "libscdwarf_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scdwarf_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
