file(REMOVE_RECURSE
  "libscdwarf_bench_util.a"
)
