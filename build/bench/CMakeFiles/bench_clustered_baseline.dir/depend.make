# Empty dependencies file for bench_clustered_baseline.
# This may be replaced when dependencies are built.
