file(REMOVE_RECURSE
  "CMakeFiles/bench_clustered_baseline.dir/bench_clustered_baseline.cc.o"
  "CMakeFiles/bench_clustered_baseline.dir/bench_clustered_baseline.cc.o.d"
  "bench_clustered_baseline"
  "bench_clustered_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clustered_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
