# Empty compiler generated dependencies file for bench_query_primitives.
# This may be replaced when dependencies are built.
