file(REMOVE_RECURSE
  "CMakeFiles/bench_query_primitives.dir/bench_query_primitives.cc.o"
  "CMakeFiles/bench_query_primitives.dir/bench_query_primitives.cc.o.d"
  "bench_query_primitives"
  "bench_query_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
