file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_pipeline.dir/bench_parallel_pipeline.cc.o"
  "CMakeFiles/bench_parallel_pipeline.dir/bench_parallel_pipeline.cc.o.d"
  "bench_parallel_pipeline"
  "bench_parallel_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
