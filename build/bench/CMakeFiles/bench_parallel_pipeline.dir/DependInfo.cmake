
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_parallel_pipeline.cc" "bench/CMakeFiles/bench_parallel_pipeline.dir/bench_parallel_pipeline.cc.o" "gcc" "bench/CMakeFiles/bench_parallel_pipeline.dir/bench_parallel_pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/scdwarf_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/citibikes/CMakeFiles/scdwarf_citibikes.dir/DependInfo.cmake"
  "/root/repo/build/src/etl/CMakeFiles/scdwarf_etl.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/scdwarf_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/scdwarf_json.dir/DependInfo.cmake"
  "/root/repo/build/src/mapper/CMakeFiles/scdwarf_mapper.dir/DependInfo.cmake"
  "/root/repo/build/src/dwarf/CMakeFiles/scdwarf_dwarf.dir/DependInfo.cmake"
  "/root/repo/build/src/nosql/CMakeFiles/scdwarf_nosql.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/scdwarf_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/scdwarf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
