# Empty dependencies file for bench_parallel_pipeline.
# This may be replaced when dependencies are built.
