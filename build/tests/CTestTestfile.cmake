# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/dwarf_builder_test[1]_include.cmake")
include("/root/repo/build/tests/dwarf_query_test[1]_include.cmake")
include("/root/repo/build/tests/dwarf_traversal_test[1]_include.cmake")
include("/root/repo/build/tests/nosql_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/mapper_test[1]_include.cmake")
include("/root/repo/build/tests/civil_time_test[1]_include.cmake")
include("/root/repo/build/tests/citibikes_test[1]_include.cmake")
include("/root/repo/build/tests/etl_test[1]_include.cmake")
include("/root/repo/build/tests/clustered_test[1]_include.cmake")
include("/root/repo/build/tests/dwarf_hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/dwarf_update_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/dimension_table_test[1]_include.cmake")
include("/root/repo/build/tests/deletion_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_pipeline_test[1]_include.cmake")
