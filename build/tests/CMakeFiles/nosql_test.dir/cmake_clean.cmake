file(REMOVE_RECURSE
  "CMakeFiles/nosql_test.dir/nosql_test.cc.o"
  "CMakeFiles/nosql_test.dir/nosql_test.cc.o.d"
  "nosql_test"
  "nosql_test.pdb"
  "nosql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nosql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
