# Empty dependencies file for nosql_test.
# This may be replaced when dependencies are built.
