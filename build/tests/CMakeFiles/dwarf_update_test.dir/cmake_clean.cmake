file(REMOVE_RECURSE
  "CMakeFiles/dwarf_update_test.dir/dwarf_update_test.cc.o"
  "CMakeFiles/dwarf_update_test.dir/dwarf_update_test.cc.o.d"
  "dwarf_update_test"
  "dwarf_update_test.pdb"
  "dwarf_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwarf_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
