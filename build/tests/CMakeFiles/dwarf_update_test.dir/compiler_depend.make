# Empty compiler generated dependencies file for dwarf_update_test.
# This may be replaced when dependencies are built.
