# Empty dependencies file for dwarf_builder_test.
# This may be replaced when dependencies are built.
