file(REMOVE_RECURSE
  "CMakeFiles/dwarf_builder_test.dir/dwarf_builder_test.cc.o"
  "CMakeFiles/dwarf_builder_test.dir/dwarf_builder_test.cc.o.d"
  "dwarf_builder_test"
  "dwarf_builder_test.pdb"
  "dwarf_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwarf_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
