file(REMOVE_RECURSE
  "CMakeFiles/citibikes_test.dir/citibikes_test.cc.o"
  "CMakeFiles/citibikes_test.dir/citibikes_test.cc.o.d"
  "citibikes_test"
  "citibikes_test.pdb"
  "citibikes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citibikes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
