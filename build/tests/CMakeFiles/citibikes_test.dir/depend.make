# Empty dependencies file for citibikes_test.
# This may be replaced when dependencies are built.
