# Empty dependencies file for dwarf_query_test.
# This may be replaced when dependencies are built.
