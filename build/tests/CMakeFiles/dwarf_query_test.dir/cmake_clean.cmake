file(REMOVE_RECURSE
  "CMakeFiles/dwarf_query_test.dir/dwarf_query_test.cc.o"
  "CMakeFiles/dwarf_query_test.dir/dwarf_query_test.cc.o.d"
  "dwarf_query_test"
  "dwarf_query_test.pdb"
  "dwarf_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwarf_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
