# Empty dependencies file for dimension_table_test.
# This may be replaced when dependencies are built.
