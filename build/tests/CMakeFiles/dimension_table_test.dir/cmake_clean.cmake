file(REMOVE_RECURSE
  "CMakeFiles/dimension_table_test.dir/dimension_table_test.cc.o"
  "CMakeFiles/dimension_table_test.dir/dimension_table_test.cc.o.d"
  "dimension_table_test"
  "dimension_table_test.pdb"
  "dimension_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimension_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
