
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel_pipeline_test.cc" "tests/CMakeFiles/parallel_pipeline_test.dir/parallel_pipeline_test.cc.o" "gcc" "tests/CMakeFiles/parallel_pipeline_test.dir/parallel_pipeline_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/etl/CMakeFiles/scdwarf_etl.dir/DependInfo.cmake"
  "/root/repo/build/src/citibikes/CMakeFiles/scdwarf_citibikes.dir/DependInfo.cmake"
  "/root/repo/build/src/mapper/CMakeFiles/scdwarf_mapper.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/scdwarf_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/scdwarf_json.dir/DependInfo.cmake"
  "/root/repo/build/src/dwarf/CMakeFiles/scdwarf_dwarf.dir/DependInfo.cmake"
  "/root/repo/build/src/nosql/CMakeFiles/scdwarf_nosql.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/scdwarf_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/scdwarf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
