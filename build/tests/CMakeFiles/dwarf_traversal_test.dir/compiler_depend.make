# Empty compiler generated dependencies file for dwarf_traversal_test.
# This may be replaced when dependencies are built.
