file(REMOVE_RECURSE
  "CMakeFiles/dwarf_traversal_test.dir/dwarf_traversal_test.cc.o"
  "CMakeFiles/dwarf_traversal_test.dir/dwarf_traversal_test.cc.o.d"
  "dwarf_traversal_test"
  "dwarf_traversal_test.pdb"
  "dwarf_traversal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwarf_traversal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
