# Empty compiler generated dependencies file for dwarf_hierarchy_test.
# This may be replaced when dependencies are built.
