file(REMOVE_RECURSE
  "CMakeFiles/dwarf_hierarchy_test.dir/dwarf_hierarchy_test.cc.o"
  "CMakeFiles/dwarf_hierarchy_test.dir/dwarf_hierarchy_test.cc.o.d"
  "dwarf_hierarchy_test"
  "dwarf_hierarchy_test.pdb"
  "dwarf_hierarchy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwarf_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
