// Ablations for the design choices §5.1 calls out (see DESIGN.md §5):
//   1. NoSQL-Min's two secondary indexes — insert time and size with vs
//      without them (the paper's explanation for NoSQL-Min's last place).
//   2. set<int> columns vs exploded relationship rows — the DWARF_Node
//      children stored as one set-typed row vs one row per edge (the
//      paper's explanation for MySQL-DWARF's size blow-up, measured inside
//      the same NoSQL engine to isolate the schema effect).
//   3. Suffix coalescing — cube size with the DWARF optimization disabled.
//   4. Merge memoization — construction time without the repeated-merge
//      cache.
//   5. Bulk mutations vs per-row CQL statements — §4 generates textual
//      INSERTs; this measures what executing them one by one costs.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "citibikes/bike_feed.h"
#include "common/stopwatch.h"
#include "dwarf/builder.h"
#include "etl/pipeline.h"
#include "mapper/id_map.h"
#include "mapper/nosql_dwarf_mapper.h"
#include "mapper/nosql_min_mapper.h"
#include "nosql/database.h"

namespace {

using namespace scdwarf;

const char* kDataset = "Week";

std::shared_ptr<const dwarf::DwarfCube> Cube() {
  static std::shared_ptr<const dwarf::DwarfCube> cube = [] {
    auto result = benchutil::GetDatasetCube(kDataset);
    if (!result.ok()) {
      std::fprintf(stderr, "cube build failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    return *result;
  }();
  return cube;
}

// ------------------------------------------------- 1. secondary indexes

void BM_NoSqlMinIndexes(benchmark::State& state) {
  auto cube = Cube();
  bool with_indexes = state.range(0) != 0;
  for (auto _ : state) {
    nosql::Database db;
    mapper::NoSqlMinMapperOptions options;
    options.create_secondary_indexes = with_indexes;
    mapper::NoSqlMinMapper cube_mapper(&db, "minks", options);
    Stopwatch watch;
    auto id = cube_mapper.Store(*cube);
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
    state.SetIterationTime(watch.ElapsedSeconds());
    state.counters["store_MB"] =
        static_cast<double>(db.EstimateBytes()) / (1 << 20);
  }
}
BENCHMARK(BM_NoSqlMinIndexes)
    ->Arg(1)
    ->Arg(0)
    ->ArgName("with_indexes")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);

// ----------------------------------- 2. set columns vs exploded rows

void BM_NodeChildrenRepresentation(benchmark::State& state) {
  auto cube = Cube();
  bool as_sets = state.range(0) != 0;
  mapper::CubeIdMap ids = mapper::AssignIds(*cube, 0, 0);
  for (auto _ : state) {
    nosql::Database db;
    Status status = db.CreateKeyspace("ks");
    if (as_sets) {
      status = db.CreateTable(nosql::TableSchema(
          "ks", "node",
          {{"id", DataType::kInt}, {"childrenids", DataType::kIntSet}}, "id"));
    } else {
      status = db.CreateTable(nosql::TableSchema(
          "ks", "node_children",
          {{"id", DataType::kInt},
           {"node_id", DataType::kInt},
           {"cell_id", DataType::kInt}},
          "id"));
    }
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    Stopwatch watch;
    int64_t edge_id = 0;
    uint64_t rows = 0;
    for (dwarf::NodeId node_id : ids.visit_order) {
      std::vector<int64_t> children = ids.cell_ids[node_id];
      children.push_back(ids.all_cell_ids[node_id]);
      if (as_sets) {
        status = db.Insert("ks", "node",
                           {Value::Int(ids.node_ids[node_id]),
                            Value::IntSet(std::move(children))});
        ++rows;
        if (!status.ok()) break;
      } else {
        for (int64_t child : children) {
          status = db.Insert("ks", "node_children",
                             {Value::Int(edge_id++),
                              Value::Int(ids.node_ids[node_id]),
                              Value::Int(child)});
          ++rows;
          if (!status.ok()) break;
        }
      }
    }
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    state.SetIterationTime(watch.ElapsedSeconds());
    state.counters["rows"] = static_cast<double>(rows);
    state.counters["store_MB"] =
        static_cast<double>(db.EstimateBytes()) / (1 << 20);
  }
}
BENCHMARK(BM_NodeChildrenRepresentation)
    ->Arg(1)
    ->Arg(0)
    ->ArgName("as_sets")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);

// -------------------------------------------------- 3/4. DWARF options

Result<dwarf::DwarfCube> BuildWithOptions(dwarf::BuilderOptions options) {
  citibikes::BikeFeedConfig config;
  config.target_records = 20000;
  config.period_seconds = 3 * 24 * 3600;
  citibikes::BikeFeedGenerator feed(config);
  SCD_ASSIGN_OR_RETURN(etl::CubePipeline pipeline,
                       etl::MakeBikesXmlPipeline(options));
  while (feed.HasNext()) {
    SCD_RETURN_IF_ERROR(pipeline.ConsumeXml(feed.NextXml()));
  }
  return std::move(pipeline).Finish();
}

void BM_SuffixCoalescing(benchmark::State& state) {
  dwarf::BuilderOptions options;
  options.enable_suffix_coalescing = state.range(0) != 0;
  options.enable_merge_memoization = options.enable_suffix_coalescing;
  for (auto _ : state) {
    auto cube = BuildWithOptions(options);
    if (!cube.ok()) {
      state.SkipWithError(cube.status().ToString().c_str());
      return;
    }
    state.counters["nodes"] = static_cast<double>(cube->num_nodes());
    state.counters["cells"] = static_cast<double>(cube->stats().cell_count);
    state.counters["approx_MB"] =
        static_cast<double>(cube->stats().approx_bytes) / (1 << 20);
  }
}
BENCHMARK(BM_SuffixCoalescing)
    ->Arg(1)
    ->Arg(0)
    ->ArgName("coalescing")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_MergeMemoization(benchmark::State& state) {
  dwarf::BuilderOptions options;
  options.enable_suffix_coalescing = true;
  options.enable_merge_memoization = state.range(0) != 0;
  for (auto _ : state) {
    auto cube = BuildWithOptions(options);
    if (!cube.ok()) {
      state.SkipWithError(cube.status().ToString().c_str());
      return;
    }
    state.counters["nodes"] = static_cast<double>(cube->num_nodes());
  }
}
BENCHMARK(BM_MergeMemoization)
    ->Arg(1)
    ->Arg(0)
    ->ArgName("memoization")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// --------------------------------------- 5. bulk vs per-statement CQL

void BM_CqlStatementsVsBulk(benchmark::State& state) {
  bool via_statements = state.range(0) != 0;
  // Day-scale cube: statement mode parses one CQL INSERT per row.
  auto cube = benchutil::GetDatasetCube("Day");
  if (!cube.ok()) {
    state.SkipWithError(cube.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    nosql::Database db;
    mapper::NoSqlDwarfMapper cube_mapper(&db, "dwarfks");
    mapper::NoSqlDwarfMapperOptions options;
    options.via_cql_statements = via_statements;
    mapper::NoSqlStoreStats stats;
    Stopwatch watch;
    auto id = cube_mapper.Store(**cube, options, &stats);
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
    state.SetIterationTime(watch.ElapsedSeconds());
    state.counters["statements"] = static_cast<double>(stats.statements);
  }
}
BENCHMARK(BM_CqlStatementsVsBulk)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("via_cql")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
