// Open-ended fault-injected soak of the replica fan-out fleet (the
// src/testing/soak.h harness as an operator tool): an in-process publisher
// spools epochs to a shared directory, N real scdwarf_replica processes
// follow it by polling (no notifications — the shared-filesystem deployment
// mode), an in-process router fronts them, and M session threads churn a
// mixed differential-checked workload while a killer SIGKILLs and respawns
// replicas and a corrupter drops broken files into the spool.
//
// Exit is nonzero on ANY differential mismatch, on a one-shot p99 over
// --p99-bound-us, or (when faults are enabled) when no injected kill
// produced a provable spool catch-up. Soak counters are merged into
// BENCH_server.json as one "soak_kills"-keyed row; all other rows are
// preserved. tools/check_soak.sh runs this for ~45 s as the CI gate.
//
//   soak_fleet [--duration-s=N] [--replicas=N] [--sessions=N]
//              [--publish-ms=N] [--kill-ms=N] [--corrupt-ms=N]
//              [--p99-bound-us=N] [--replica-bin=PATH] [--seed=N]
//
// The replica binary resolves like bench_router: --replica-bin, then
// SCDWARF_REPLICA_BIN, then <dir of this binary>/../src/replica/.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "bench_util.h"
#include "json/json_parser.h"
#include "testing/soak.h"

namespace {

using namespace scdwarf;

// Replaces prior soak rows in BENCH_server.json while preserving every
// other row (bench_query_server / bench_router own those).
Status MergeIntoBenchJson(const std::string& path,
                          benchutil::BenchJsonRow soak_row) {
  std::vector<benchutil::BenchJsonRow> rows;
  std::string benchmark = "query_server";
  std::ifstream in(path);
  if (in) {
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    auto parsed = json::ParseJson(bytes);
    if (parsed.ok()) {
      if (auto name = parsed->Get("benchmark"); name.ok()) {
        if (auto text = name->AsString(); text.ok()) benchmark = *text;
      }
      if (auto results = parsed->Get("results"); results.ok()) {
        if (const json::JsonArray* array = results->AsArray()) {
          for (const json::JsonValue& row : *array) {
            if (row.Get("soak_kills").ok()) continue;  // replaced below
            if (const json::JsonObject* object = row.AsObject()) {
              rows.push_back(*object);
            }
          }
        }
      }
    }
  }
  rows.push_back(std::move(soak_row));
  return benchutil::WriteBenchJson(path, benchmark, rows);
}

int64_t FlagInt(const std::string& arg, size_t prefix_len) {
  return std::atoll(arg.c_str() + prefix_len);
}

}  // namespace

int main(int argc, char** argv) {
  double duration_s = 45;
  soak::FleetOptions options;
  options.replicas = 2;
  options.sessions = 4;
  options.publish_interval_ms = 2000;
  options.kill_interval_ms = 6000;
  options.corrupt_interval_ms = 5000;
  options.p99_bound_us = 200000;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--duration-s=", 0) == 0) {
      duration_s = std::atof(arg.c_str() + 13);
    } else if (arg.rfind("--replicas=", 0) == 0) {
      options.replicas = static_cast<int>(FlagInt(arg, 11));
    } else if (arg.rfind("--sessions=", 0) == 0) {
      options.sessions = static_cast<int>(FlagInt(arg, 11));
    } else if (arg.rfind("--publish-ms=", 0) == 0) {
      options.publish_interval_ms = static_cast<int>(FlagInt(arg, 13));
    } else if (arg.rfind("--kill-ms=", 0) == 0) {
      options.kill_interval_ms = static_cast<int>(FlagInt(arg, 10));
    } else if (arg.rfind("--corrupt-ms=", 0) == 0) {
      options.corrupt_interval_ms = static_cast<int>(FlagInt(arg, 13));
    } else if (arg.rfind("--p99-bound-us=", 0) == 0) {
      options.p99_bound_us = std::atof(arg.c_str() + 15);
    } else if (arg.rfind("--replica-bin=", 0) == 0) {
      options.replica_bin = arg.substr(14);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = static_cast<uint64_t>(FlagInt(arg, 7));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  soak::Fleet fleet(options);
  if (Status status = fleet.Start(); !status.ok()) {
    std::fprintf(stderr, "fleet start: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf(
      "=== Fleet soak: %d replicas, %d sessions, publish %dms, kill %dms, "
      "corrupt %dms, %.0fs ===\n",
      options.replicas, options.sessions, options.publish_interval_ms,
      options.kill_interval_ms, options.corrupt_interval_ms, duration_s);

  Status run = fleet.RunFor(duration_s);
  soak::FleetCounters counters = fleet.Counters();
  fleet.Stop();

  std::printf(
      "checked %llu one-shots + %llu cursor drains over %llu epochs\n"
      "kills %llu, restarts %llu, catch-ups %llu, corruptions %llu\n"
      "mismatches %llu, availability %llu, transport %llu, unchecked %llu\n"
      "one-shot p50 %.1fus, p99 %.1fus\n",
      static_cast<unsigned long long>(counters.requests),
      static_cast<unsigned long long>(counters.cursor_drains),
      static_cast<unsigned long long>(counters.published_epochs),
      static_cast<unsigned long long>(counters.kills),
      static_cast<unsigned long long>(counters.restarts),
      static_cast<unsigned long long>(counters.catchups),
      static_cast<unsigned long long>(counters.corruptions),
      static_cast<unsigned long long>(counters.mismatches),
      static_cast<unsigned long long>(counters.availability),
      static_cast<unsigned long long>(counters.transport_errors),
      static_cast<unsigned long long>(counters.unchecked),
      counters.p50_us, counters.p99_us);

  bool failed = false;
  if (!run.ok()) {
    std::fprintf(stderr, "soak failed: %s\n", run.ToString().c_str());
    failed = true;
  }
  if (options.kill_interval_ms > 0 && counters.kills > 0 &&
      counters.catchups == 0) {
    std::fprintf(stderr,
                 "no killed replica provably caught up via the spool\n");
    failed = true;
  }

  benchutil::BenchJsonRow row;
  row.emplace_back("soak_duration_s", json::JsonValue(duration_s));
  row.emplace_back("soak_replicas", json::JsonValue(options.replicas));
  row.emplace_back("soak_sessions", json::JsonValue(options.sessions));
  row.emplace_back("soak_requests",
                   json::JsonValue(static_cast<int64_t>(counters.requests)));
  row.emplace_back(
      "soak_cursor_drains",
      json::JsonValue(static_cast<int64_t>(counters.cursor_drains)));
  row.emplace_back(
      "soak_epochs",
      json::JsonValue(static_cast<int64_t>(counters.published_epochs)));
  row.emplace_back("soak_kills",
                   json::JsonValue(static_cast<int64_t>(counters.kills)));
  row.emplace_back("soak_restarts",
                   json::JsonValue(static_cast<int64_t>(counters.restarts)));
  row.emplace_back("soak_catchups",
                   json::JsonValue(static_cast<int64_t>(counters.catchups)));
  row.emplace_back(
      "soak_corruptions",
      json::JsonValue(static_cast<int64_t>(counters.corruptions)));
  row.emplace_back("soak_mismatches",
                   json::JsonValue(static_cast<int64_t>(counters.mismatches)));
  row.emplace_back(
      "soak_availability",
      json::JsonValue(static_cast<int64_t>(counters.availability)));
  row.emplace_back(
      "soak_transport_errors",
      json::JsonValue(static_cast<int64_t>(counters.transport_errors)));
  row.emplace_back("soak_p50_us", json::JsonValue(counters.p50_us));
  row.emplace_back("soak_p99_us", json::JsonValue(counters.p99_us));
  row.emplace_back("soak_p99_bound_us",
                   json::JsonValue(options.p99_bound_us));
  if (Status status = MergeIntoBenchJson("BENCH_server.json", std::move(row));
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return failed ? 1 : 0;
}
