// Reproduces Table 5: "Time (milliseconds) taken to insert a DWARF cube"
// for the four schemas x five datasets. Uses manual timing: the reported
// time is exactly the mapper Store() call — traversal, row generation, bulk
// mutation application, commit/redo logging and flush — matching what the
// paper measures. The summary prints the matrix next to the paper's values
// and checks the §5.1 ordering (NoSQL-DWARF fastest, NoSQL-Min slowest).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"

namespace {

using namespace scdwarf;
using benchutil::StorageSchema;

std::map<std::string, std::map<std::string, double>> g_ms;  // schema -> dataset

void BM_InsertTime(benchmark::State& state, const std::string& dataset,
                   StorageSchema schema, bool last_schema_for_dataset) {
  auto cube = benchutil::GetDatasetCube(dataset);
  if (!cube.ok()) {
    state.SkipWithError(cube.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result = benchutil::RunStore(schema, **cube);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    state.SetIterationTime(result->insert_ms / 1000.0);
    g_ms[benchutil::SchemaName(schema)][dataset] = result->insert_ms;
    state.counters["insert_ms"] = result->insert_ms;
    state.counters["rows"] = static_cast<double>(result->rows);
  }
  if (last_schema_for_dataset) benchutil::EvictDatasetCube(dataset);
}

void PrintTable5() {
  std::printf(
      "\n=== Table 5: Time (milliseconds) taken to insert a DWARF cube ===\n");
  auto datasets = benchutil::SelectedDatasets();
  std::printf("%-12s", "Schema");
  for (const std::string& dataset : datasets) {
    std::printf(" %10s %10s", dataset.c_str(), "(paper)");
  }
  std::printf("\n");
  for (StorageSchema schema : benchutil::kAllSchemas) {
    std::printf("%-12s", benchutil::SchemaName(schema));
    for (const std::string& dataset : datasets) {
      auto it = g_ms.find(benchutil::SchemaName(schema));
      double ours = it != g_ms.end() && it->second.count(dataset)
                        ? it->second.at(dataset)
                        : -1;
      std::printf(" %10.0f %10.0f", ours,
                  benchutil::PaperTable5Ms(schema, dataset));
    }
    std::printf("\n");
  }

  // §5.1 attributes MySQL-DWARF's slowdown to the join-table row explosion
  // and NoSQL-Min's to its two secondary indexes. Those two causal,
  // within-engine relations are the primary shape checks. The cross-engine
  // absolute orderings additionally depend on 2016 client/server and JVM
  // constants that an in-process substrate does not have (see
  // EXPERIMENTS.md), so they are reported informationally.
  std::printf("\nShape checks (per dataset, from §5.1):\n");
  for (const std::string& dataset : datasets) {
    auto get = [&](StorageSchema schema) {
      auto it = g_ms.find(benchutil::SchemaName(schema));
      return it != g_ms.end() && it->second.count(dataset)
                 ? it->second.at(dataset)
                 : -1.0;
    };
    double mysql_dwarf = get(StorageSchema::kMySqlDwarf);
    double mysql_min = get(StorageSchema::kMySqlMin);
    double nosql_dwarf = get(StorageSchema::kNoSqlDwarf);
    double nosql_min = get(StorageSchema::kNoSqlMin);
    if (mysql_dwarf < 0) continue;
    std::printf(
        "  %-8s join-table cost (MySQL-DWARF > MySQL-Min): %s | "
        "secondary-index cost (NoSQL-Min > NoSQL-DWARF): %s\n",
        dataset.c_str(), mysql_dwarf > mysql_min ? "yes" : "NO",
        nosql_min > nosql_dwarf ? "yes" : "NO");
    std::printf(
        "  %-8s cross-engine (informational): NoSQL-DWARF fastest overall: "
        "%s | NoSQL-Min slowest overall: %s\n",
        "", (nosql_dwarf < mysql_dwarf && nosql_dwarf < mysql_min &&
             nosql_dwarf < nosql_min)
                ? "yes"
                : "no",
        (nosql_min > mysql_dwarf && nosql_min > mysql_min &&
         nosql_min > nosql_dwarf)
            ? "yes"
            : "no");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::InstallObservabilityDumps(&argc, argv);
  benchmark::Initialize(&argc, argv);
  for (const std::string& dataset : benchutil::SelectedDatasets()) {
    size_t index = 0;
    constexpr size_t kNumSchemas =
        sizeof(benchutil::kAllSchemas) / sizeof(benchutil::kAllSchemas[0]);
    for (StorageSchema schema : benchutil::kAllSchemas) {
      bool last = ++index == kNumSchemas;
      std::string name = std::string("Table5/") + benchutil::SchemaName(schema) +
                         "/" + dataset;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [dataset, schema, last](benchmark::State& state) {
            BM_InsertTime(state, dataset, schema, last);
          })
          ->Unit(benchmark::kMillisecond)
          ->UseManualTime()
          ->Iterations(1);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintTable5();
  return 0;
}
