// Reproduces Table 2: "The datasets used in the experiments" — the five
// bike-sharing datasets (Day .. SMonth), their tuple counts and raw feed
// sizes. The benchmark measures feed generation + the full XML-to-cube
// pipeline for each dataset; the summary prints the Table-2 rows next to the
// paper's numbers.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "citibikes/bike_feed.h"
#include "common/strings.h"
#include "etl/pipeline.h"

namespace {

using namespace scdwarf;

struct Table2Row {
  uint64_t tuples = 0;
  uint64_t raw_bytes = 0;
  uint64_t documents = 0;
  double pipeline_ms = 0;
  uint64_t cube_nodes = 0;
  uint64_t cube_cells = 0;
};
std::map<std::string, Table2Row> g_rows;

void BM_GenerateAndBuild(benchmark::State& state, const std::string& dataset) {
  for (auto _ : state) {
    auto spec = citibikes::FindDataset(dataset);
    if (!spec.ok()) {
      state.SkipWithError(spec.status().ToString().c_str());
      return;
    }
    citibikes::BikeFeedGenerator feed(citibikes::MakeFeedConfig(*spec));
    auto pipeline = etl::MakeBikesXmlPipeline();
    if (!pipeline.ok()) {
      state.SkipWithError(pipeline.status().ToString().c_str());
      return;
    }
    while (feed.HasNext()) {
      Status status = pipeline->ConsumeXml(feed.NextXml());
      if (!status.ok()) {
        state.SkipWithError(status.ToString().c_str());
        return;
      }
    }
    auto cube = std::move(*pipeline).Finish();
    if (!cube.ok()) {
      state.SkipWithError(cube.status().ToString().c_str());
      return;
    }
    Table2Row row;
    row.tuples = feed.records_emitted();
    row.raw_bytes = feed.bytes_emitted();
    row.documents = feed.documents_emitted();
    row.cube_nodes = cube->num_nodes();
    row.cube_cells = cube->stats().cell_count;
    g_rows[dataset] = row;
    state.counters["tuples"] = static_cast<double>(row.tuples);
    state.counters["raw_MB"] = static_cast<double>(row.raw_bytes) / (1 << 20);
    benchmark::DoNotOptimize(cube->num_nodes());
  }
}

void PrintTable2() {
  std::printf("\n=== Table 2: The datasets used in the experiments ===\n");
  std::printf("%-8s %12s %12s %14s %14s %10s %12s\n", "Dataset", "tuples",
              "paper tuples", "raw size (MB)", "paper (MB)", "documents",
              "cube nodes");
  for (const std::string& dataset : benchutil::SelectedDatasets()) {
    auto it = g_rows.find(dataset);
    if (it == g_rows.end()) continue;
    auto spec = citibikes::FindDataset(dataset);
    std::printf("%-8s %12s %12s %14.1f %14.1f %10llu %12llu\n",
                dataset.c_str(),
                FormatWithCommas(static_cast<int64_t>(it->second.tuples)).c_str(),
                FormatWithCommas(static_cast<int64_t>(spec->tuples)).c_str(),
                static_cast<double>(it->second.raw_bytes) / (1 << 20),
                spec->paper_raw_mb,
                static_cast<unsigned long long>(it->second.documents),
                static_cast<unsigned long long>(it->second.cube_nodes));
  }
  std::printf(
      "\nShape check: tuple counts match the paper exactly by construction;\n"
      "raw MB should grow roughly linearly with tuples, like the paper's\n"
      "2.1 -> 338 MB progression.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::InstallObservabilityDumps(&argc, argv);
  benchmark::Initialize(&argc, argv);
  for (const std::string& dataset : benchutil::SelectedDatasets()) {
    benchmark::RegisterBenchmark(("Table2/" + dataset).c_str(),
                                 [dataset](benchmark::State& state) {
                                   BM_GenerateAndBuild(state, dataset);
                                 })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintTable2();
  return 0;
}
