// Reproduces the §5.1 storage-space comparison against Bao et al. [1]:
// "the authors stored a DWARF containing 400,000 tuples with 8 dimensions in
// 200MB using their standard DWARF implementation and 260MB using their
// recursion clustering method. Conversely ... we were able to store a DWARF
// cube of 1,181,344 tuples across 8 dimensions in 182MB."
//
// This bench builds a 400,000-tuple 8-dimension cube, stores it as both
// clustered flat-file layouts ([1]'s system) and into our NoSQL-DWARF
// schema, and prints the sizes side by side. Absolute MB differ (different
// datasets compress differently — the paper says so explicitly); the shape
// claim is that the NoSQL-DWARF store is in the same size class as the
// flat-file DWARFs rather than paying a large database overhead.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "bench_util.h"
#include "citibikes/bike_feed.h"
#include "clustered/flat_file.h"
#include "etl/pipeline.h"
#include "mapper/nosql_dwarf_mapper.h"
#include "nosql/database.h"

namespace {

using namespace scdwarf;
namespace fs = std::filesystem;

constexpr uint64_t kTuples = 400000;  // [1]'s dataset scale

struct BaselineResults {
  double hierarchical_mb = -1;
  double recursive_mb = -1;
  double nosql_mb = -1;
  uint64_t nodes = 0;
  uint64_t cells = 0;
};
BaselineResults g_results;

Result<dwarf::DwarfCube> BuildBaselineCube() {
  citibikes::BikeFeedConfig config;
  config.target_records = kTuples;
  config.period_seconds = 60ll * 24 * 3600;
  citibikes::BikeFeedGenerator feed(config);
  SCD_ASSIGN_OR_RETURN(etl::CubePipeline pipeline, etl::MakeBikesXmlPipeline());
  while (feed.HasNext()) {
    SCD_RETURN_IF_ERROR(pipeline.ConsumeXml(feed.NextXml()));
  }
  return std::move(pipeline).Finish();
}

void BM_ClusteredBaseline(benchmark::State& state) {
  auto cube = BuildBaselineCube();
  if (!cube.ok()) {
    state.SkipWithError(cube.status().ToString().c_str());
    return;
  }
  g_results.nodes = cube->num_nodes();
  g_results.cells = cube->stats().cell_count;
  for (auto _ : state) {
    for (auto layout : {clustered::ClusterLayout::kHierarchical,
                        clustered::ClusterLayout::kRecursive}) {
      std::string path = benchutil::ScratchDir("baseline.dwarf");
      Status status = clustered::WriteDwarfFile(*cube, path, layout);
      if (!status.ok()) {
        state.SkipWithError(status.ToString().c_str());
        return;
      }
      double mb = static_cast<double>(fs::file_size(path)) / (1 << 20);
      if (layout == clustered::ClusterLayout::kHierarchical) {
        g_results.hierarchical_mb = mb;
      } else {
        g_results.recursive_mb = mb;
      }
      fs::remove(path);
    }
    auto stored = benchutil::RunStore(benchutil::StorageSchema::kNoSqlDwarf,
                                      *cube);
    if (!stored.ok()) {
      state.SkipWithError(stored.status().ToString().c_str());
      return;
    }
    g_results.nosql_mb = static_cast<double>(stored->disk_bytes) / (1 << 20);
  }
  state.counters["hier_MB"] = g_results.hierarchical_mb;
  state.counters["rec_MB"] = g_results.recursive_mb;
  state.counters["nosql_MB"] = g_results.nosql_mb;
}
BENCHMARK(BM_ClusteredBaseline)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchutil::InstallObservabilityDumps(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf(
      "\n=== §5.1 storage comparison vs Bao et al. [1] (400k tuples, 8 dims) "
      "===\n");
  std::printf("cube: %llu nodes, %llu cells\n",
              static_cast<unsigned long long>(g_results.nodes),
              static_cast<unsigned long long>(g_results.cells));
  std::printf("%-38s %10s %18s\n", "store", "ours (MB)", "paper-cited (MB)");
  std::printf("%-38s %10.1f %18s\n", "flat file, hierarchical clustering [1]",
              g_results.hierarchical_mb, "200 (standard)");
  std::printf("%-38s %10.1f %18s\n", "flat file, recursive clustering [1]",
              g_results.recursive_mb, "260 (recursive)");
  std::printf("%-38s %10.1f %18s\n", "NoSQL-DWARF (this paper)",
              g_results.nosql_mb, "182 @ 1.18M tuples");
  double tuples_mb = static_cast<double>(kTuples) / (1 << 20);
  std::printf("\nbytes per source tuple: flat file %.1f, NoSQL-DWARF %.1f\n",
              g_results.recursive_mb / tuples_mb,
              g_results.nosql_mb / tuples_mb);
  // The paper's comparison point: a full queryable database store should
  // stay within one order of magnitude of [1]'s minimal flat files (it
  // additionally pays text keys, per-row framing and the schema/node
  // families). The paper's own numbers span different datasets, so only
  // this size-class relation is checkable.
  std::printf(
      "Shape: NoSQL-DWARF within one order of magnitude of the flat file: "
      "%s\n",
      (g_results.nosql_mb > 0 &&
       g_results.nosql_mb < 10 * g_results.recursive_mb)
          ? "yes"
          : "NO");
  std::printf(
      "Note: [1] used a different 400k-tuple dataset; the paper itself warns\n"
      "that compression differs across datasets, so only the size class is\n"
      "comparable.\n");
  return 0;
}
