// Parallel ETL + construction sweep: runs the XML bikes feed of each Table-2
// dataset through ParallelCubePipeline with threads in {1, 2, 4, N} (N =
// DefaultThreadCount) and reports the per-stage breakdown plus the speedup
// over the single-threaded run. Results are also written machine-readably to
// BENCH_pipeline.json so future changes have a perf trajectory to compare
// against.
//
// Dataset selection honours SCDWARF_DATASETS (see bench_util.h); the thread
// sweep always includes 1 so speedups have a baseline.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <system_error>
#include <vector>

#include "bench_util.h"
#include "citibikes/bike_feed.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "etl/parallel_pipeline.h"
#include "mapper/nosql_dwarf_mapper.h"
#include "nosql/database.h"

namespace {

namespace fs = std::filesystem;

using namespace scdwarf;

struct SweepRow {
  std::string dataset;
  uint64_t tuples = 0;
  int threads = 0;
  double parse_ms = 0;
  double drain_ms = 0;
  double dict_merge_ms = 0;
  double sort_ms = 0;
  double construct_ms = 0;
  int sweep_tasks = 0;  ///< parallel subtree tasks of the sweep (0 = serial)
  double store_apply_ms = 0;  ///< nosql row generation + application
  double store_flush_ms = 0;  ///< nosql segment flush barrier
  double parse_build_ms = 0;
  double speedup = 1.0;  ///< single-thread parse_build_ms / this row's
  double construct_speedup = 1.0;  ///< single-thread construct_ms / this row's
};
std::vector<SweepRow> g_rows;

std::vector<int> ThreadSweep() {
  std::vector<int> sweep = {1, 2, 4, 8, DefaultThreadCount()};
  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());
  return sweep;
}

void BM_ParallelPipeline(benchmark::State& state, const std::string& dataset,
                         int threads) {
  for (auto _ : state) {
    auto spec = citibikes::FindDataset(dataset);
    if (!spec.ok()) {
      state.SkipWithError(spec.status().ToString().c_str());
      return;
    }
    citibikes::BikeFeedGenerator feed(citibikes::MakeFeedConfig(*spec));
    // The thread knob feeds both the ETL stage pool and the builder, so the
    // construction sweep (sort + parallel subtree tasks) scales with it.
    auto pipeline = etl::MakeBikesXmlParallelPipeline(
        {.num_threads = threads}, {.num_threads = threads});
    if (!pipeline.ok()) {
      state.SkipWithError(pipeline.status().ToString().c_str());
      return;
    }
    Stopwatch watch;
    while (feed.HasNext()) {
      Status status = pipeline->ConsumeXml(feed.NextXml());
      if (!status.ok()) {
        state.SkipWithError(status.ToString().c_str());
        return;
      }
    }
    double parse_ms = watch.ElapsedMillis();
    etl::PipelineProfile profile;
    auto cube = std::move(*pipeline).Finish(&profile);
    if (!cube.ok()) {
      state.SkipWithError(cube.status().ToString().c_str());
      return;
    }
    SweepRow row;
    row.dataset = dataset;
    row.tuples = feed.records_emitted();
    row.threads = threads;
    row.parse_ms = parse_ms;
    row.drain_ms = profile.drain_ms;
    row.dict_merge_ms = profile.dict_merge_ms;
    row.sort_ms = profile.build.sort_ms;
    row.construct_ms = profile.build.construct_ms;
    row.sweep_tasks = profile.build.sweep_tasks;
    row.parse_build_ms = watch.ElapsedMillis();

    // Store phase: durable nosql apply (laned when threads > 1) + async
    // segment flush, timed by the mapper itself.
    fs::path store_dir = fs::temp_directory_path() /
                         ("scdwarf_bench_store_" + dataset + "_t" +
                          std::to_string(threads));
    std::error_code ec;
    fs::remove_all(store_dir, ec);
    {
      auto db = nosql::Database::Open(store_dir.string());
      if (!db.ok()) {
        state.SkipWithError(db.status().ToString().c_str());
        return;
      }
      mapper::NoSqlDwarfMapper cube_mapper(&*db, "bench");
      mapper::NoSqlStoreStats store_stats;
      auto id = cube_mapper.Store(*cube, {.num_threads = threads},
                                  &store_stats);
      if (!id.ok()) {
        state.SkipWithError(id.status().ToString().c_str());
        return;
      }
      row.store_apply_ms = store_stats.apply_ms;
      row.store_flush_ms = store_stats.flush_ms;
    }
    fs::remove_all(store_dir, ec);
    g_rows.push_back(row);
    state.counters["threads"] = threads;
    state.counters["tuples"] = static_cast<double>(row.tuples);
    benchmark::DoNotOptimize(cube->num_nodes());
  }
}

void ComputeSpeedups() {
  std::map<std::string, double> baseline;
  std::map<std::string, double> construct_baseline;
  for (const SweepRow& row : g_rows) {
    if (row.threads == 1) {
      baseline[row.dataset] = row.parse_build_ms;
      construct_baseline[row.dataset] = row.construct_ms;
    }
  }
  for (SweepRow& row : g_rows) {
    auto it = baseline.find(row.dataset);
    if (it != baseline.end() && row.parse_build_ms > 0) {
      row.speedup = it->second / row.parse_build_ms;
    }
    auto cit = construct_baseline.find(row.dataset);
    if (cit != construct_baseline.end() && row.construct_ms > 0) {
      row.construct_speedup = cit->second / row.construct_ms;
    }
  }
}

void PrintSweep() {
  std::printf("\n=== Parallel pipeline sweep (XML feed -> cube -> store) ===\n");
  std::printf(
      "%-8s %10s %8s %10s %10s %10s %10s %10s %6s %10s %10s %12s %8s %8s\n",
      "Dataset", "tuples", "threads", "parse", "drain", "dictmerge", "sort",
      "construct", "tasks", "apply", "flush", "total (ms)", "speedup",
      "c-spdup");
  for (const SweepRow& row : g_rows) {
    std::printf(
        "%-8s %10llu %8d %10.1f %10.1f %10.1f %10.1f %10.1f %6d %10.1f "
        "%10.1f %12.1f %8.2f %8.2f\n",
        row.dataset.c_str(), static_cast<unsigned long long>(row.tuples),
        row.threads, row.parse_ms, row.drain_ms, row.dict_merge_ms,
        row.sort_ms, row.construct_ms, row.sweep_tasks, row.store_apply_ms,
        row.store_flush_ms, row.parse_build_ms, row.speedup,
        row.construct_speedup);
  }
  std::printf(
      "\nNote: with %d hardware thread(s) available, speedups above 1.0 only\n"
      "appear on multi-core machines; the sweep exists to record them.\n",
      DefaultThreadCount());
}

void WriteJson(const char* path) {
  std::vector<benchutil::BenchJsonRow> rows;
  rows.reserve(g_rows.size());
  for (const SweepRow& row : g_rows) {
    benchutil::BenchJsonRow out;
    out.emplace_back("dataset", json::JsonValue(row.dataset));
    out.emplace_back("tuples", json::JsonValue(static_cast<int64_t>(row.tuples)));
    out.emplace_back("threads", json::JsonValue(row.threads));
    out.emplace_back("parse_ms", json::JsonValue(row.parse_ms));
    out.emplace_back("drain_ms", json::JsonValue(row.drain_ms));
    out.emplace_back("dict_merge_ms", json::JsonValue(row.dict_merge_ms));
    out.emplace_back("sort_ms", json::JsonValue(row.sort_ms));
    out.emplace_back("construct_ms", json::JsonValue(row.construct_ms));
    out.emplace_back("sweep_tasks", json::JsonValue(row.sweep_tasks));
    out.emplace_back("store_apply_ms", json::JsonValue(row.store_apply_ms));
    out.emplace_back("store_flush_ms", json::JsonValue(row.store_flush_ms));
    out.emplace_back("parse_build_ms", json::JsonValue(row.parse_build_ms));
    out.emplace_back("speedup", json::JsonValue(row.speedup));
    out.emplace_back("construct_speedup", json::JsonValue(row.construct_speedup));
    rows.push_back(std::move(out));
  }
  if (Status status = benchutil::WriteBenchJson(path, "parallel_pipeline", rows);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::InstallObservabilityDumps(&argc, argv);
  benchmark::Initialize(&argc, argv);
  for (const std::string& dataset : benchutil::SelectedDatasets()) {
    for (int threads : ThreadSweep()) {
      std::string name =
          "ParallelPipeline/" + dataset + "/t" + std::to_string(threads);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [dataset, threads](benchmark::State& state) {
            BM_ParallelPipeline(state, dataset, threads);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ComputeSpeedups();
  PrintSweep();
  WriteJson("BENCH_pipeline.json");
  return 0;
}
