// Replica fan-out load generator: spools the Month dataset cube as an epoch
// snapshot, forks N real scdwarf_replica processes over it (mmap'd,
// cache-disabled so every request costs real traversal work), fronts them
// with an in-process Router behind a TCP listener, and drives the router
// with concurrent client connections issuing a mixed one-shot workload.
// Sweeps replica counts {1, 2, 4} and reports QPS plus client-observed
// latency quantiles per count — the near-linear-scaling acceptance numbers
// (tools/check_router_scaling.sh gates on the 4-vs-1 ratio when the machine
// has enough cores to show it).
//
// Router rows are merged into BENCH_server.json next to bench_query_server's
// rows: prior router rows are replaced, all other rows are preserved.
//
// The replica binary is found via --replica-bin=PATH, SCDWARF_REPLICA_BIN,
// or (default) <dir of this binary>/../src/replica/scdwarf_replica.
// SCDWARF_ROUTER_CLIENTS / SCDWARF_ROUTER_REQUESTS / SCDWARF_ROUTER_DATASET
// override the load shape.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "client/client.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "dwarf/dwarf_cube.h"
#include "json/json_parser.h"
#include "replica/router.h"
#include "replica/snapshot.h"
#include "server/tcp_server.h"

namespace {

using namespace scdwarf;
namespace fs = std::filesystem;

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

std::string RandomKey(const dwarf::DwarfCube& cube, size_t dim, Rng& rng) {
  const dwarf::Dictionary& dictionary = cube.dictionary(dim);
  return dictionary.DecodeUnchecked(
      static_cast<dwarf::DimKey>(rng.NextBelow(dictionary.size())));
}

// Mixed one-shot pool (points, aggregates, slices, single-dim rollups).
// Replica caches are disabled, so every request is real traversal work and
// QPS scales with the number of replica processes doing it.
std::vector<std::string> MakeRequestPool(const dwarf::DwarfCube& cube,
                                         size_t pool_size, uint64_t seed) {
  Rng rng(seed);
  size_t dims = cube.num_dimensions();
  std::vector<std::string> pool;
  pool.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    double draw = rng.NextDouble();
    json::JsonObject request;
    if (draw < 0.6) {  // point query, a few fixed coordinates, rest ALL
      request.emplace_back("op", json::JsonValue("point"));
      json::JsonArray keys;
      for (size_t dim = 0; dim < dims; ++dim) {
        if (rng.NextBool(0.25)) {
          keys.push_back(json::JsonValue(RandomKey(cube, dim, rng)));
        } else {
          keys.push_back(json::JsonValue(nullptr));
        }
      }
      request.emplace_back("keys", json::JsonValue(std::move(keys)));
    } else if (draw < 0.85) {  // slice on a random dimension
      size_t dim = rng.NextBelow(dims);
      request.emplace_back("op", json::JsonValue("slice"));
      request.emplace_back(
          "dim", json::JsonValue(cube.schema().dimensions()[dim].name));
      request.emplace_back("key", json::JsonValue(RandomKey(cube, dim, rng)));
    } else {  // single-dimension rollup
      size_t dim = rng.NextBelow(dims);
      request.emplace_back("op", json::JsonValue("rollup"));
      json::JsonArray group;
      group.push_back(json::JsonValue(cube.schema().dimensions()[dim].name));
      request.emplace_back("dims", json::JsonValue(std::move(group)));
    }
    pool.push_back(json::SerializeJson(json::JsonValue(std::move(request))));
  }
  return pool;
}

// ----------------------------------------------------- replica subprocesses

struct ReplicaProcess {
  pid_t pid = -1;
  int stdin_fd = -1;   ///< write end; closing it tells the replica to exit
  int stdout_fd = -1;  ///< banner side; kept open for the process lifetime
  uint16_t port = 0;
};

// Forks one scdwarf_replica over \p spool and parses the "replica serving on
// 127.0.0.1:PORT" banner from its stdout pipe.
Result<ReplicaProcess> SpawnReplica(const std::string& binary,
                                    const std::string& spool) {
  int to_child[2];
  int from_child[2];
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  pid_t pid = fork();
  if (pid < 0) {
    return Status::IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    std::string spool_flag = "--snapshot-dir=" + spool;
    execl(binary.c_str(), binary.c_str(), spool_flag.c_str(), "--workers=1",
          "--cache-capacity=0", static_cast<char*>(nullptr));
    std::fprintf(stderr, "exec %s: %s\n", binary.c_str(),
                 std::strerror(errno));
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  ReplicaProcess process;
  process.pid = pid;
  process.stdin_fd = to_child[1];
  process.stdout_fd = from_child[0];

  std::string banner;
  char c = 0;
  while (banner.find('\n') == std::string::npos) {
    ssize_t n = read(process.stdout_fd, &c, 1);
    if (n <= 0) break;
    banner.push_back(c);
  }
  size_t colon = banner.find("127.0.0.1:");
  if (colon == std::string::npos) {
    return Status::IoError("replica banner missing port: \"" + banner + "\"");
  }
  process.port = static_cast<uint16_t>(
      std::atoi(banner.c_str() + colon + std::strlen("127.0.0.1:")));
  if (process.port == 0) {
    return Status::IoError("replica banner carried port 0: \"" + banner +
                           "\"");
  }
  return process;
}

void StopReplica(ReplicaProcess& process) {
  if (process.pid < 0) return;
  if (process.stdin_fd >= 0) close(process.stdin_fd);  // EOF -> clean exit
  int status = 0;
  for (int spin = 0; spin < 200; ++spin) {  // up to ~2s of polite waiting
    pid_t done = waitpid(process.pid, &status, WNOHANG);
    if (done == process.pid) {
      process.pid = -1;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (process.pid >= 0) {
    kill(process.pid, SIGKILL);
    waitpid(process.pid, &status, 0);
    process.pid = -1;
  }
  if (process.stdout_fd >= 0) close(process.stdout_fd);
  process.stdin_fd = -1;
  process.stdout_fd = -1;
}

// ----------------------------------------------------------------- the load

struct LoadResult {
  double seconds = 0;
  uint64_t requests = 0;
  uint64_t failures = 0;
  double p50_us = 0;
  double p99_us = 0;
};

LoadResult RunLoad(uint16_t router_port, const std::vector<std::string>& pool,
                   int clients, int requests_per_client) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<uint64_t> failures(clients, 0);
  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      client::Endpoint endpoint;
      endpoint.port = router_port;
      client::CubeClient conn(endpoint);
      Rng rng(0xbeef + static_cast<uint64_t>(c));
      size_t index = rng.NextBelow(pool.size());
      latencies[c].reserve(requests_per_client);
      for (int i = 0; i < requests_per_client; ++i) {
        Stopwatch request_watch;
        auto response = conn.Call(pool[index]);
        if (response.ok()) {
          latencies[c].push_back(request_watch.ElapsedSeconds() * 1e6);
        } else {
          ++failures[c];
        }
        index = (index + 1) % pool.size();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  LoadResult result;
  result.seconds = watch.ElapsedSeconds();
  std::vector<double> all;
  for (auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  for (uint64_t f : failures) result.failures += f;
  result.requests = all.size();
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    result.p50_us = all[all.size() / 2];
    result.p99_us = all[std::min(all.size() - 1,
                                 static_cast<size_t>(all.size() * 0.99))];
  }
  return result;
}

// Replaces prior router rows in BENCH_server.json while preserving every
// other row (bench_query_server owns those).
Status MergeIntoBenchJson(const std::string& path,
                          std::vector<benchutil::BenchJsonRow> router_rows) {
  std::vector<benchutil::BenchJsonRow> rows;
  std::string benchmark = "query_server";
  std::ifstream in(path);
  if (in) {
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    auto parsed = json::ParseJson(bytes);
    if (parsed.ok()) {
      if (auto name = parsed->Get("benchmark"); name.ok()) {
        if (auto text = name->AsString(); text.ok()) benchmark = *text;
      }
      if (auto results = parsed->Get("results"); results.ok()) {
        if (const json::JsonArray* array = results->AsArray()) {
          for (const json::JsonValue& row : *array) {
            if (row.Get("router_replicas").ok()) continue;  // replaced below
            if (const json::JsonObject* object = row.AsObject()) {
              rows.push_back(*object);
            }
          }
        }
      }
    }
  }
  for (auto& row : router_rows) rows.push_back(std::move(row));
  return benchutil::WriteBenchJson(path, benchmark, rows);
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::InstallObservabilityDumps(&argc, argv);
  std::string replica_bin;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--replica-bin=", 0) == 0) replica_bin = arg.substr(14);
  }
  if (replica_bin.empty() && std::getenv("SCDWARF_REPLICA_BIN") != nullptr) {
    replica_bin = std::getenv("SCDWARF_REPLICA_BIN");
  }
  if (replica_bin.empty()) {
    std::error_code ec;
    fs::path self = fs::read_symlink("/proc/self/exe", ec);
    if (!ec) {
      replica_bin = (self.parent_path() / ".." / "src" / "replica" /
                     "scdwarf_replica")
                        .lexically_normal()
                        .string();
    }
  }
  if (replica_bin.empty() || !fs::exists(replica_bin)) {
    std::fprintf(stderr,
                 "scdwarf_replica binary not found (looked at \"%s\"); pass "
                 "--replica-bin=PATH or set SCDWARF_REPLICA_BIN\n",
                 replica_bin.c_str());
    return 1;
  }

  const char* dataset_env = std::getenv("SCDWARF_ROUTER_DATASET");
  std::string dataset = dataset_env != nullptr ? dataset_env : "Month";
  int clients = EnvInt("SCDWARF_ROUTER_CLIENTS", 4);
  int requests_per_client = EnvInt("SCDWARF_ROUTER_REQUESTS", 400);
  int cores = static_cast<int>(std::thread::hardware_concurrency());

  auto cube = benchutil::GetDatasetCube(dataset);
  if (!cube.ok()) {
    std::fprintf(stderr, "%s: %s\n", dataset.c_str(),
                 cube.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> pool = MakeRequestPool(**cube, 256, 0xd1ce);

  // Spool the cube once; every replica process mmaps the same file.
  fs::path spool = fs::temp_directory_path() / "scdwarf_bench_router_spool";
  fs::remove_all(spool);
  fs::create_directories(spool);
  const std::string snapshot_path =
      (spool / replica::SnapshotFileName(0)).string();
  if (Status status = replica::WriteCubeSnapshot(**cube, 0, snapshot_path);
      !status.ok()) {
    std::fprintf(stderr, "snapshot spool failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  std::printf(
      "=== Router fan-out (%s dataset, %d clients x %d requests, %d cores, "
      "replica caches off) ===\n",
      dataset.c_str(), clients, requests_per_client, cores);
  std::printf("%-9s %10s %10s %10s %10s %10s\n", "replicas", "requests",
              "seconds", "qps", "p50_us", "p99_us");

  std::vector<benchutil::BenchJsonRow> rows;
  double qps_at_1 = 0;
  bool failed = false;
  for (int replica_count : {1, 2, 4}) {
    std::vector<ReplicaProcess> processes;
    std::vector<client::Endpoint> endpoints;
    for (int i = 0; i < replica_count && !failed; ++i) {
      auto process = SpawnReplica(replica_bin, spool.string());
      if (!process.ok()) {
        std::fprintf(stderr, "spawn replica: %s\n",
                     process.status().ToString().c_str());
        failed = true;
        break;
      }
      client::Endpoint endpoint;
      endpoint.port = process->port;
      endpoints.push_back(endpoint);
      processes.push_back(std::move(*process));
    }
    if (failed) {
      for (ReplicaProcess& process : processes) StopReplica(process);
      break;
    }

    replica::RouterOptions router_options;
    router_options.health_interval_ms = 0;  // fixed fleet, no kills here
    replica::Router router(endpoints, router_options);
    if (router.CheckReplicasOnce() != static_cast<size_t>(replica_count)) {
      std::fprintf(stderr, "not every replica answered its first ping\n");
      failed = true;
    }
    server::TcpServer front(&router);
    if (Status status = front.Start(0); !status.ok()) {
      std::fprintf(stderr, "router listener: %s\n",
                   status.ToString().c_str());
      failed = true;
    }

    LoadResult load;
    if (!failed) {
      load = RunLoad(static_cast<uint16_t>(front.port()), pool, clients,
                     requests_per_client);
      if (load.failures > 0) {
        std::fprintf(stderr,
                     "%llu of %llu requests failed at %d replicas\n",
                     static_cast<unsigned long long>(load.failures),
                     static_cast<unsigned long long>(load.failures +
                                                     load.requests),
                     replica_count);
        failed = true;
      }
    }
    front.Stop();
    for (ReplicaProcess& process : processes) StopReplica(process);
    if (failed) break;

    double qps = load.seconds > 0
                     ? static_cast<double>(load.requests) / load.seconds
                     : 0;
    if (replica_count == 1) qps_at_1 = qps;
    std::printf("%-9d %10llu %10.3f %10.0f %10.1f %10.1f\n", replica_count,
                static_cast<unsigned long long>(load.requests), load.seconds,
                qps, load.p50_us, load.p99_us);

    benchutil::BenchJsonRow row;
    row.emplace_back("dataset", json::JsonValue(dataset));
    row.emplace_back("router_replicas", json::JsonValue(replica_count));
    row.emplace_back("router_clients", json::JsonValue(clients));
    row.emplace_back("router_requests",
                     json::JsonValue(static_cast<int64_t>(load.requests)));
    row.emplace_back("router_seconds", json::JsonValue(load.seconds));
    row.emplace_back("router_qps", json::JsonValue(qps));
    row.emplace_back("router_p50_us", json::JsonValue(load.p50_us));
    row.emplace_back("router_p99_us", json::JsonValue(load.p99_us));
    row.emplace_back("router_cores", json::JsonValue(cores));
    rows.push_back(std::move(row));
  }
  fs::remove_all(spool);
  if (failed) return 1;

  if (qps_at_1 > 0 && !rows.empty()) {
    // The last row is the widest fan-out; report the headline ratio.
    double qps_at_max = 0;
    for (const auto& field : rows.back()) {
      if (field.first == "router_qps") {
        qps_at_max = *field.second.AsNumber();
      }
    }
    std::printf("scaling: %.2fx QPS at 4 replicas vs 1 (%d cores)\n",
                qps_at_max / qps_at_1, cores);
  }

  if (Status status = MergeIntoBenchJson("BENCH_server.json", rows);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
