#include "bench_util.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "citibikes/bike_feed.h"
#include "json/json_parser.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/trace.h"
#include "etl/pipeline.h"
#include "mapper/nosql_dwarf_mapper.h"
#include "mapper/nosql_min_mapper.h"
#include "mapper/sql_dwarf_mapper.h"
#include "mapper/sql_min_mapper.h"

namespace scdwarf::benchutil {

namespace fs = std::filesystem;

namespace {

std::string g_metrics_dump_path;
std::string g_trace_dump_path;

bool WriteTextFile(const std::string& path, const std::string& contents) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  size_t written = std::fwrite(contents.data(), 1, contents.size(), out);
  return std::fclose(out) == 0 && written == contents.size();
}

void WriteObservabilityDumps() {
  if (!g_metrics_dump_path.empty()) {
    std::string json =
        "{\"metrics\":" +
        metrics::SnapshotToJson(metrics::GlobalRegistry().Snapshot()) + "}\n";
    if (WriteTextFile(g_metrics_dump_path, json)) {
      std::fprintf(stderr, "metrics snapshot written to %s\n",
                   g_metrics_dump_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write metrics snapshot to %s\n",
                   g_metrics_dump_path.c_str());
    }
  }
  if (!g_trace_dump_path.empty()) {
    if (WriteTextFile(g_trace_dump_path, trace::ExportChromeJson())) {
      std::fprintf(stderr, "trace written to %s (load via chrome://tracing)\n",
                   g_trace_dump_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   g_trace_dump_path.c_str());
    }
  }
}

}  // namespace

void InstallObservabilityDumps(int* argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--metrics-dump=", 0) == 0) {
      g_metrics_dump_path = arg.substr(15);
    } else if (arg.rfind("--trace-dump=", 0) == 0) {
      g_trace_dump_path = arg.substr(13);
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  if (g_metrics_dump_path.empty()) {
    if (const char* env = std::getenv("SCDWARF_METRICS_DUMP")) {
      g_metrics_dump_path = env;
    }
  }
  if (g_trace_dump_path.empty()) {
    if (const char* env = std::getenv("SCDWARF_TRACE_DUMP")) {
      g_trace_dump_path = env;
    }
  }
  if (!g_trace_dump_path.empty()) trace::SetEnabled(true);
  if (!g_metrics_dump_path.empty() || !g_trace_dump_path.empty()) {
    std::atexit(WriteObservabilityDumps);
  }
}

Status WriteBenchJson(const std::string& path, const std::string& benchmark,
                      const std::vector<BenchJsonRow>& rows) {
  json::JsonArray results;
  results.reserve(rows.size());
  for (const BenchJsonRow& row : rows) {
    results.push_back(json::JsonValue(row));
  }
  json::JsonObject root;
  root.emplace_back("benchmark", json::JsonValue(benchmark));
  root.emplace_back("results", json::JsonValue(std::move(results)));
  std::string text =
      json::SerializeJson(json::JsonValue(std::move(root)), /*pretty=*/true);
  text += "\n";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return Status::IoError("cannot write " + path);
  }
  size_t written = std::fwrite(text.data(), 1, text.size(), out);
  std::fclose(out);
  if (written != text.size()) {
    return Status::IoError("short write to " + path);
  }
  std::printf("wrote %s (%zu rows)\n", path.c_str(), rows.size());
  return Status::OK();
}

std::vector<std::string> SelectedDatasets() {
  std::vector<std::string> all;
  for (const citibikes::DatasetSpec& dataset : citibikes::Table2Datasets()) {
    all.push_back(dataset.name);
  }
  const char* env = std::getenv("SCDWARF_DATASETS");
  if (env == nullptr || std::string(env).empty() ||
      EqualsIgnoreCase(env, "all")) {
    return all;
  }
  std::vector<std::string> selected;
  for (const std::string& raw : StrSplit(env, ',')) {
    std::string name(StrTrim(raw));
    for (const std::string& known : all) {
      if (EqualsIgnoreCase(known, name)) selected.push_back(known);
    }
  }
  return selected.empty() ? all : selected;
}

namespace {
struct DatasetCache {
  std::shared_ptr<const dwarf::DwarfCube> cube;
  FeedStats feed;
};
std::map<std::string, DatasetCache>& Cache() {
  static auto* cache = new std::map<std::string, DatasetCache>();
  return *cache;
}
}  // namespace

Result<std::shared_ptr<const dwarf::DwarfCube>> GetDatasetCube(
    const std::string& dataset) {
  auto it = Cache().find(dataset);
  if (it != Cache().end()) return it->second.cube;

  SCD_ASSIGN_OR_RETURN(citibikes::DatasetSpec spec,
                       citibikes::FindDataset(dataset));
  citibikes::BikeFeedConfig config = citibikes::MakeFeedConfig(spec);
  citibikes::BikeFeedGenerator feed(config);
  SCD_ASSIGN_OR_RETURN(etl::CubePipeline pipeline, etl::MakeBikesXmlPipeline());
  Stopwatch watch;
  while (feed.HasNext()) {
    SCD_RETURN_IF_ERROR(pipeline.ConsumeXml(feed.NextXml()));
  }
  double parse_ms = watch.ElapsedMillis();
  etl::PipelineProfile profile;
  SCD_ASSIGN_OR_RETURN(dwarf::DwarfCube cube,
                       std::move(pipeline).Finish(&profile));
  DatasetCache entry;
  entry.feed.documents = feed.documents_emitted();
  entry.feed.records = feed.records_emitted();
  entry.feed.raw_bytes = feed.bytes_emitted();
  entry.feed.parse_ms = parse_ms;
  entry.feed.sort_ms = profile.build.sort_ms;
  entry.feed.construct_ms = profile.build.construct_ms;
  entry.feed.parse_build_ms = watch.ElapsedMillis();
  entry.cube = std::make_shared<const dwarf::DwarfCube>(std::move(cube));
  Cache()[dataset] = entry;
  return entry.cube;
}

Result<FeedStats> GetDatasetFeedStats(const std::string& dataset) {
  SCD_RETURN_IF_ERROR(GetDatasetCube(dataset).status());
  return Cache()[dataset].feed;
}

void EvictDatasetCube(const std::string& dataset) { Cache().erase(dataset); }

const char* SchemaName(StorageSchema schema) {
  switch (schema) {
    case StorageSchema::kMySqlDwarf: return "MySQL-DWARF";
    case StorageSchema::kMySqlMin: return "MySQL-Min";
    case StorageSchema::kNoSqlDwarf: return "NoSQL-DWARF";
    case StorageSchema::kNoSqlMin: return "NoSQL-Min";
  }
  return "?";
}

std::string ScratchDir(const std::string& tag) {
  return (fs::temp_directory_path() /
          ("scdwarf_bench_" + std::to_string(::getpid()) + "_" + tag))
      .string();
}

Result<StoreRunResult> RunStore(StorageSchema schema,
                                const dwarf::DwarfCube& cube) {
  std::string dir = ScratchDir(SchemaName(schema));
  fs::remove_all(dir);
  StoreRunResult result;
  Stopwatch watch;
  switch (schema) {
    case StorageSchema::kNoSqlDwarf: {
      SCD_ASSIGN_OR_RETURN(nosql::Database db, nosql::Database::Open(dir));
      mapper::NoSqlDwarfMapper cube_mapper(&db, "dwarfks");
      mapper::NoSqlStoreStats stats;
      watch.Restart();
      SCD_RETURN_IF_ERROR(cube_mapper.Store(cube, {}, &stats).status());
      result.insert_ms = watch.ElapsedMillis();
      SCD_ASSIGN_OR_RETURN(result.disk_bytes, db.DiskSizeBytes());
      result.rows = stats.node_rows + stats.cell_rows;
      break;
    }
    case StorageSchema::kNoSqlMin: {
      SCD_ASSIGN_OR_RETURN(nosql::Database db, nosql::Database::Open(dir));
      mapper::NoSqlMinMapper cube_mapper(&db, "minks");
      watch.Restart();
      SCD_RETURN_IF_ERROR(cube_mapper.Store(cube).status());
      result.insert_ms = watch.ElapsedMillis();
      SCD_ASSIGN_OR_RETURN(result.disk_bytes, db.DiskSizeBytes());
      result.rows = cube.stats().cell_count + cube.num_nodes();
      break;
    }
    case StorageSchema::kMySqlDwarf: {
      SCD_ASSIGN_OR_RETURN(sql::SqlEngine engine, sql::SqlEngine::Open(dir));
      mapper::SqlDwarfMapper cube_mapper(&engine, "dwarfdb");
      mapper::SqlDwarfStoreStats stats;
      watch.Restart();
      SCD_RETURN_IF_ERROR(cube_mapper.Store(cube, &stats).status());
      result.insert_ms = watch.ElapsedMillis();
      SCD_ASSIGN_OR_RETURN(result.disk_bytes, engine.DiskSizeBytes());
      result.rows = stats.node_rows + stats.cell_rows +
                    stats.node_children_rows + stats.cell_children_rows;
      break;
    }
    case StorageSchema::kMySqlMin: {
      SCD_ASSIGN_OR_RETURN(sql::SqlEngine engine, sql::SqlEngine::Open(dir));
      mapper::SqlMinMapper cube_mapper(&engine, "mindb");
      watch.Restart();
      SCD_RETURN_IF_ERROR(cube_mapper.Store(cube).status());
      result.insert_ms = watch.ElapsedMillis();
      SCD_ASSIGN_OR_RETURN(result.disk_bytes, engine.DiskSizeBytes());
      result.rows = cube.stats().cell_count + cube.num_nodes();
      break;
    }
  }
  fs::remove_all(dir);
  return result;
}

namespace {
// Table 4 of the paper, in MB ("< 1" entries recorded as 0.9).
const std::map<std::string, std::map<std::string, double>>& PaperTable4() {
  static const auto* table = new std::map<std::string, std::map<std::string, double>>{
      {"MySQL-DWARF",
       {{"Day", 2}, {"Week", 20}, {"Month", 80}, {"TMonth", 169}, {"SMonth", 424}}},
      {"MySQL-Min",
       {{"Day", 0.9}, {"Week", 8}, {"Month", 33}, {"TMonth", 70}, {"SMonth", 178}}},
      {"NoSQL-DWARF",
       {{"Day", 0.9}, {"Week", 9}, {"Month", 35}, {"TMonth", 73}, {"SMonth", 182}}},
      {"NoSQL-Min",
       {{"Day", 0.9}, {"Week", 11}, {"Month", 45}, {"TMonth", 96}, {"SMonth", 243}}},
  };
  return *table;
}

// Table 5 of the paper, in milliseconds.
const std::map<std::string, std::map<std::string, double>>& PaperTable5() {
  static const auto* table = new std::map<std::string, std::map<std::string, double>>{
      {"MySQL-DWARF",
       {{"Day", 1768}, {"Week", 12501}, {"Month", 47247}, {"TMonth", 100466},
        {"SMonth", 255098}}},
      {"MySQL-Min",
       {{"Day", 1107}, {"Week", 5955}, {"Month", 22243}, {"TMonth", 47936},
        {"SMonth", 121221}}},
      {"NoSQL-DWARF",
       {{"Day", 927}, {"Week", 4368}, {"Month", 15955}, {"TMonth", 34203},
        {"SMonth", 89257}}},
      {"NoSQL-Min",
       {{"Day", 5699}, {"Week", 57153}, {"Month", 222044}, {"TMonth", 484498},
        {"SMonth", 1219887}}},
  };
  return *table;
}
}  // namespace

double PaperTable4Mb(StorageSchema schema, const std::string& dataset) {
  return PaperTable4().at(SchemaName(schema)).at(dataset);
}

double PaperTable5Ms(StorageSchema schema, const std::string& dataset) {
  return PaperTable5().at(SchemaName(schema)).at(dataset);
}

}  // namespace scdwarf::benchutil
