// Query-service load generator: serves each selected dataset's cube from a
// QueryServer and drives it with concurrent clients issuing a mixed
// point/aggregate/slice/rollup workload through the in-process ServerHandle
// (the same execution, admission and caching path as the TCP front-end).
// Reports QPS, latency quantiles from the server's histogram, and the cache
// hit rate, then measures the epoch-bump path: one small batch applied via
// the incremental delta merge (with its delta-build/merge split and node
// reuse), the identical batch applied via a full from-scratch rebuild, and
// a sustained burst of publishes. Results land machine-readably in
// BENCH_server.json.
//
// Defaults to the Day and Month datasets (the acceptance pair);
// SCDWARF_DATASETS overrides as usual. SCDWARF_SERVER_CLIENTS and
// SCDWARF_SERVER_REQUESTS override the client count / per-client requests.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "client/client.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "dwarf/dwarf_cube.h"
#include "json/json_parser.h"
#include "server/binwire.h"
#include "server/query_server.h"
#include "server/tcp_server.h"
#include "server/wire.h"

namespace {

using namespace scdwarf;

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

// Draws a random decoded value of dimension `dim` from the cube dictionary.
std::string RandomKey(const dwarf::DwarfCube& cube, size_t dim, Rng& rng) {
  const dwarf::Dictionary& dictionary = cube.dictionary(dim);
  return dictionary.DecodeUnchecked(
      static_cast<dwarf::DimKey>(rng.NextBelow(dictionary.size())));
}

// Pre-generates a pool of request frames. Clients cycle through the pool
// from random offsets, so repeated queries exercise the result cache the
// way a real fleet of dashboards would.
std::vector<std::string> MakeRequestPool(const dwarf::DwarfCube& cube,
                                         size_t pool_size, uint64_t seed) {
  Rng rng(seed);
  size_t dims = cube.num_dimensions();
  std::vector<std::string> pool;
  pool.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    double draw = rng.NextDouble();
    json::JsonObject request;
    if (draw < 0.5) {  // point query, a few fixed coordinates, rest ALL
      request.emplace_back("op", json::JsonValue("point"));
      json::JsonArray keys;
      for (size_t dim = 0; dim < dims; ++dim) {
        if (rng.NextBool(0.25)) {
          keys.push_back(json::JsonValue(RandomKey(cube, dim, rng)));
        } else {
          keys.push_back(json::JsonValue(nullptr));
        }
      }
      request.emplace_back("keys", json::JsonValue(std::move(keys)));
    } else if (draw < 0.7) {  // aggregate with one range + one set
      request.emplace_back("op", json::JsonValue("aggregate"));
      json::JsonArray predicates;
      size_t range_dim = rng.NextBelow(dims);
      size_t set_dim = (range_dim + 1) % dims;
      for (size_t dim = 0; dim < dims; ++dim) {
        json::JsonObject predicate;
        if (dim == range_dim && cube.dictionary(dim).size() > 1) {
          size_t size = cube.dictionary(dim).size();
          uint64_t lo = rng.NextBelow(size);
          uint64_t hi = lo + rng.NextBelow(size - lo);
          predicate.emplace_back("kind", json::JsonValue("range"));
          predicate.emplace_back("lo", json::JsonValue(static_cast<int64_t>(lo)));
          predicate.emplace_back("hi", json::JsonValue(static_cast<int64_t>(hi)));
        } else if (dim == set_dim) {
          predicate.emplace_back("kind", json::JsonValue("set"));
          json::JsonArray members;
          size_t count = 1 + rng.NextBelow(3);
          for (size_t k = 0; k < count; ++k) {
            members.push_back(json::JsonValue(RandomKey(cube, dim, rng)));
          }
          predicate.emplace_back("keys", json::JsonValue(std::move(members)));
        } else {
          predicate.emplace_back("kind", json::JsonValue("all"));
        }
        predicates.push_back(json::JsonValue(std::move(predicate)));
      }
      request.emplace_back("predicates", json::JsonValue(std::move(predicates)));
    } else if (draw < 0.9) {  // slice on a random dimension
      size_t dim = rng.NextBelow(dims);
      request.emplace_back("op", json::JsonValue("slice"));
      request.emplace_back(
          "dim", json::JsonValue(cube.schema().dimensions()[dim].name));
      request.emplace_back("key", json::JsonValue(RandomKey(cube, dim, rng)));
    } else {  // single-dimension rollup
      size_t dim = rng.NextBelow(dims);
      request.emplace_back("op", json::JsonValue("rollup"));
      json::JsonArray group;
      group.push_back(json::JsonValue(cube.schema().dimensions()[dim].name));
      request.emplace_back("dims", json::JsonValue(std::move(group)));
    }
    pool.push_back(json::SerializeJson(json::JsonValue(std::move(request))));
  }
  return pool;
}

struct RunResult {
  double seconds = 0;
  uint64_t requests = 0;
};

// ---------------------------------------------------------------- helpers
// for the session/revalidation phases: minimal envelope accessors (the
// bench tolerates malformed responses instead of crashing mid-run).

bool GetBool(const json::JsonValue& object, const char* key) {
  auto value = object.Get(key);
  if (!value.ok()) return false;
  auto flag = value->AsBool();
  return flag.ok() && *flag;
}

double GetNumber(const json::JsonValue& object, const char* key) {
  auto value = object.Get(key);
  if (!value.ok()) return 0;
  auto number = value->AsNumber();
  return number.ok() ? *number : 0;
}

std::string RowsJson(const json::JsonValue& envelope) {
  auto rows = envelope.Get("rows");
  if (!rows.ok()) return "";
  return json::SerializeJson(*rows);
}

// Drains a cursor session and compares the concatenated pages against the
// one-shot rows of the same query — the acceptance check of the session
// protocol, measured instead of asserted.
struct CursorRun {
  uint64_t pages = 0;
  uint64_t rows = 0;
  double seconds = 0;
  bool matches_oneshot = false;
};

CursorRun RunCursorDrain(server::QueryServer& server,
                         const std::string& query_json, size_t page_size) {
  CursorRun run;
  server::ServerHandle handle(&server);
  auto oneshot = json::ParseJson(handle.Call(query_json));
  if (!oneshot.ok()) return run;
  std::string want = RowsJson(*oneshot);

  Stopwatch watch;
  auto open = json::ParseJson(handle.QueryOpen(query_json, page_size));
  if (!open.ok() || !GetBool(*open, "ok")) return run;
  uint64_t cursor = static_cast<uint64_t>(GetNumber(*open, "cursor"));
  json::JsonArray drained;
  while (true) {
    auto page = json::ParseJson(handle.QueryNext(cursor));
    if (!page.ok() || !GetBool(*page, "ok")) return run;
    auto rows = page->Get("rows");
    if (!rows.ok()) return run;
    const json::JsonArray* array = rows->AsArray();
    if (array == nullptr) return run;
    run.rows += array->size();
    ++run.pages;
    for (const json::JsonValue& row : *array) drained.push_back(row);
    if (GetBool(*page, "done")) break;
  }
  run.seconds = watch.ElapsedSeconds();
  run.matches_oneshot =
      json::SerializeJson(json::JsonValue(std::move(drained))) == want;
  return run;
}

// Probes delta-epoch revalidation: warm a slice on dimension-0 key A, publish
// a batch touching only key B (the cached entry must carry over as a
// revalidated hit), then publish a batch touching key A (the entry must drop
// and recompute).
struct RevalidationProbe {
  bool ran = false;
  uint64_t revalidated_delta = 0;
  bool revalidated_hit = false;
  bool invalidated_recompute = false;
};

// Picks the dimension with the largest dictionary — low-cardinality leading
// dimensions (a single year, one city) cannot distinguish "touched" from
// "missed" prefixes.
size_t WidestDimension(const dwarf::DwarfCube& cube) {
  size_t best = 0;
  for (size_t dim = 1; dim < cube.num_dimensions(); ++dim) {
    if (cube.dictionary(dim).size() > cube.dictionary(best).size()) best = dim;
  }
  return best;
}

RevalidationProbe ProbeRevalidation(server::QueryServer& server,
                                    const dwarf::DwarfCube& cube, Rng& rng) {
  RevalidationProbe probe;
  size_t probe_dim = WidestDimension(cube);
  const dwarf::Dictionary& dict = cube.dictionary(probe_dim);
  if (dict.size() < 2) return probe;
  std::string key_a = dict.DecodeUnchecked(0);
  std::string key_b = dict.DecodeUnchecked(1);

  json::JsonObject request;
  request.emplace_back("op", json::JsonValue("slice"));
  request.emplace_back(
      "dim", json::JsonValue(cube.schema().dimensions()[probe_dim].name));
  request.emplace_back("key", json::JsonValue(key_a));
  std::string query = json::SerializeJson(json::JsonValue(std::move(request)));

  auto make_batch = [&](const std::string& probe_key) {
    std::vector<std::pair<std::vector<std::string>, dwarf::Measure>> batch;
    for (int i = 0; i < 4; ++i) {
      std::vector<std::string> keys;
      for (size_t dim = 0; dim < cube.num_dimensions(); ++dim) {
        keys.push_back(dim == probe_dim ? probe_key
                                        : RandomKey(cube, dim, rng));
      }
      batch.emplace_back(std::move(keys), 1);
    }
    return batch;
  };

  server::ServerHandle handle(&server);
  handle.Call(query);  // warm: compute and cache at the current epoch
  uint64_t revalidated_before = server.Stats().cache.revalidated;

  if (!server.ApplyUpdate(make_batch(key_b)).ok()) return probe;
  auto after_miss = json::ParseJson(handle.Call(query));
  probe.revalidated_delta =
      server.Stats().cache.revalidated - revalidated_before;
  probe.revalidated_hit = after_miss.ok() && GetBool(*after_miss, "cached");

  if (!server.ApplyUpdate(make_batch(key_a)).ok()) return probe;
  auto after_touch = json::ParseJson(handle.Call(query));
  probe.invalidated_recompute =
      after_touch.ok() && !GetBool(*after_touch, "cached");
  probe.ran = true;
  return probe;
}

// Range phase: the same value window answered two ways — as a value-form
// range predicate (resolved to a rank window, pruned through the min/max-rank
// subtree index) and as a set predicate enumerating every matching value
// (identical answer, per-cell membership checks, no pruning). Also probes
// range-aware revalidation: a cached value-range aggregate must survive a
// publish whose keys all fall outside the window.
struct RangeProbe {
  bool ran = false;
  std::string dim_name;
  double pruned_us = 0;  ///< per-query, value-form range
  double enum_us = 0;    ///< per-query, equivalent set enumeration
  double speedup = 0;
  uint64_t subtrees_pruned = 0;  ///< counter delta over the timed loop
  bool answers_match = false;
  bool reval_hit = false;
};

// The ordered dimension with the largest dictionary (needs >= 3 values for
// a window with room outside it), or num_dimensions() when there is none.
size_t WidestOrderedDimension(const dwarf::DwarfCube& cube) {
  size_t best = cube.num_dimensions();
  for (size_t dim = 0; dim < cube.num_dimensions(); ++dim) {
    if (!cube.schema().dimensions()[dim].ordered) continue;
    if (cube.dictionary(dim).size() < 3) continue;
    if (best == cube.num_dimensions() ||
        cube.dictionary(dim).size() > cube.dictionary(best).size()) {
      best = dim;
    }
  }
  return best;
}

RangeProbe ProbeRangeQueries(server::QueryServer& server,
                             const dwarf::DwarfCube& base_cube, Rng& rng) {
  RangeProbe probe;
  size_t range_dim = WidestOrderedDimension(base_cube);
  if (range_dim == base_cube.num_dimensions() || range_dim == 0) return probe;
  probe.dim_name = base_cube.schema().dimensions()[range_dim].name;
  // Subtree pruning only has work when a level ABOVE the ordered dim fans
  // out over subtrees with differing rank spans. The generated feed covers
  // the time dimensions uniformly — every subtree spans every value — so
  // first publish the skew real smart-city feeds have: a few late-arriving
  // shards (fresh values on the widest ancestor dim) whose only range-dim
  // value is the earliest one, outside the probe window below.
  size_t parent_dim = 0;
  for (size_t dim = 1; dim < range_dim; ++dim) {
    if (base_cube.dictionary(dim).size() >
        base_cube.dictionary(parent_dim).size()) {
      parent_dim = dim;
    }
  }
  {
    std::string earliest = base_cube.dictionary(range_dim).DecodeUnchecked(
        base_cube.dictionary(range_dim).IdAtRank(0));
    std::vector<std::pair<std::vector<std::string>, dwarf::Measure>> shards;
    for (int i = 0; i < 8; ++i) {
      std::vector<std::string> keys;
      for (size_t dim = 0; dim < base_cube.num_dimensions(); ++dim) {
        if (dim == parent_dim) {
          keys.push_back("probe-shard-" + std::to_string(i));
        } else if (dim == range_dim) {
          keys.push_back(earliest);
        } else {
          keys.push_back(RandomKey(base_cube, dim, rng));
        }
      }
      shards.emplace_back(std::move(keys), 1);
    }
    if (!server.ApplyUpdate(shards).ok()) return probe;
  }
  server::EpochCubeStore::Snapshot snapshot = server.store().snapshot();
  const dwarf::DwarfCube& cube = *snapshot.cube;
  const dwarf::Dictionary& dict = cube.dictionary(range_dim);
  // Middle third of the value order; rank 0 (where the probe shards and the
  // miss-publish below live) stays outside the window.
  dwarf::DimKey lo_rank = static_cast<dwarf::DimKey>(dict.size() / 3);
  dwarf::DimKey hi_rank = static_cast<dwarf::DimKey>(2 * dict.size() / 3);
  std::string lo = dict.DecodeUnchecked(dict.IdAtRank(lo_rank));
  std::string hi = dict.DecodeUnchecked(dict.IdAtRank(hi_rank));

  auto request_with = [&](json::JsonObject range_predicate) {
    json::JsonObject request;
    request.emplace_back("op", json::JsonValue("aggregate"));
    json::JsonArray predicates;
    for (size_t dim = 0; dim < cube.num_dimensions(); ++dim) {
      if (dim == range_dim) {
        predicates.push_back(json::JsonValue(std::move(range_predicate)));
      } else if (dim == parent_dim) {
        // Every parent value, spelled as a set: the same rows as ALL, but
        // the evaluator must fan out per subtree instead of riding the ALL
        // pointer — which is what gives the range index subtrees to skip.
        json::JsonObject fan_out;
        fan_out.emplace_back("kind", json::JsonValue("set"));
        json::JsonArray parent_values;
        const dwarf::Dictionary& parents = cube.dictionary(parent_dim);
        for (dwarf::DimKey id = 0; id < parents.size(); ++id) {
          parent_values.push_back(json::JsonValue(parents.DecodeUnchecked(id)));
        }
        fan_out.emplace_back("keys", json::JsonValue(std::move(parent_values)));
        predicates.push_back(json::JsonValue(std::move(fan_out)));
      } else {
        json::JsonObject all;
        all.emplace_back("kind", json::JsonValue("all"));
        predicates.push_back(json::JsonValue(std::move(all)));
      }
    }
    request.emplace_back("predicates", json::JsonValue(std::move(predicates)));
    return json::SerializeJson(json::JsonValue(std::move(request)));
  };

  json::JsonObject ranged;
  ranged.emplace_back("kind", json::JsonValue("range"));
  ranged.emplace_back("lo", json::JsonValue(lo));
  ranged.emplace_back("hi", json::JsonValue(hi));
  std::string ranged_json = request_with(std::move(ranged));

  json::JsonObject members;
  members.emplace_back("kind", json::JsonValue("set"));
  json::JsonArray values;
  for (dwarf::DimKey rank = lo_rank; rank <= hi_rank; ++rank) {
    values.push_back(
        json::JsonValue(dict.DecodeUnchecked(dict.IdAtRank(rank))));
  }
  members.emplace_back("keys", json::JsonValue(std::move(values)));
  std::string enumerated_json = request_with(std::move(members));

  auto ranged_request = server::ParseRequest(ranged_json);
  auto enumerated_request = server::ParseRequest(enumerated_json);
  if (!ranged_request.ok() || !enumerated_request.ok()) return probe;

  // Direct ExecuteRequest keeps the result cache out of the measurement.
  metrics::Counter* pruned_counter = metrics::GlobalRegistry().GetCounter(
      "dwarf_range_subtrees_pruned_total");
  uint64_t pruned_before = pruned_counter->value();
  constexpr int kIters = 200;
  server::ExecResult ranged_result =
      server::ExecuteRequest(cube, *ranged_request);
  server::ExecResult enumerated_result =
      server::ExecuteRequest(cube, *enumerated_request);
  probe.answers_match =
      ranged_result.ok && enumerated_result.ok &&
      ranged_result.payload_json == enumerated_result.payload_json;
  Stopwatch ranged_watch;
  for (int i = 0; i < kIters; ++i) {
    server::ExecuteRequest(cube, *ranged_request);
  }
  probe.pruned_us = ranged_watch.ElapsedMicros() / kIters;
  probe.subtrees_pruned = pruned_counter->value() - pruned_before;
  Stopwatch enumerated_watch;
  for (int i = 0; i < kIters; ++i) {
    server::ExecuteRequest(cube, *enumerated_request);
  }
  probe.enum_us = enumerated_watch.ElapsedMicros() / kIters;
  probe.speedup = probe.pruned_us > 0 ? probe.enum_us / probe.pruned_us : 0;

  // Revalidation: warm through the caching path, publish keys pinned to the
  // rank-0 value (outside the window), and the entry must carry over.
  server::ServerHandle handle(&server);
  handle.Call(ranged_json);
  std::string outside = dict.DecodeUnchecked(dict.IdAtRank(0));
  std::vector<std::pair<std::vector<std::string>, dwarf::Measure>> batch;
  for (int i = 0; i < 4; ++i) {
    std::vector<std::string> keys;
    for (size_t dim = 0; dim < cube.num_dimensions(); ++dim) {
      keys.push_back(dim == range_dim ? outside : RandomKey(cube, dim, rng));
    }
    batch.emplace_back(std::move(keys), 1);
  }
  if (!server.ApplyUpdate(batch).ok()) return probe;
  auto after = json::ParseJson(handle.Call(ranged_json));
  probe.reval_hit = after.ok() && GetBool(*after, "cached");
  probe.ran = true;
  return probe;
}

// Wire-format phase: the same cursor drain and one-shot mix over a real
// TCP connection, once per negotiated format. The binary drain is measured
// twice — through Call (client transcodes every page back to JSON) and
// through the raw CallRaw + PeekCursorPage path (no reconstruction, the
// fleet-drain shape) — against the JSON connection as baseline. Row
// equality across the three drains doubles as an end-to-end differential.
struct WirePhase {
  bool ran = false;
  double json_drain_ms = 0;
  double bin_drain_ms = 0;   ///< Call path: binary frames + JSON rebuild
  double raw_drain_ms = 0;   ///< CallRaw path: binary frames, header peeks
  uint64_t rows = 0;
  bool rows_match = false;
  double json_oneshot_us = 0;
  double bin_oneshot_us = 0;
};

WirePhase RunWireFormatPhase(server::QueryServer& server,
                             const std::string& cursor_query,
                             const std::vector<std::string>& pool) {
  WirePhase phase;
  server::TcpServer tcp(&server);
  if (!tcp.Start().ok()) return phase;
  client::Endpoint endpoint;
  endpoint.port = static_cast<uint16_t>(tcp.port());
  // The pool contains unfiltered slices over wide dimensions — multi-MB
  // responses on the bigger datasets — so raise the frame cap well past
  // the 1 MiB default on both sides of the comparison.
  client::ClientOptions json_options;
  json_options.max_frame_bytes = 64u << 20;
  client::CubeClient json_conn(endpoint, json_options);
  client::ClientOptions binary_options = json_options;
  binary_options.prefer_binary = true;
  client::CubeClient bin_conn(endpoint, binary_options);
  constexpr size_t kPageSize = 64;

  auto open_cursor = [&](client::CubeClient& conn) -> uint64_t {
    auto opened = conn.Call("{\"op\":\"query_open\",\"query\":" +
                            cursor_query +
                            ",\"page_size\":" + std::to_string(kPageSize) +
                            "}");
    if (!opened.ok()) return 0;
    auto envelope = json::ParseJson(*opened);
    if (!envelope.ok() || !GetBool(*envelope, "ok")) return 0;
    return static_cast<uint64_t>(GetNumber(*envelope, "cursor"));
  };
  // Timed drain through Call: pages arrive in whatever format the
  // connection negotiated and come back as canonical JSON rows.
  auto drain = [&](client::CubeClient& conn, double* ms) -> std::string {
    uint64_t cursor = open_cursor(conn);
    if (cursor == 0) return "";
    json::JsonArray drained;
    Stopwatch watch;
    while (true) {
      auto raw = conn.Call("{\"op\":\"query_next\",\"cursor\":" +
                           std::to_string(cursor) + "}");
      if (!raw.ok()) return "";
      auto page = json::ParseJson(*raw);
      if (!page.ok() || !GetBool(*page, "ok")) return "";
      auto rows = page->Get("rows");
      if (!rows.ok() || rows->AsArray() == nullptr) return "";
      for (const json::JsonValue& row : *rows->AsArray()) {
        drained.push_back(row);
      }
      if (GetBool(*page, "done")) break;
    }
    *ms = watch.ElapsedMillis();
    return json::SerializeJson(json::JsonValue(std::move(drained)));
  };

  // Sub-millisecond drains are noisy one at a time; report the mean of a
  // batch, comparing the rows of the last drain of each format.
  constexpr int kDrainReps = 25;
  std::string json_rows;
  std::string bin_rows;
  double total_ms = 0;
  for (int rep = 0; rep < kDrainReps; ++rep) {
    double ms = 0;
    json_rows = drain(json_conn, &ms);
    total_ms += ms;
  }
  phase.json_drain_ms = total_ms / kDrainReps;
  total_ms = 0;
  for (int rep = 0; rep < kDrainReps; ++rep) {
    double ms = 0;
    bin_rows = drain(bin_conn, &ms);
    total_ms += ms;
  }
  phase.bin_drain_ms = total_ms / kDrainReps;
  phase.rows_match = !json_rows.empty() && json_rows == bin_rows;

  // Raw binary drain: pre-encoded query_next, kind-3 pages steered by the
  // header peek alone. This is the shape a page-relay (or a byte-counting
  // consumer) uses; decode cost drops out of the loop entirely.
  double raw_total_ms = 0;
  int raw_reps_done = 0;
  for (int rep = 0; rep < kDrainReps; ++rep) {
    uint64_t cursor = open_cursor(bin_conn);
    if (cursor == 0) break;
    server::QueryRequest next;
    next.op = server::RequestOp::kQueryNext;
    next.cursor_id = cursor;
    auto encoded = server::binwire::EncodeRequest(next);
    if (!encoded.ok()) break;
    uint64_t raw_rows = 0;
    Stopwatch watch;
    while (true) {
      auto raw = bin_conn.CallRaw(*encoded);
      if (!raw.ok()) break;
      auto header = server::binwire::PeekCursorPage(*raw);
      if (!header.ok()) break;
      raw_rows += header->num_rows;
      if (header->done) {
        raw_total_ms += watch.ElapsedMillis();
        phase.rows = raw_rows;
        ++raw_reps_done;
        break;
      }
    }
  }
  if (raw_reps_done > 0) phase.raw_drain_ms = raw_total_ms / raw_reps_done;

  // One-shot latency per format, same request mix, cache fully warm (the
  // load phase already cycled the pool), so the wire is what's measured.
  constexpr int kOneShots = 2000;
  auto time_oneshots = [&](client::CubeClient& conn) -> double {
    for (size_t i = 0; i < 32; ++i) conn.Call(pool[i % pool.size()]);
    Stopwatch watch;
    for (int i = 0; i < kOneShots; ++i) {
      if (!conn.Call(pool[static_cast<size_t>(i) % pool.size()]).ok()) {
        return 0;
      }
    }
    return watch.ElapsedMicros() / kOneShots;
  };
  phase.json_oneshot_us = time_oneshots(json_conn);
  phase.bin_oneshot_us = time_oneshots(bin_conn);

  phase.ran = bin_conn.binary() && phase.rows_match;
  json_conn.Close();
  bin_conn.Close();
  tcp.Stop();
  return phase;
}

RunResult RunClients(server::QueryServer& server,
                     const std::vector<std::string>& pool, int clients,
                     int requests_per_client) {
  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int client = 0; client < clients; ++client) {
    threads.emplace_back([&server, &pool, client, requests_per_client] {
      server::ServerHandle handle(&server);
      Rng rng(0x5eed + static_cast<uint64_t>(client));
      size_t cursor = rng.NextBelow(pool.size());
      for (int i = 0; i < requests_per_client; ++i) {
        handle.Call(pool[cursor]);
        cursor = (cursor + 1) % pool.size();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  RunResult result;
  result.seconds = watch.ElapsedSeconds();
  result.requests =
      static_cast<uint64_t>(clients) * static_cast<uint64_t>(requests_per_client);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::InstallObservabilityDumps(&argc, argv);
  int clients = EnvInt("SCDWARF_SERVER_CLIENTS", 8);
  int requests_per_client = EnvInt("SCDWARF_SERVER_REQUESTS", 2000);
  std::vector<std::string> datasets =
      std::getenv("SCDWARF_DATASETS") != nullptr
          ? benchutil::SelectedDatasets()
          : std::vector<std::string>{"Day", "Month"};

  std::vector<benchutil::BenchJsonRow> rows;
  std::printf("=== Query server load (in-process handle, %d clients x %d requests) ===\n",
              clients, requests_per_client);
  std::printf("%-8s %10s %10s %10s %10s %10s %9s %9s %12s\n", "Dataset",
              "tuples", "qps", "p50_us", "p90_us", "p99_us", "hitrate",
              "rejected", "update_ms");
  for (const std::string& dataset : datasets) {
    auto cube = benchutil::GetDatasetCube(dataset);
    if (!cube.ok()) {
      std::fprintf(stderr, "%s: %s\n", dataset.c_str(),
                   cube.status().ToString().c_str());
      continue;
    }
    std::vector<std::string> pool = MakeRequestPool(**cube, 512, 0xcafe);
    server::ServerOptions options;
    options.max_queue_depth = 256;
    server::QueryServer server(dwarf::DwarfCube(**cube), options);

    RunResult run = RunClients(server, pool, clients, requests_per_client);
    server::ServerStats stats = server.Stats();
    double qps = run.seconds > 0
                     ? static_cast<double>(run.requests) / run.seconds
                     : 0;

    // Epoch-bump path: merge a small batch and let the cache invalidate.
    // The default server publishes via the incremental delta merge; a
    // second full-rebuild server applies the identical batch from the same
    // base cube as the O(history) baseline the merge is supposed to kill.
    std::vector<std::pair<std::vector<std::string>, dwarf::Measure>> batch;
    size_t dims = (*cube)->num_dimensions();
    Rng rng(0xfeed);
    for (int i = 0; i < 16; ++i) {
      std::vector<std::string> keys;
      for (size_t dim = 0; dim < dims; ++dim) {
        keys.push_back(RandomKey(**cube, dim, rng));
      }
      batch.emplace_back(std::move(keys), 1);
    }
    Stopwatch update_watch;
    auto epoch = server.ApplyUpdate(batch);
    double update_ms = update_watch.ElapsedMillis();
    if (!epoch.ok()) {
      std::fprintf(stderr, "update failed: %s\n",
                   epoch.status().ToString().c_str());
    }
    dwarf::UpdateProfile update_profile = server.Stats().last_update;

    double update_full_ms = 0;
    {
      server::ServerOptions full_options;
      full_options.full_rebuild = true;
      full_options.num_workers = 1;
      server::QueryServer full_server(dwarf::DwarfCube(**cube), full_options);
      Stopwatch full_watch;
      auto full_epoch = full_server.ApplyUpdate(batch);
      update_full_ms = full_watch.ElapsedMillis();
      if (!full_epoch.ok()) {
        std::fprintf(stderr, "full-rebuild update failed: %s\n",
                     full_epoch.status().ToString().c_str());
      }
    }
    double update_speedup = update_ms > 0 ? update_full_ms / update_ms : 0;

    // Sustained publish rate: back-to-back 4-tuple incremental publishes.
    constexpr int kPublishBursts = 20;
    Stopwatch publish_watch;
    for (int burst = 0; burst < kPublishBursts; ++burst) {
      std::vector<std::pair<std::vector<std::string>, dwarf::Measure>> small;
      for (int i = 0; i < 4; ++i) {
        std::vector<std::string> keys;
        for (size_t dim = 0; dim < dims; ++dim) {
          keys.push_back(RandomKey(**cube, dim, rng));
        }
        small.emplace_back(std::move(keys), 1);
      }
      if (!server.ApplyUpdate(small).ok()) break;
    }
    double publish_seconds = publish_watch.ElapsedSeconds();
    double publish_hz =
        publish_seconds > 0 ? kPublishBursts / publish_seconds : 0;

    // Cursor sessions: drain a leading-dimension rollup at the acceptance
    // page sizes and check each against the one-shot rows.
    json::JsonObject rollup;
    rollup.emplace_back("op", json::JsonValue("rollup"));
    json::JsonArray group;
    size_t wide_dim = WidestDimension(**cube);
    group.push_back(
        json::JsonValue((*cube)->schema().dimensions()[wide_dim].name));
    if (dims > 1) {
      group.push_back(json::JsonValue(
          (*cube)->schema().dimensions()[wide_dim == 0 ? 1 : 0].name));
    }
    rollup.emplace_back("dims", json::JsonValue(std::move(group)));
    std::string cursor_query =
        json::SerializeJson(json::JsonValue(std::move(rollup)));
    bool pagination_matches = true;
    CursorRun cursor_run;
    for (size_t page_size : {size_t{1}, size_t{7}, size_t{64}}) {
      CursorRun run = RunCursorDrain(server, cursor_query, page_size);
      pagination_matches = pagination_matches && run.matches_oneshot;
      if (page_size == 64) cursor_run = run;
    }

    RevalidationProbe probe = ProbeRevalidation(server, **cube, rng);
    RangeProbe range_probe = ProbeRangeQueries(server, **cube, rng);
    WirePhase wire = RunWireFormatPhase(server, cursor_query, pool);
    stats = server.Stats();  // refresh: the probes moved the cache counters

    std::printf("%-8s %10llu %10.0f %10.1f %10.1f %10.1f %9.3f %9llu %12.1f\n",
                dataset.c_str(),
                static_cast<unsigned long long>((*cube)->stats().tuple_count),
                qps, stats.latency_p50_us, stats.latency_p90_us,
                stats.latency_p99_us, stats.cache_hit_rate,
                static_cast<unsigned long long>(stats.rejected_total),
                update_ms);
    std::printf(
        "  cursor(page=64): %llu rows in %llu pages, %.1f ms, "
        "matches_oneshot=%s | reval: delta=%llu hit=%s invalidate=%s\n",
        static_cast<unsigned long long>(cursor_run.rows),
        static_cast<unsigned long long>(cursor_run.pages),
        cursor_run.seconds * 1e3, pagination_matches ? "yes" : "NO",
        static_cast<unsigned long long>(probe.revalidated_delta),
        probe.revalidated_hit ? "yes" : "NO",
        probe.invalidated_recompute ? "yes" : "NO");
    std::printf(
        "  publish: incremental %.2f ms (delta %.2f + merge %.2f, "
        "%llu nodes reused) vs full rebuild %.2f ms -> %.1fx, "
        "sustained %.0f publishes/s\n",
        update_ms, update_profile.delta_build_ms, update_profile.merge_ms,
        static_cast<unsigned long long>(update_profile.nodes_reused),
        update_full_ms, update_speedup, publish_hz);
    if (range_probe.ran) {
      std::printf(
          "  range(%s): pruned %.1f us vs enum %.1f us -> %.1fx, "
          "%llu subtrees pruned, match=%s reval_hit=%s\n",
          range_probe.dim_name.c_str(), range_probe.pruned_us,
          range_probe.enum_us, range_probe.speedup,
          static_cast<unsigned long long>(range_probe.subtrees_pruned),
          range_probe.answers_match ? "yes" : "NO",
          range_probe.reval_hit ? "yes" : "NO");
    } else {
      std::printf("  range: skipped (no ordered dimension with >= 3 values)\n");
    }
    if (wire.ran) {
      std::printf(
          "  wire(tcp): drain json %.2f ms vs bin1 %.2f ms (raw peek %.2f "
          "ms, %llu rows), oneshot json %.1f us vs bin1 %.1f us, "
          "rows_match=%s\n",
          wire.json_drain_ms, wire.bin_drain_ms, wire.raw_drain_ms,
          static_cast<unsigned long long>(wire.rows), wire.json_oneshot_us,
          wire.bin_oneshot_us, wire.rows_match ? "yes" : "NO");
    } else {
      std::printf("  wire(tcp): skipped (negotiation or drain failed)\n");
    }

    benchutil::BenchJsonRow row;
    row.emplace_back("dataset", json::JsonValue(dataset));
    row.emplace_back("tuples", json::JsonValue(static_cast<int64_t>(
                                   (*cube)->stats().tuple_count)));
    row.emplace_back("clients", json::JsonValue(clients));
    row.emplace_back("requests", json::JsonValue(static_cast<int64_t>(run.requests)));
    row.emplace_back("seconds", json::JsonValue(run.seconds));
    row.emplace_back("qps", json::JsonValue(qps));
    row.emplace_back("p50_us", json::JsonValue(stats.latency_p50_us));
    row.emplace_back("p90_us", json::JsonValue(stats.latency_p90_us));
    row.emplace_back("p99_us", json::JsonValue(stats.latency_p99_us));
    row.emplace_back("cache_hit_rate", json::JsonValue(stats.cache_hit_rate));
    row.emplace_back("cache_hits", json::JsonValue(static_cast<int64_t>(stats.cache.hits)));
    row.emplace_back("cache_misses", json::JsonValue(static_cast<int64_t>(stats.cache.misses)));
    row.emplace_back("rejected", json::JsonValue(static_cast<int64_t>(stats.rejected_total)));
    row.emplace_back("workers", json::JsonValue(server.num_workers()));
    row.emplace_back("update_ms", json::JsonValue(update_ms));
    row.emplace_back("update_full_ms", json::JsonValue(update_full_ms));
    row.emplace_back("update_speedup", json::JsonValue(update_speedup));
    row.emplace_back("delta_build_ms",
                     json::JsonValue(update_profile.delta_build_ms));
    row.emplace_back("merge_ms", json::JsonValue(update_profile.merge_ms));
    row.emplace_back("nodes_reused", json::JsonValue(static_cast<int64_t>(
                                         update_profile.nodes_reused)));
    row.emplace_back("publish_hz", json::JsonValue(publish_hz));
    row.emplace_back("epoch_after_update",
                     json::JsonValue(static_cast<int64_t>(server.epoch())));
    row.emplace_back("cursor_pages",
                     json::JsonValue(static_cast<int64_t>(cursor_run.pages)));
    row.emplace_back("cursor_rows",
                     json::JsonValue(static_cast<int64_t>(cursor_run.rows)));
    row.emplace_back("cursor_seconds", json::JsonValue(cursor_run.seconds));
    row.emplace_back("pagination_matches_oneshot",
                     json::JsonValue(pagination_matches));
    row.emplace_back("cache_revalidated", json::JsonValue(static_cast<int64_t>(
                                              stats.cache.revalidated)));
    row.emplace_back("revalidated_delta", json::JsonValue(static_cast<int64_t>(
                                              probe.revalidated_delta)));
    row.emplace_back("revalidated_hit", json::JsonValue(probe.revalidated_hit));
    row.emplace_back("invalidated_recompute",
                     json::JsonValue(probe.invalidated_recompute));
    row.emplace_back("range_dim", json::JsonValue(range_probe.dim_name));
    row.emplace_back("range_pruned_us", json::JsonValue(range_probe.pruned_us));
    row.emplace_back("range_enum_us", json::JsonValue(range_probe.enum_us));
    row.emplace_back("range_speedup", json::JsonValue(range_probe.speedup));
    row.emplace_back("range_subtrees_pruned",
                     json::JsonValue(static_cast<int64_t>(
                         range_probe.subtrees_pruned)));
    row.emplace_back("range_answers_match",
                     json::JsonValue(range_probe.answers_match));
    row.emplace_back("range_reval_hit",
                     json::JsonValue(range_probe.reval_hit));
    row.emplace_back("wire_json_drain_ms", json::JsonValue(wire.json_drain_ms));
    row.emplace_back("wire_bin_drain_ms", json::JsonValue(wire.bin_drain_ms));
    row.emplace_back("wire_raw_drain_ms", json::JsonValue(wire.raw_drain_ms));
    row.emplace_back("wire_drain_rows",
                     json::JsonValue(static_cast<int64_t>(wire.rows)));
    row.emplace_back("wire_rows_match", json::JsonValue(wire.rows_match));
    row.emplace_back("wire_json_oneshot_us",
                     json::JsonValue(wire.json_oneshot_us));
    row.emplace_back("wire_bin_oneshot_us",
                     json::JsonValue(wire.bin_oneshot_us));
    rows.push_back(std::move(row));

    benchutil::EvictDatasetCube(dataset);
  }
  if (Status status =
          benchutil::WriteBenchJson("BENCH_server.json", "query_server", rows);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
