// Query-service load generator: serves each selected dataset's cube from a
// QueryServer and drives it with concurrent clients issuing a mixed
// point/aggregate/slice/rollup workload through the in-process ServerHandle
// (the same execution, admission and caching path as the TCP front-end).
// Reports QPS, latency quantiles from the server's histogram, and the cache
// hit rate, then measures the epoch-bump path by applying a small
// incremental update. Results land machine-readably in BENCH_server.json.
//
// Defaults to the Day and Month datasets (the acceptance pair);
// SCDWARF_DATASETS overrides as usual. SCDWARF_SERVER_CLIENTS and
// SCDWARF_SERVER_REQUESTS override the client count / per-client requests.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "dwarf/dwarf_cube.h"
#include "json/json_parser.h"
#include "server/query_server.h"

namespace {

using namespace scdwarf;

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

// Draws a random decoded value of dimension `dim` from the cube dictionary.
std::string RandomKey(const dwarf::DwarfCube& cube, size_t dim, Rng& rng) {
  const dwarf::Dictionary& dictionary = cube.dictionary(dim);
  return dictionary.DecodeUnchecked(
      static_cast<dwarf::DimKey>(rng.NextBelow(dictionary.size())));
}

// Pre-generates a pool of request frames. Clients cycle through the pool
// from random offsets, so repeated queries exercise the result cache the
// way a real fleet of dashboards would.
std::vector<std::string> MakeRequestPool(const dwarf::DwarfCube& cube,
                                         size_t pool_size, uint64_t seed) {
  Rng rng(seed);
  size_t dims = cube.num_dimensions();
  std::vector<std::string> pool;
  pool.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    double draw = rng.NextDouble();
    json::JsonObject request;
    if (draw < 0.5) {  // point query, a few fixed coordinates, rest ALL
      request.emplace_back("op", json::JsonValue("point"));
      json::JsonArray keys;
      for (size_t dim = 0; dim < dims; ++dim) {
        if (rng.NextBool(0.25)) {
          keys.push_back(json::JsonValue(RandomKey(cube, dim, rng)));
        } else {
          keys.push_back(json::JsonValue(nullptr));
        }
      }
      request.emplace_back("keys", json::JsonValue(std::move(keys)));
    } else if (draw < 0.7) {  // aggregate with one range + one set
      request.emplace_back("op", json::JsonValue("aggregate"));
      json::JsonArray predicates;
      size_t range_dim = rng.NextBelow(dims);
      size_t set_dim = (range_dim + 1) % dims;
      for (size_t dim = 0; dim < dims; ++dim) {
        json::JsonObject predicate;
        if (dim == range_dim && cube.dictionary(dim).size() > 1) {
          size_t size = cube.dictionary(dim).size();
          uint64_t lo = rng.NextBelow(size);
          uint64_t hi = lo + rng.NextBelow(size - lo);
          predicate.emplace_back("kind", json::JsonValue("range"));
          predicate.emplace_back("lo", json::JsonValue(static_cast<int64_t>(lo)));
          predicate.emplace_back("hi", json::JsonValue(static_cast<int64_t>(hi)));
        } else if (dim == set_dim) {
          predicate.emplace_back("kind", json::JsonValue("set"));
          json::JsonArray members;
          size_t count = 1 + rng.NextBelow(3);
          for (size_t k = 0; k < count; ++k) {
            members.push_back(json::JsonValue(RandomKey(cube, dim, rng)));
          }
          predicate.emplace_back("keys", json::JsonValue(std::move(members)));
        } else {
          predicate.emplace_back("kind", json::JsonValue("all"));
        }
        predicates.push_back(json::JsonValue(std::move(predicate)));
      }
      request.emplace_back("predicates", json::JsonValue(std::move(predicates)));
    } else if (draw < 0.9) {  // slice on a random dimension
      size_t dim = rng.NextBelow(dims);
      request.emplace_back("op", json::JsonValue("slice"));
      request.emplace_back(
          "dim", json::JsonValue(cube.schema().dimensions()[dim].name));
      request.emplace_back("key", json::JsonValue(RandomKey(cube, dim, rng)));
    } else {  // single-dimension rollup
      size_t dim = rng.NextBelow(dims);
      request.emplace_back("op", json::JsonValue("rollup"));
      json::JsonArray group;
      group.push_back(json::JsonValue(cube.schema().dimensions()[dim].name));
      request.emplace_back("dims", json::JsonValue(std::move(group)));
    }
    pool.push_back(json::SerializeJson(json::JsonValue(std::move(request))));
  }
  return pool;
}

struct RunResult {
  double seconds = 0;
  uint64_t requests = 0;
};

RunResult RunClients(server::QueryServer& server,
                     const std::vector<std::string>& pool, int clients,
                     int requests_per_client) {
  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int client = 0; client < clients; ++client) {
    threads.emplace_back([&server, &pool, client, requests_per_client] {
      server::ServerHandle handle(&server);
      Rng rng(0x5eed + static_cast<uint64_t>(client));
      size_t cursor = rng.NextBelow(pool.size());
      for (int i = 0; i < requests_per_client; ++i) {
        handle.Call(pool[cursor]);
        cursor = (cursor + 1) % pool.size();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  RunResult result;
  result.seconds = watch.ElapsedSeconds();
  result.requests =
      static_cast<uint64_t>(clients) * static_cast<uint64_t>(requests_per_client);
  return result;
}

}  // namespace

int main() {
  int clients = EnvInt("SCDWARF_SERVER_CLIENTS", 8);
  int requests_per_client = EnvInt("SCDWARF_SERVER_REQUESTS", 2000);
  std::vector<std::string> datasets =
      std::getenv("SCDWARF_DATASETS") != nullptr
          ? benchutil::SelectedDatasets()
          : std::vector<std::string>{"Day", "Month"};

  std::vector<benchutil::BenchJsonRow> rows;
  std::printf("=== Query server load (in-process handle, %d clients x %d requests) ===\n",
              clients, requests_per_client);
  std::printf("%-8s %10s %10s %10s %10s %10s %9s %9s %12s\n", "Dataset",
              "tuples", "qps", "p50_us", "p90_us", "p99_us", "hitrate",
              "rejected", "update_ms");
  for (const std::string& dataset : datasets) {
    auto cube = benchutil::GetDatasetCube(dataset);
    if (!cube.ok()) {
      std::fprintf(stderr, "%s: %s\n", dataset.c_str(),
                   cube.status().ToString().c_str());
      continue;
    }
    std::vector<std::string> pool = MakeRequestPool(**cube, 512, 0xcafe);
    server::ServerOptions options;
    options.max_queue_depth = 256;
    server::QueryServer server(dwarf::DwarfCube(**cube), options);

    RunResult run = RunClients(server, pool, clients, requests_per_client);
    server::ServerStats stats = server.Stats();
    double qps = run.seconds > 0
                     ? static_cast<double>(run.requests) / run.seconds
                     : 0;

    // Epoch-bump path: merge a small batch and let the cache invalidate.
    std::vector<std::pair<std::vector<std::string>, dwarf::Measure>> batch;
    size_t dims = (*cube)->num_dimensions();
    Rng rng(0xfeed);
    for (int i = 0; i < 16; ++i) {
      std::vector<std::string> keys;
      for (size_t dim = 0; dim < dims; ++dim) {
        keys.push_back(RandomKey(**cube, dim, rng));
      }
      batch.emplace_back(std::move(keys), 1);
    }
    Stopwatch update_watch;
    auto epoch = server.ApplyUpdate(batch);
    double update_ms = update_watch.ElapsedMillis();
    if (!epoch.ok()) {
      std::fprintf(stderr, "update failed: %s\n",
                   epoch.status().ToString().c_str());
    }

    std::printf("%-8s %10llu %10.0f %10.1f %10.1f %10.1f %9.3f %9llu %12.1f\n",
                dataset.c_str(),
                static_cast<unsigned long long>((*cube)->stats().tuple_count),
                qps, stats.latency_p50_us, stats.latency_p90_us,
                stats.latency_p99_us, stats.cache_hit_rate,
                static_cast<unsigned long long>(stats.rejected_total),
                update_ms);

    benchutil::BenchJsonRow row;
    row.emplace_back("dataset", json::JsonValue(dataset));
    row.emplace_back("tuples", json::JsonValue(static_cast<int64_t>(
                                   (*cube)->stats().tuple_count)));
    row.emplace_back("clients", json::JsonValue(clients));
    row.emplace_back("requests", json::JsonValue(static_cast<int64_t>(run.requests)));
    row.emplace_back("seconds", json::JsonValue(run.seconds));
    row.emplace_back("qps", json::JsonValue(qps));
    row.emplace_back("p50_us", json::JsonValue(stats.latency_p50_us));
    row.emplace_back("p90_us", json::JsonValue(stats.latency_p90_us));
    row.emplace_back("p99_us", json::JsonValue(stats.latency_p99_us));
    row.emplace_back("cache_hit_rate", json::JsonValue(stats.cache_hit_rate));
    row.emplace_back("cache_hits", json::JsonValue(static_cast<int64_t>(stats.cache.hits)));
    row.emplace_back("cache_misses", json::JsonValue(static_cast<int64_t>(stats.cache.misses)));
    row.emplace_back("rejected", json::JsonValue(static_cast<int64_t>(stats.rejected_total)));
    row.emplace_back("workers", json::JsonValue(server.num_workers()));
    row.emplace_back("update_ms", json::JsonValue(update_ms));
    row.emplace_back("epoch_after_update",
                     json::JsonValue(static_cast<int64_t>(server.epoch())));
    rows.push_back(std::move(row));

    benchutil::EvictDatasetCube(dataset);
  }
  if (Status status =
          benchutil::WriteBenchJson("BENCH_server.json", "query_server", rows);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
