// DWARF construction scaling: build time, node/cell counts and compression
// ratio as the tuple count grows — the cube-construction half of the
// pipeline that feeds every Table-4/5 measurement. Also benchmarks the raw
// parser throughputs the ETL path depends on.

#include <benchmark/benchmark.h>

#include "citibikes/bike_feed.h"
#include "dwarf/builder.h"
#include "etl/pipeline.h"
#include "json/json_parser.h"
#include "xml/xml_parser.h"

namespace {

using namespace scdwarf;

/// Feed documents cached per tuple count so parser cost is excluded from
/// builder-only measurements.
std::vector<std::string> FeedDocuments(uint64_t records, bool as_json) {
  citibikes::BikeFeedConfig config;
  config.target_records = records;
  config.period_seconds = 30ll * 24 * 3600;
  citibikes::BikeFeedGenerator feed(config);
  std::vector<std::string> documents;
  while (feed.HasNext()) {
    documents.push_back(as_json ? feed.NextJson() : feed.NextXml());
  }
  return documents;
}

void BM_EndToEndPipeline(benchmark::State& state) {
  uint64_t records = static_cast<uint64_t>(state.range(0));
  std::vector<std::string> documents = FeedDocuments(records, false);
  for (auto _ : state) {
    auto pipeline = etl::MakeBikesXmlPipeline();
    if (!pipeline.ok()) {
      state.SkipWithError(pipeline.status().ToString().c_str());
      return;
    }
    for (const std::string& document : documents) {
      Status status = pipeline->ConsumeXml(document);
      if (!status.ok()) {
        state.SkipWithError(status.ToString().c_str());
        return;
      }
    }
    auto cube = std::move(*pipeline).Finish();
    if (!cube.ok()) {
      state.SkipWithError(cube.status().ToString().c_str());
      return;
    }
    state.counters["nodes"] = static_cast<double>(cube->num_nodes());
    state.counters["cells"] = static_cast<double>(cube->stats().cell_count);
    state.counters["coalesced"] =
        static_cast<double>(cube->stats().coalesced_all_count);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(records));
}
BENCHMARK(BM_EndToEndPipeline)
    ->Arg(10000)
    ->Arg(40000)
    ->Arg(120000)
    ->Unit(benchmark::kMillisecond);

void BM_BuilderOnly(benchmark::State& state) {
  // Pre-extract tuples once; measure pure DWARF construction.
  uint64_t records = static_cast<uint64_t>(state.range(0));
  std::vector<std::string> documents = FeedDocuments(records, false);
  auto seed_pipeline = etl::MakeBikesXmlPipeline();
  std::vector<std::vector<std::string>> keys;
  std::vector<dwarf::Measure> measures;
  {
    // Reuse the pipeline's extractor/mapper through a tiny local harness.
    auto extractor = etl::XmlExtractor::Create(
        "station",
        {{"name", "name", etl::FieldScope::kRecord, true, ""},
         {"area", "area", etl::FieldScope::kRecord, true, ""},
         {"bike_stands", "bike_stands", etl::FieldScope::kRecord, true, ""},
         {"available_bikes", "available_bikes", etl::FieldScope::kRecord, true,
          ""},
         {"status", "status", etl::FieldScope::kRecord, false, "UNKNOWN"},
         {"last_update", "last_update", etl::FieldScope::kRecord, true, ""}});
    auto schema = etl::MakeBikesCubeSchema();
    auto mapper = etl::TupleMapper::Create(
        schema,
        {{"last_update", etl::Transform::kMonthName},
         {"last_update", etl::Transform::kDate},
         {"last_update", etl::Transform::kWeekday},
         {"last_update", etl::Transform::kHour},
         {"area"},
         {"name"},
         {"status"},
         {"bike_stands", etl::Transform::kBucket10}},
        "available_bikes");
    for (const std::string& document : documents) {
      auto records_result = extractor->Extract(document);
      for (const etl::FeedRecord& record : *records_result) {
        auto mapped = mapper->Map(record);
        keys.push_back(mapped->first);
        measures.push_back(mapped->second);
      }
    }
  }
  for (auto _ : state) {
    dwarf::DwarfBuilder builder(etl::MakeBikesCubeSchema());
    for (size_t i = 0; i < keys.size(); ++i) {
      Status status = builder.AddTuple(keys[i], measures[i]);
      if (!status.ok()) {
        state.SkipWithError(status.ToString().c_str());
        return;
      }
    }
    auto cube = std::move(builder).Build();
    if (!cube.ok()) {
      state.SkipWithError(cube.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(cube->num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_BuilderOnly)
    ->Arg(10000)
    ->Arg(40000)
    ->Arg(120000)
    ->Unit(benchmark::kMillisecond);

void BM_XmlParseThroughput(benchmark::State& state) {
  std::vector<std::string> documents = FeedDocuments(5000, false);
  uint64_t bytes = 0;
  for (const std::string& document : documents) bytes += document.size();
  for (auto _ : state) {
    for (const std::string& document : documents) {
      auto parsed = xml::ParseXml(document);
      benchmark::DoNotOptimize(parsed.ok());
    }
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
}
BENCHMARK(BM_XmlParseThroughput)->Unit(benchmark::kMillisecond);

void BM_JsonParseThroughput(benchmark::State& state) {
  std::vector<std::string> documents = FeedDocuments(5000, true);
  uint64_t bytes = 0;
  for (const std::string& document : documents) bytes += document.size();
  for (auto _ : state) {
    for (const std::string& document : documents) {
      auto parsed = json::ParseJson(document);
      benchmark::DoNotOptimize(parsed.ok());
    }
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
}
BENCHMARK(BM_JsonParseThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
