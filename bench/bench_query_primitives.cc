// Query primitives over DWARF cubes — the conclusion's future-work target
// ("efficient query primitives for our DWARF cubes"), benchmarked over the
// Week dataset: point queries (full path and via precomputed ALL cells),
// range/set aggregates, rollups, flat-file queries in both [1] layouts, and
// the bidirectional mapping's load path (store -> cube rebuild).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <optional>

#include "bench_util.h"
#include "clustered/flat_file.h"
#include "dwarf/query.h"
#include "mapper/nosql_dwarf_mapper.h"
#include "nosql/database.h"

namespace {

using namespace scdwarf;
namespace fs = std::filesystem;

const char* kDataset = "Week";

std::shared_ptr<const dwarf::DwarfCube> Cube() {
  static std::shared_ptr<const dwarf::DwarfCube> cube = [] {
    auto result = benchutil::GetDatasetCube(kDataset);
    if (!result.ok()) {
      std::fprintf(stderr, "cube build failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    return *result;
  }();
  return cube;
}

/// Cycles through the station dictionary so queries do not hit one hot path.
dwarf::DimKey NextStation(const dwarf::DwarfCube& cube) {
  static dwarf::DimKey next = 0;
  const dwarf::Dictionary& stations = cube.dictionary(5);
  next = (next + 1) % static_cast<dwarf::DimKey>(stations.size());
  return next;
}

void BM_PointQueryFullPath(benchmark::State& state) {
  auto cube = Cube();
  std::vector<std::optional<dwarf::DimKey>> query(8, std::nullopt);
  for (auto _ : state) {
    query[5] = NextStation(*cube);
    benchmark::DoNotOptimize(dwarf::PointQuery(*cube, query));
  }
}
BENCHMARK(BM_PointQueryFullPath);

void BM_PointQueryGrandTotal(benchmark::State& state) {
  auto cube = Cube();
  std::vector<std::optional<dwarf::DimKey>> query(8, std::nullopt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dwarf::PointQuery(*cube, query));
  }
}
BENCHMARK(BM_PointQueryGrandTotal);

void BM_PointQueryExactCell(benchmark::State& state) {
  auto cube = Cube();
  // Fully specified coordinate: first key of every dimension.
  std::vector<std::optional<dwarf::DimKey>> query(8);
  for (size_t dim = 0; dim < 8; ++dim) query[dim] = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dwarf::PointQuery(*cube, query));
  }
}
BENCHMARK(BM_PointQueryExactCell);

void BM_AggregateSetQuery(benchmark::State& state) {
  auto cube = Cube();
  std::vector<dwarf::DimPredicate> predicates(8, dwarf::DimPredicate::All());
  std::vector<dwarf::DimKey> hours;
  for (const char* hour : {"07", "08", "09"}) {
    auto key = cube->dictionary(3).Lookup(hour);
    if (key.ok()) hours.push_back(*key);
  }
  predicates[3] = dwarf::DimPredicate::Set(hours);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dwarf::AggregateQuery(*cube, predicates));
  }
}
BENCHMARK(BM_AggregateSetQuery);

void BM_AggregateRangeQuery(benchmark::State& state) {
  auto cube = Cube();
  std::vector<dwarf::DimPredicate> predicates(8, dwarf::DimPredicate::All());
  // Range across half the station dictionary.
  auto stations = static_cast<dwarf::DimKey>(cube->dictionary(5).size());
  predicates[5] = dwarf::DimPredicate::Range(0, stations / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dwarf::AggregateQuery(*cube, predicates));
  }
}
BENCHMARK(BM_AggregateRangeQuery);

void BM_RollUpWeekday(benchmark::State& state) {
  auto cube = Cube();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dwarf::RollUp(*cube, {2}));
  }
}
BENCHMARK(BM_RollUpWeekday);

void BM_RollUpAreaStation(benchmark::State& state) {
  auto cube = Cube();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dwarf::RollUp(*cube, {4, 5}));
  }
}
BENCHMARK(BM_RollUpAreaStation);

void BM_FlatFilePointQuery(benchmark::State& state) {
  auto cube = Cube();
  auto layout = static_cast<clustered::ClusterLayout>(state.range(0));
  std::string path = benchutil::ScratchDir("query.dwarf");
  Status written = clustered::WriteDwarfFile(*cube, path, layout);
  if (!written.ok()) {
    state.SkipWithError(written.ToString().c_str());
    return;
  }
  auto file_cube = clustered::FlatFileCube::Open(path);
  if (!file_cube.ok()) {
    state.SkipWithError(file_cube.status().ToString().c_str());
    return;
  }
  const dwarf::Dictionary& stations = cube->dictionary(5);
  std::vector<std::optional<std::string>> query(8, std::nullopt);
  dwarf::DimKey station = 0;
  for (auto _ : state) {
    query[5] = stations.DecodeUnchecked(station);
    station = (station + 1) % static_cast<dwarf::DimKey>(stations.size());
    benchmark::DoNotOptimize(file_cube->PointQuery(query));
  }
  state.counters["node_reads/query"] =
      static_cast<double>(file_cube->stats().node_reads) /
      static_cast<double>(state.iterations());
  fs::remove(path);
}
BENCHMARK(BM_FlatFilePointQuery)
    ->Arg(static_cast<int>(clustered::ClusterLayout::kHierarchical))
    ->Arg(static_cast<int>(clustered::ClusterLayout::kRecursive));

void BM_NoSqlStoreLoadRoundTrip(benchmark::State& state) {
  auto cube = Cube();
  nosql::Database db;  // memory mode: measures the mapping itself
  mapper::NoSqlDwarfMapper cube_mapper(&db, "dwarfks");
  auto id = cube_mapper.Store(*cube);
  if (!id.ok()) {
    state.SkipWithError(id.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto rebuilt = cube_mapper.Load(*id);
    if (!rebuilt.ok()) {
      state.SkipWithError(rebuilt.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rebuilt->num_nodes());
  }
}
BENCHMARK(BM_NoSqlStoreLoadRoundTrip)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
