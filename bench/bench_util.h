/// \file bench_util.h
/// \brief Shared harness for the table-reproduction benchmarks: dataset cube
/// caching, the four storage-schema drivers, scratch directories and the
/// paper's reference numbers for side-by-side reporting.
///
/// Dataset selection: the environment variable SCDWARF_DATASETS may hold a
/// comma-separated subset ("Day,Week") to shorten a run; default is all five
/// Table-2 datasets.

#ifndef SCDWARF_BENCH_BENCH_UTIL_H_
#define SCDWARF_BENCH_BENCH_UTIL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "citibikes/datasets.h"
#include "dwarf/dwarf_cube.h"
#include "json/json_value.h"

namespace scdwarf::benchutil {

/// \brief One row of a BENCH_*.json "results" array: ordered field -> value
/// pairs (field order is preserved in the emitted file).
using BenchJsonRow = json::JsonObject;

/// \brief Writes the machine-readable benchmark artifact
/// {"benchmark": <name>, "results": [<rows>...]} to \p path and logs the row
/// count. Every BENCH_*.json in the repo goes through this one emitter.
Status WriteBenchJson(const std::string& path, const std::string& benchmark,
                      const std::vector<BenchJsonRow>& rows);

/// \brief Observability hook shared by every bench main. Consumes
/// --metrics-dump=PATH and --trace-dump=PATH from argv (google-benchmark's
/// Initialize would otherwise reject them as unknown flags), with the
/// SCDWARF_METRICS_DUMP / SCDWARF_TRACE_DUMP environment variables as
/// fallbacks. A trace path additionally enables span tracing (as if
/// SCDWARF_TRACE=1). When either path is set, an atexit hook writes the
/// global metric registry snapshot ({"metrics":[...]}) and/or a
/// chrome://tracing-compatible span export on process exit.
void InstallObservabilityDumps(int* argc, char** argv);

/// \brief Dataset names selected for this run (env-filtered Table 2 order).
std::vector<std::string> SelectedDatasets();

/// \brief Builds (or returns the cached) cube for a Table-2 dataset by
/// running the generated XML feed through the 8-dimension bikes pipeline.
/// Cubes are cached for the process lifetime — the expensive part of the
/// sweep is shared by every schema.
Result<std::shared_ptr<const dwarf::DwarfCube>> GetDatasetCube(
    const std::string& dataset);

/// \brief Feed statistics captured while building a dataset cube.
struct FeedStats {
  uint64_t documents = 0;
  uint64_t records = 0;
  uint64_t raw_bytes = 0;
  double parse_ms = 0;        ///< extraction + mapping (the Consume loop)
  double sort_ms = 0;         ///< builder tuple sort + duplicate aggregation
  double construct_ms = 0;    ///< DWARF construction sweep
  double parse_build_ms = 0;  ///< end-to-end feed -> cube wall time
};

/// \brief Stats recorded by the last GetDatasetCube build of \p dataset.
Result<FeedStats> GetDatasetFeedStats(const std::string& dataset);

/// \brief Drops a dataset cube from the cache (frees memory between the
/// sweep's datasets; the SMonth cube alone holds hundreds of MB).
void EvictDatasetCube(const std::string& dataset);

/// \brief The four §5 storage schemas.
enum class StorageSchema {
  kMySqlDwarf,
  kMySqlMin,
  kNoSqlDwarf,
  kNoSqlMin,
};
constexpr StorageSchema kAllSchemas[] = {
    StorageSchema::kMySqlDwarf, StorageSchema::kMySqlMin,
    StorageSchema::kNoSqlDwarf, StorageSchema::kNoSqlMin};

/// Paper spelling: "MySQL-DWARF", "MySQL-Min", "NoSQL-DWARF", "NoSQL-Min".
const char* SchemaName(StorageSchema schema);

/// \brief Result of storing one cube into one schema.
struct StoreRunResult {
  double insert_ms = 0;      ///< wall time of the mapper Store() call
  uint64_t disk_bytes = 0;   ///< store size on disk after flush
  uint64_t rows = 0;         ///< rows written across all tables
};

/// \brief Stores \p cube into a fresh on-disk store of \p schema under a
/// scratch directory, measures Table-4/5 quantities and removes the store.
Result<StoreRunResult> RunStore(StorageSchema schema,
                                const dwarf::DwarfCube& cube);

/// \brief Paper values for Table 4 (MB) and Table 5 (ms), keyed by schema
/// then dataset (Table-2 order). Used only for printed comparisons.
double PaperTable4Mb(StorageSchema schema, const std::string& dataset);
double PaperTable5Ms(StorageSchema schema, const std::string& dataset);

/// \brief Scratch directory for this process's bench stores (removed and
/// recreated per call site as needed).
std::string ScratchDir(const std::string& tag);

}  // namespace scdwarf::benchutil

#endif  // SCDWARF_BENCH_BENCH_UTIL_H_
