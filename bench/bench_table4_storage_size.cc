// Reproduces Table 4: "DWARF storage performance — Size (MB) used to store a
// DWARF cube" for the four schemas x five datasets. Each benchmark stores
// the dataset's cube into a fresh on-disk instance of one schema and records
// real bytes on disk. The summary prints the matrix next to the paper's and
// verifies the shape relations §5.1 highlights.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"

namespace {

using namespace scdwarf;
using benchutil::StorageSchema;

std::map<std::string, std::map<std::string, double>> g_mb;  // schema -> dataset

void BM_StoreSize(benchmark::State& state, const std::string& dataset,
                  StorageSchema schema, bool last_schema_for_dataset) {
  auto cube = benchutil::GetDatasetCube(dataset);
  if (!cube.ok()) {
    state.SkipWithError(cube.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result = benchutil::RunStore(schema, **cube);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    double mb = static_cast<double>(result->disk_bytes) / (1 << 20);
    g_mb[benchutil::SchemaName(schema)][dataset] = mb;
    state.counters["disk_MB"] = mb;
    state.counters["rows"] = static_cast<double>(result->rows);
  }
  if (last_schema_for_dataset) benchutil::EvictDatasetCube(dataset);
}

void PrintTable4() {
  std::printf("\n=== Table 4: Size (MB) used to store a DWARF cube ===\n");
  std::printf("%-12s", "Schema");
  auto datasets = benchutil::SelectedDatasets();
  for (const std::string& dataset : datasets) {
    std::printf(" %9s %9s", dataset.c_str(), "(paper)");
  }
  std::printf("\n");
  for (StorageSchema schema : benchutil::kAllSchemas) {
    std::printf("%-12s", benchutil::SchemaName(schema));
    for (const std::string& dataset : datasets) {
      auto schema_it = g_mb.find(benchutil::SchemaName(schema));
      double ours = schema_it != g_mb.end() && schema_it->second.count(dataset)
                        ? schema_it->second.at(dataset)
                        : -1;
      std::printf(" %9.1f %9.1f", ours,
                  benchutil::PaperTable4Mb(schema, dataset));
    }
    std::printf("\n");
  }

  // Shape checks from §5.1.
  std::printf("\nShape checks (per dataset, from §5.1):\n");
  for (const std::string& dataset : datasets) {
    auto get = [&](StorageSchema schema) {
      auto it = g_mb.find(benchutil::SchemaName(schema));
      return it != g_mb.end() && it->second.count(dataset)
                 ? it->second.at(dataset)
                 : -1.0;
    };
    double mysql_dwarf = get(StorageSchema::kMySqlDwarf);
    double mysql_min = get(StorageSchema::kMySqlMin);
    double nosql_dwarf = get(StorageSchema::kNoSqlDwarf);
    double nosql_min = get(StorageSchema::kNoSqlMin);
    if (mysql_dwarf < 0) continue;
    std::printf(
        "  %-8s MySQL-DWARF largest: %s | NoSQL-Min > NoSQL-DWARF: %s | "
        "NoSQL-DWARF within 2x of MySQL-Min: %s\n",
        dataset.c_str(),
        (mysql_dwarf > mysql_min && mysql_dwarf > nosql_dwarf &&
         mysql_dwarf > nosql_min)
            ? "yes"
            : "NO",
        nosql_min > nosql_dwarf ? "yes" : "NO",
        (nosql_dwarf < 2 * mysql_min && mysql_min < 2 * nosql_dwarf) ? "yes"
                                                                     : "NO");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::InstallObservabilityDumps(&argc, argv);
  benchmark::Initialize(&argc, argv);
  for (const std::string& dataset : benchutil::SelectedDatasets()) {
    size_t index = 0;
    constexpr size_t kNumSchemas =
        sizeof(benchutil::kAllSchemas) / sizeof(benchutil::kAllSchemas[0]);
    for (StorageSchema schema : benchutil::kAllSchemas) {
      bool last = ++index == kNumSchemas;
      std::string name = std::string("Table4/") + benchutil::SchemaName(schema) +
                         "/" + dataset;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [dataset, schema, last](benchmark::State& state) {
            BM_StoreSize(state, dataset, schema, last);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintTable4();
  return 0;
}
