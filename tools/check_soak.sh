#!/usr/bin/env bash
# Fleet soak gate, run by the CI `release` job after the benchmarks and
# runnable locally:
#
#   tools/check_soak.sh [path/to/build-dir]
#
# Runs bench/soak_fleet for SCDWARF_SOAK_SECONDS (default 45): an in-process
# publisher spooling epochs every 2 s, 2 real scdwarf_replica processes
# following the spool purely by polling, a router in front, session threads
# churning a differentially-checked mixed workload — while a killer SIGKILLs
# and respawns replicas and a corrupter drops broken files into the spool.
#
# Fails on ANY differential mismatch, on a one-shot p99 over
# SCDWARF_SOAK_P99_BOUND_US (default 200000), and unless at least
# SCDWARF_SOAK_MIN_KILLS (default 3) kills were survived with every restart
# provably catching up to the newest spooled epoch via the spool alone (the
# soak publisher sends no notifications). The soak row is merged into
# BENCH_server.json next to the benchmark rows.

set -u
build_dir="${1:-build}"
seconds="${SCDWARF_SOAK_SECONDS:-45}"
min_kills="${SCDWARF_SOAK_MIN_KILLS:-3}"
p99_bound_us="${SCDWARF_SOAK_P99_BOUND_US:-200000}"

if [[ ! -x "${build_dir}/bench/soak_fleet" ]]; then
  echo "check_soak: ${build_dir}/bench/soak_fleet not found (build first)" >&2
  exit 1
fi

# Kill cadence sized so the requested minimum is comfortably exceeded in the
# window, with time left after the last respawn for the catch-up proof.
kill_ms=$(( (seconds * 1000) / (min_kills + 2) ))

(
  cd "${build_dir}"
  ./bench/soak_fleet \
      --duration-s="${seconds}" \
      --replicas=2 \
      --sessions=4 \
      --publish-ms=2000 \
      --kill-ms="${kill_ms}" \
      --corrupt-ms=5000 \
      --p99-bound-us="${p99_bound_us}"
) || { echo "check_soak: FAIL — soak_fleet exited nonzero" >&2; exit 1; }

python3 - "${build_dir}/BENCH_server.json" "${min_kills}" "${p99_bound_us}" <<'EOF'
import json, sys

path, min_kills, p99_bound = sys.argv[1], int(sys.argv[2]), float(sys.argv[3])
results = json.load(open(path))["results"]
rows = [r for r in results if "soak_kills" in r]
if not rows:
    sys.exit("check_soak: no soak row in " + path)
row = rows[-1]
print(f"check_soak: {row['soak_duration_s']:.0f}s, "
      f"{row['soak_requests']} one-shots + {row['soak_cursor_drains']} drains "
      f"over {row['soak_epochs']} epochs; kills {row['soak_kills']}, "
      f"catch-ups {row['soak_catchups']}, corruptions "
      f"{row['soak_corruptions']}; mismatches {row['soak_mismatches']}; "
      f"p99 {row['soak_p99_us']:.0f}us (bound {p99_bound:.0f}us)")
if row["soak_mismatches"] != 0:
    sys.exit(f"check_soak: FAIL — {row['soak_mismatches']} differential "
             f"mismatch(es); the fleet returned a wrong answer")
if row["soak_kills"] < min_kills:
    sys.exit(f"check_soak: FAIL — only {row['soak_kills']} kill(s) injected "
             f"(required >= {min_kills}); soak too short or killer stalled")
if row["soak_catchups"] < row["soak_restarts"]:
    sys.exit(f"check_soak: FAIL — {row['soak_restarts']} restart(s) but only "
             f"{row['soak_catchups']} caught up to the newest spooled epoch "
             f"via polling alone")
if row["soak_requests"] <= 0 or row["soak_cursor_drains"] <= 0:
    sys.exit("check_soak: FAIL — workload recorded no checked answers")
if p99_bound > 0 and row["soak_p99_us"] > p99_bound:
    sys.exit(f"check_soak: FAIL — one-shot p99 {row['soak_p99_us']:.0f}us "
             f"over bound {p99_bound:.0f}us")
EOF
