#!/usr/bin/env bash
# Range-query smoke, run by the CI `release` job after bench_query_server
# and runnable locally:
#
#   tools/check_range_pruning.sh [path/to/BENCH_server.json]
#
# Asserts the range phase of bench_query_server held its invariants on the
# Month-scale dataset: the value-form range aggregate answered exactly like
# the equivalent set enumeration, the min/max-rank subtree index actually
# pruned subtrees (dwarf_range_subtrees_pruned_total moved), and the cached
# range aggregate survived an outside-the-window publish as a revalidated
# hit. SCDWARF_MIN_RANGE_SPEEDUP optionally also gates the pruned-vs-enum
# latency ratio (default 0.0, i.e. off — the probe queries are microsecond
# scale and CI runners are too noisy; docs/BENCHMARKS.md records the ratio
# seen on quiet hardware instead).

set -u
bench_json="${1:-build/BENCH_server.json}"
min_speedup="${SCDWARF_MIN_RANGE_SPEEDUP:-0.0}"

if [[ ! -f "${bench_json}" ]]; then
  echo "check_range_pruning: ${bench_json} not found (run bench_query_server first)" >&2
  exit 1
fi

python3 - "${bench_json}" "${min_speedup}" <<'EOF'
import json, sys

path, min_speedup = sys.argv[1], float(sys.argv[2])
results = json.load(open(path))["results"]
rows = [r for r in results if r.get("range_dim")]
if not rows:
    sys.exit("check_range_pruning: no rows with a range phase in " + path)
# Prefer the Month row (the acceptance scale); otherwise the largest dataset.
row = next((r for r in rows if r.get("dataset") == "Month"),
           max(rows, key=lambda r: r.get("tuples", 0)))
pruned = row["range_subtrees_pruned"]
speedup = row["range_speedup"]
print(f"check_range_pruning: {row['dataset']} range({row['range_dim']}): "
      f"pruned {row['range_pruned_us']:.1f} us vs enum "
      f"{row['range_enum_us']:.1f} us ({speedup:.1f}x, required >= "
      f"{min_speedup:.1f}x), {pruned} subtrees pruned, "
      f"answers_match={row['range_answers_match']}, "
      f"reval_hit={row['range_reval_hit']}")
failures = []
if not row["range_answers_match"]:
    failures.append("range aggregate disagrees with the set enumeration")
if pruned <= 0:
    failures.append("dwarf_range_subtrees_pruned_total did not move")
if not row["range_reval_hit"]:
    failures.append("cached range aggregate was not revalidated across "
                    "an outside-the-window publish")
if speedup < min_speedup:
    failures.append(f"range speedup {speedup:.1f}x below required "
                    f"{min_speedup:.1f}x")
if failures:
    sys.exit("check_range_pruning: FAIL — " + "; ".join(failures))
EOF
