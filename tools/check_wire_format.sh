#!/usr/bin/env bash
# Wire-format smoke, run by the CI `release` job and runnable locally:
#
#   tools/check_wire_format.sh [path/to/build-dir]
#
# Boots a real scdwarf_server, negotiates the bin1 binary wire format from
# an INDEPENDENT client (bin1 re-implemented in Python straight from
# docs/WIRE_PROTOCOL.md — none of the C++ codec is involved on the client
# side), then answers point/aggregate/slice/rollup one-shots and a cursor
# drain in both framings and diffs the results:
#
#  - every binary one-shot answer must be byte-identical to the JSON
#    connection's answer for the same (warmed) query;
#  - kind-3 cursor pages, decoded from raw bytes, must concatenate to
#    exactly the one-shot rollup rows;
#  - a JSON frame sent on the negotiated connection must still be answered
#    in JSON (mixed-format mode).
#
# A divergence between this script and the server is a bug in the code or
# in WIRE_PROTOCOL.md — both are load-bearing.

set -u
build_dir="${1:-build}"
server_bin="${build_dir}/src/server/scdwarf_server"

if [[ ! -x "${server_bin}" ]]; then
  echo "check_wire_format: ${server_bin} not found (build first)" >&2
  exit 1
fi

python3 - "${server_bin}" <<'EOF'
import json
import re
import socket
import struct
import subprocess
import sys

server_bin = sys.argv[1]

# --- bin1 primitives, straight from docs/WIRE_PROTOCOL.md §5 ---------------

MAGIC = 0xB1
OPS = {"point": 0x00, "aggregate": 0x01, "slice": 0x02, "rollup": 0x03,
       "query_open": 0x06, "query_next": 0x07, "query_close": 0x08}

def bstr(text):
    raw = text.encode()
    return struct.pack("<I", len(raw)) + raw

def encode_request(req):
    op = req["op"]
    out = bytes([MAGIC, 1, OPS[op]])
    if op == "point":
        out += struct.pack("<I", len(req["keys"]))
        for key in req["keys"]:
            out += b"\x00" if key is None else b"\x01" + bstr(key)
    elif op == "aggregate":
        out += struct.pack("<I", len(req["predicates"]))
        for pred in req["predicates"]:
            kind = pred["kind"]
            if kind == "all":
                out += bytes([0])
            elif kind == "point":
                out += bytes([1]) + bstr(pred["key"])
            elif kind == "range":
                if isinstance(pred["lo"], str):
                    out += bytes([2, 1]) + bstr(pred["lo"]) + bstr(pred["hi"])
                else:
                    out += bytes([2, 0]) + struct.pack("<II", pred["lo"], pred["hi"])
            elif kind == "set":
                out += bytes([3]) + struct.pack("<I", len(pred["keys"]))
                for member in pred["keys"]:
                    out += bstr(member)
    elif op == "slice":
        out += bstr(req["dim"]) + bstr(req["key"])
    elif op == "rollup":
        out += struct.pack("<I", len(req["dims"]))
        for dim in req["dims"]:
            out += bstr(dim)
        where = req.get("where", [])
        out += struct.pack("<I", len(where))
        for f in where:
            out += bstr(f["dim"]) + bstr(f["lo"]) + bstr(f["hi"])
    elif op == "query_open":
        inner = encode_request(req["query"])
        out += struct.pack("<I", len(inner)) + inner
        out += struct.pack("<Q", req["page_size"])
        if "epoch" in req:
            out += b"\x01" + struct.pack("<Q", req["epoch"])
        else:
            out += b"\x00"
    elif op in ("query_next", "query_close"):
        out += struct.pack("<Q", req["cursor"])
    return out

def decode_cursor_page(payload):
    """Kind-3 page -> (epoch, cursor, done, rows) from raw bytes."""
    assert payload[0] == MAGIC and payload[1] == 3, "not a kind-3 page"
    epoch, cursor = struct.unpack_from("<QQ", payload, 2)
    done = payload[18] != 0
    (num_rows,) = struct.unpack_from("<I", payload, 19)
    pos, rows = 23, []
    for _ in range(num_rows):
        (num_keys,) = struct.unpack_from("<H", payload, pos)
        pos += 2
        keys = []
        for _ in range(num_keys):
            (size,) = struct.unpack_from("<I", payload, pos)
            pos += 4
            keys.append(payload[pos:pos + size].decode())
            pos += size
        (measure,) = struct.unpack_from("<q", payload, pos)
        pos += 8
        rows.append({"keys": keys, "measure": measure})
    assert pos == len(payload), "trailing bytes after cursor page"
    return epoch, cursor, done, rows

def unwrap_kind0(payload):
    assert payload[0] == MAGIC and payload[1] == 0, \
        f"expected kind-0 binary response, got {payload[:2].hex()}"
    (size,) = struct.unpack_from("<I", payload, 2)
    assert len(payload) == 6 + size, "kind-0 length mismatch"
    return payload[6:]

# --- framing ---------------------------------------------------------------

def recv_exact(sock, size):
    # MSG_WAITALL is unreliable on sockets with a timeout; loop instead.
    buf = bytearray()
    while len(buf) < size:
        chunk = sock.recv(size - len(buf))
        if not chunk:
            raise ConnectionError("server closed mid-frame")
        buf += chunk
    return bytes(buf)

def call(sock, payload):
    sock.sendall(struct.pack(">I", len(payload)) + payload)
    (size,) = struct.unpack(">I", recv_exact(sock, 4))
    return recv_exact(sock, size)

failures = []
def check(name, ok, detail=""):
    print(f"check_wire_format: {'ok  ' if ok else 'FAIL'} {name}"
          + (f" ({detail})" if detail and not ok else ""))
    if not ok:
        failures.append(name)

# --- boot the server -------------------------------------------------------

proc = subprocess.Popen([server_bin, "0", "4000", "2"],
                        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                        text=True)
port = ndims = None
for line in proc.stdout:
    m = re.search(r"cube ready: .* (\d+) dimensions", line)
    if m:
        ndims = int(m.group(1))
    m = re.search(r"serving on ([\d.]+):(\d+)", line)
    if m:
        port = int(m.group(2))
        break
assert port and ndims, "server banner never announced port + dimensions"

try:
    js = socket.create_connection(("127.0.0.1", port), timeout=10)
    bn = socket.create_connection(("127.0.0.1", port), timeout=10)

    # Negotiate bin1 on one connection; the other stays JSON.
    hello = json.loads(call(bn, b'{"op":"hello","formats":["json","bin1"]}'))
    check("hello negotiates bin1", hello.get("format") == "bin1", str(hello))

    # Discover a real key for the slice query from a Weekday rollup.
    rollup_req = {"op": "rollup", "dims": ["Weekday"]}
    rollup_rows = json.loads(call(js, json.dumps(rollup_req).encode()))["rows"]
    weekday = rollup_rows[0]["keys"][0]

    one_shots = [
        {"op": "point", "keys": [None] * ndims},
        {"op": "aggregate", "predicates": [{"kind": "all"}] * ndims},
        {"op": "slice", "dim": "Weekday", "key": weekday},
        rollup_req,
    ]
    for req in one_shots:
        as_json = json.dumps(req).encode()
        call(js, as_json)                    # warm: both answers below are hits
        via_json = call(js, as_json)
        via_bin = unwrap_kind0(call(bn, encode_request(req)))
        check(f"binary == JSON for {req['op']}", via_bin == via_json,
              f"{via_bin[:80]!r} vs {via_json[:80]!r}")

    # Cursor drain: kind-3 pages decoded from raw bytes must concatenate to
    # the one-shot rollup rows, all pinned to one epoch.
    oneshot = json.loads(call(js, json.dumps(rollup_req).encode()))
    opened = json.loads(unwrap_kind0(call(bn, encode_request(
        {"op": "query_open", "query": rollup_req, "page_size": 7}))))
    check("binary query_open", opened.get("ok") is True, str(opened))
    cursor, drained, epochs = opened["cursor"], [], set()
    next_frame = encode_request({"op": "query_next", "cursor": cursor})
    while True:
        epoch, got_cursor, done, rows = decode_cursor_page(call(bn, next_frame))
        epochs.add(epoch)
        check("page cursor id matches", got_cursor == cursor)
        drained.extend(rows)
        if done:
            break
    check("cursor pages == one-shot rows", drained == oneshot["rows"],
          f"{len(drained)} vs {len(oneshot['rows'])} rows")
    check("drain pinned to one epoch", len(epochs) == 1, str(epochs))

    # Mixed-format mode: a JSON frame on the negotiated connection is
    # answered in JSON.
    ping = call(bn, b'{"op":"ping"}')
    check("JSON frame on bin1 connection answered as JSON",
          ping[:1] == b"{", ping[:20].decode(errors="replace"))

    # Strict decoding: a truncated binary request errors, connection lives.
    err = json.loads(unwrap_kind0(call(bn, bytes([MAGIC, 1, OPS["slice"]]))))
    check("truncated binary request -> invalid_argument",
          err.get("code") == "invalid_argument", str(err))
    check("connection survives the error",
          json.loads(call(bn, b'{"op":"ping"}')).get("ok") is True)

    js.close(); bn.close()
finally:
    try:
        proc.stdin.write("quit\n"); proc.stdin.flush()
    except (BrokenPipeError, OSError):
        pass
    proc.wait(timeout=10)

if failures:
    sys.exit("check_wire_format: FAIL — " + ", ".join(failures))
print("check_wire_format: OK")
EOF
