#!/usr/bin/env bash
# Docs consistency checks, run by the CI `docs` job and runnable locally:
#
#   tools/check_docs.sh
#
# 1. Every relative link in every tracked *.md file must resolve to a file
#    or directory in the repo (http(s)/mailto links are not fetched).
# 2. Every metric name registered in src/ (via GetCounter/GetGauge/
#    GetHistogram with a literal name) must be documented in
#    docs/OPERATIONS.md.
# 3. Every RequestOp enumerator in src/server/wire.h must appear in
#    docs/WIRE_PROTOCOL.md — the wire spec may not silently lag the op set.
#
# Exits non-zero with one line per violation.

set -u
cd "$(dirname "$0")/.."

errors=0
report() {
  echo "check_docs: $1" >&2
  errors=$((errors + 1))
}

# --- 1. Markdown link targets resolve -------------------------------------

md_files=$(git ls-files '*.md' 2>/dev/null || find . -name '*.md' -not -path './build*')
for md in $md_files; do
  dir=$(dirname "$md")
  # Inline links: [text](target). Targets with spaces/titles are not used in
  # this repo, so a simple non-paren span is enough.
  targets=$(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
  for target in $targets; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;  # external, not fetched
    esac
    path=${target%%#*}                          # drop #anchor
    [ -z "$path" ] && continue                  # same-file anchor
    if [ ! -e "$dir/$path" ]; then
      report "$md: broken link -> $target"
    fi
  done
done

# --- 2. Registered metric names are documented ----------------------------

ops_doc=docs/OPERATIONS.md
if [ ! -f "$ops_doc" ]; then
  report "missing $ops_doc"
else
  # Registration sites often wrap after the '(' — match across newlines (-z).
  metric_names=$(grep -rzoE 'Get(Counter|Gauge|Histogram)\(\s*"[a-z0-9_]+"' \
                   src --include='*.cc' --include='*.h' \
                 | tr '\0' '\n' | grep -oE '"[a-z0-9_]+"' | tr -d '"' \
                 | sort -u)
  if [ -z "$metric_names" ]; then
    report "found no registered metric names in src/ (extraction regex broken?)"
  fi
  for name in $metric_names; do
    if ! grep -q -- "$name" "$ops_doc"; then
      report "metric \`$name\` is registered in src/ but missing from $ops_doc"
    fi
  done
fi

# --- 3. Every RequestOp enumerator appears in the wire spec ---------------

wire_doc=docs/WIRE_PROTOCOL.md
wire_header=src/server/wire.h
if [ ! -f "$wire_doc" ]; then
  report "missing $wire_doc"
elif [ ! -f "$wire_header" ]; then
  report "missing $wire_header (RequestOp extraction source)"
else
  # The enum body runs from "enum class RequestOp {" to the first "};".
  request_ops=$(sed -n '/enum class RequestOp/,/};/p' "$wire_header" \
                | grep -oE 'k[A-Za-z0-9]+' | sort -u)
  if [ -z "$request_ops" ]; then
    report "found no RequestOp enumerators in $wire_header (extraction broken?)"
  fi
  for op in $request_ops; do
    if ! grep -q -- "$op" "$wire_doc"; then
      report "RequestOp::$op exists in $wire_header but is missing from $wire_doc"
    fi
  done
fi

if [ "$errors" -ne 0 ]; then
  echo "check_docs: $errors problem(s)" >&2
  exit 1
fi
echo "check_docs: OK ($(echo "$md_files" | wc -w) markdown files, $(echo "$metric_names" | wc -w) metrics, $(echo "$request_ops" | wc -w) wire ops)"
