#!/usr/bin/env bash
# Update-latency smoke, run by the CI `release` job after bench_query_server
# and runnable locally:
#
#   tools/check_update_latency.sh [path/to/BENCH_server.json]
#
# Asserts that the incremental delta-merge publish beats the full-rebuild
# baseline on the Month-scale dataset (the O(history) rebuild the delta
# merge exists to kill). Prints both numbers either way; on a regression it
# fails loudly with them. SCDWARF_MIN_UPDATE_SPEEDUP overrides the required
# ratio (default 1.0 — CI runners are too noisy for the ~10x seen on quiet
# hardware, which docs/BENCHMARKS.md records instead).

set -u
bench_json="${1:-build/BENCH_server.json}"
min_speedup="${SCDWARF_MIN_UPDATE_SPEEDUP:-1.0}"

if [[ ! -f "${bench_json}" ]]; then
  echo "check_update_latency: ${bench_json} not found (run bench_query_server first)" >&2
  exit 1
fi

python3 - "${bench_json}" "${min_speedup}" <<'EOF'
import json, sys

path, min_speedup = sys.argv[1], float(sys.argv[2])
results = json.load(open(path))["results"]
rows = [r for r in results if "update_full_ms" in r]
if not rows:
    sys.exit("check_update_latency: no rows with update_full_ms in " + path)
# Prefer the Month row (the acceptance scale); otherwise the largest dataset.
row = next((r for r in rows if r.get("dataset") == "Month"),
           max(rows, key=lambda r: r.get("tuples", 0)))
inc, full = row["update_ms"], row["update_full_ms"]
speedup = full / inc if inc > 0 else 0.0
print(f"check_update_latency: {row['dataset']} ({row.get('tuples', '?')} tuples): "
      f"incremental {inc:.2f} ms vs full rebuild {full:.2f} ms "
      f"({speedup:.1f}x, required >= {min_speedup:.1f}x)")
if speedup < min_speedup:
    sys.exit(f"check_update_latency: FAIL — incremental publish ({inc:.2f} ms) "
             f"does not beat the full rebuild ({full:.2f} ms) by the required "
             f"{min_speedup:.1f}x on {row['dataset']}")
EOF
