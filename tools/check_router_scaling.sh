#!/usr/bin/env bash
# Router fan-out scaling gate, run by the CI `release` job after bench_router
# and runnable locally:
#
#   tools/check_router_scaling.sh [path/to/BENCH_server.json]
#
# Asserts that 4 replicas deliver >= SCDWARF_MIN_ROUTER_SCALING (default
# 2.5) times the QPS of 1 replica on the recorded dataset. The replicas are
# separate processes, so the ratio only materializes when the machine has
# cores for them to run on: the QPS assertion is enforced only when the
# recorded router_cores is >= SCDWARF_ROUTER_SCALING_MIN_CORES (default 4).
# On smaller machines the script still validates that the rows exist and are
# well-formed, prints the measured ratio, and passes with a note.

set -u
bench_json="${1:-build/BENCH_server.json}"
min_scaling="${SCDWARF_MIN_ROUTER_SCALING:-2.5}"
min_cores="${SCDWARF_ROUTER_SCALING_MIN_CORES:-4}"

if [[ ! -f "${bench_json}" ]]; then
  echo "check_router_scaling: ${bench_json} not found (run bench_router first)" >&2
  exit 1
fi

python3 - "${bench_json}" "${min_scaling}" "${min_cores}" <<'EOF'
import json, sys

path, min_scaling, min_cores = sys.argv[1], float(sys.argv[2]), int(sys.argv[3])
results = json.load(open(path))["results"]
rows = [r for r in results if "router_replicas" in r]
if not rows:
    sys.exit("check_router_scaling: no rows with router_replicas in " + path
             + " (run bench_router first)")
by_count = {int(r["router_replicas"]): r for r in rows}
for needed in (1, 4):
    if needed not in by_count:
        sys.exit(f"check_router_scaling: no router row with {needed} replicas")
one, four = by_count[1], by_count[4]
if one.get("router_qps", 0) <= 0:
    sys.exit("check_router_scaling: 1-replica row has no positive router_qps")
ratio = four["router_qps"] / one["router_qps"]
cores = int(four.get("router_cores", 0))
print(f"check_router_scaling: {four.get('dataset', '?')}: "
      f"{one['router_qps']:.0f} qps @ 1 replica -> {four['router_qps']:.0f} qps "
      f"@ 4 replicas ({ratio:.2f}x on {cores} cores, "
      f"required >= {min_scaling:.1f}x when cores >= {min_cores})")
if cores < min_cores:
    print(f"check_router_scaling: only {cores} core(s) recorded — replica "
          f"processes shared a core, scaling ratio not enforced")
    sys.exit(0)
if ratio < min_scaling:
    sys.exit(f"check_router_scaling: FAIL — 4 replicas deliver only "
             f"{ratio:.2f}x the single-replica QPS "
             f"(required >= {min_scaling:.1f}x)")
EOF
